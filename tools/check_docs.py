#!/usr/bin/env python
"""Keep the docs honest: execute their snippets, check their links.

Two checks over ``README.md`` and ``docs/*.md``:

1. **Snippets** — every fenced ``python`` code block is extracted and
   executed (all blocks of one file share a namespace, in file order, so a
   later block may use an earlier block's imports).  A block preceded by an
   HTML comment line ``<!-- docs: no-run -->`` is skipped; non-Python fences
   (``bash``, ``text``, …) are never executed.
2. **Links** — every relative Markdown link target must exist in the repo
   (anchors are stripped; external ``http(s)://`` / ``mailto:`` links are not
   fetched).

Run from the repo root (CI's docs job does)::

    PYTHONPATH=src python tools/check_docs.py            # both checks
    PYTHONPATH=src python tools/check_docs.py --links-only
    PYTHONPATH=src python tools/check_docs.py --compile-only   # syntax, no execution

Exit status 0 when everything passes, 1 otherwise, with one line per failure.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fenced code block: ```lang ... ``` (tilde fences are not used in this repo).
FENCE_RE = re.compile(r"^```(\w*)\s*$")
#: Inline/reference Markdown links: [text](target).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Put this HTML comment on the line before a fence to skip executing it.
SKIP_MARKER = "<!-- docs: no-run -->"


def _relative(path: Path) -> str:
    """Repo-relative display form of ``path`` (absolute when outside it)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


@dataclass
class Snippet:
    """One fenced code block of a Markdown file."""

    path: Path
    lang: str
    code: str
    lineno: int  # 1-based line of the opening fence
    skip: bool

    @property
    def label(self) -> str:
        return f"{_relative(self.path)}:{self.lineno}"


def doc_files() -> list[Path]:
    """The Markdown files under check: README.md plus every docs/*.md."""
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def extract_snippets(path: Path) -> list[Snippet]:
    """All fenced code blocks of ``path``, with language and skip marker."""
    snippets: list[Snippet] = []
    lines = path.read_text().splitlines()
    in_fence = False
    lang, start, buffer, skip = "", 0, [], False
    previous_nonblank = ""
    for index, line in enumerate(lines, start=1):
        fence = FENCE_RE.match(line)
        if not in_fence and fence:
            in_fence = True
            lang = fence.group(1).lower()
            start = index
            buffer = []
            skip = previous_nonblank.strip() == SKIP_MARKER
        elif in_fence and line.strip() == "```":
            in_fence = False
            snippets.append(
                Snippet(path=path, lang=lang, code="\n".join(buffer) + "\n",
                        lineno=start, skip=skip)
            )
        elif in_fence:
            buffer.append(line)
        if not in_fence and line.strip():
            previous_nonblank = line
    if in_fence:
        raise ValueError(f"{path}: unterminated code fence opened at line {start}")
    return snippets


def python_snippets(path: Path) -> list[Snippet]:
    return [s for s in extract_snippets(path) if s.lang == "python"]


# ---------------------------------------------------------------- snippet run
def check_snippets(paths: list[Path], compile_only: bool = False) -> list[str]:
    """Compile (and by default execute) every Python snippet; return failures.

    Execution shares one namespace per file so snippets can build on each
    other, mirroring how a reader would paste them into one session.
    """
    failures: list[str] = []
    for path in paths:
        namespace: dict[str, object] = {"__name__": f"docs_snippet_{path.stem}"}
        for snippet in python_snippets(path):
            try:
                code = compile(snippet.code, snippet.label, "exec")
            except SyntaxError as error:
                failures.append(f"{snippet.label}: syntax error: {error}")
                continue
            if compile_only or snippet.skip:
                continue
            try:
                exec(code, namespace)  # noqa: S102 - executing our own docs
            except Exception as error:  # pragma: no cover - failure path
                failures.append(
                    f"{snippet.label}: {type(error).__name__}: {error}"
                )
                break  # later blocks of this file may depend on this one
    return failures


# ------------------------------------------------------------------ link check
def check_links(paths: list[Path]) -> list[str]:
    """Every relative link target must exist; return one line per dead link."""
    failures: list[str] = []
    for path in paths:
        in_fence = False
        for index, line in enumerate(path.read_text().splitlines(), start=1):
            if FENCE_RE.match(line) or line.strip() == "```":
                in_fence = not in_fence
                continue
            if in_fence:
                continue  # code blocks may contain bracketed indexing, not links
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                resolved = (path.parent / relative).resolve()
                if not resolved.exists():
                    failures.append(
                        f"{_relative(path)}:{index}: dead link {target!r}"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links-only", action="store_true",
                        help="skip snippet execution, check links only")
    parser.add_argument("--compile-only", action="store_true",
                        help="syntax-check snippets without executing them")
    args = parser.parse_args(argv)

    paths = [path for path in doc_files() if path.exists()]
    if len(paths) < 2:
        print("error: no docs found (expected README.md and docs/*.md)",
              file=sys.stderr)
        return 1

    failures = check_links(paths)
    if not args.links_only:
        failures += check_snippets(paths, compile_only=args.compile_only)

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    checked = ", ".join(_relative(p) for p in paths)
    if failures:
        print(f"{len(failures)} docs check failure(s) over {checked}", file=sys.stderr)
        return 1
    print(f"docs OK: links and snippets pass over {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
