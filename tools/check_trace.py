#!/usr/bin/env python
"""Validate an ``ios-bench serve --trace`` JSON and assert its content.

Beyond the schema check (:func:`repro.obs.validate_chrome_trace` — required
fields, known phases, balanced async pairs, named rows), the CI trace-smoke
job asserts the trace actually contains what the observability layer
promises.  Each ``--require`` adds one content check:

* ``compile``  — compile-stage spans (category ``compile``);
* ``requests`` — per-request lifecycle async pairs (category ``request``);
* ``kernels``  — kernel-level spans on per-worker stream tracks
  (category ``kernel``);
* ``counters`` — queue-depth counter samples;
* ``alerts``   — alert-transition instants (category ``alert``) as emitted
  when the serving loop runs with alert rules attached;
* ``hosts``    — per-host track groups (process names starting with
  ``host``) plus inter-host send/recv transfer spans (category
  ``transfer``), as emitted by ``ios-bench serve --cluster N --trace``.

Run from the repo root::

    PYTHONPATH=src python tools/check_trace.py trace.json
    PYTHONPATH=src python tools/check_trace.py trace.json \
        --require compile --require requests --require kernels

Exit status 0 when everything passes, 1 otherwise, one line per failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import validate_chrome_trace  # noqa: E402


def _spans_with_category(events: list[dict], category: str) -> int:
    return sum(
        1 for event in events if event["ph"] == "X" and event.get("cat") == category
    )


def _content_errors(events: list[dict], requirements: list[str]) -> list[str]:
    """Check each ``--require`` keyword against the event list."""
    errors: list[str] = []
    for requirement in requirements:
        if requirement == "compile":
            if not _spans_with_category(events, "compile"):
                errors.append("no compile-stage spans (category 'compile')")
        elif requirement == "requests":
            begins = sum(
                1 for event in events
                if event["ph"] == "b" and event.get("cat") == "request"
            )
            if not begins:
                errors.append("no per-request lifecycle pairs (category 'request')")
        elif requirement == "kernels":
            if not _spans_with_category(events, "kernel"):
                errors.append("no kernel-level spans (category 'kernel')")
        elif requirement == "counters":
            if not any(event["ph"] == "C" for event in events):
                errors.append("no counter samples")
        elif requirement == "alerts":
            instants = sum(
                1 for event in events
                if event["ph"] == "i" and event.get("cat") == "alert"
            )
            if not instants:
                errors.append("no alert-transition instants (category 'alert')")
        elif requirement == "hosts":
            host_processes = sum(
                1 for event in events
                if event["ph"] == "M" and event["name"] == "process_name"
                and str(event.get("args", {}).get("name", "")).startswith("host")
            )
            if not host_processes:
                errors.append("no per-host track groups (process 'host*')")
            if not _spans_with_category(events, "transfer"):
                errors.append("no inter-host transfer spans (category 'transfer')")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace JSON file to check")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        choices=["compile", "requests", "kernels", "counters", "alerts", "hosts"],
        help="content the trace must contain (repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        data = json.loads(Path(args.path).read_text())
    except OSError as error:
        print(f"error: cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as error:
        print(f"error: {args.path} is not valid JSON: {error}", file=sys.stderr)
        return 1

    errors = validate_chrome_trace(data)
    if not errors:
        errors = _content_errors(data["traceEvents"], args.require)
    if errors:
        print(f"{args.path}: FAILED ({len(errors)} problem(s))")
        for problem in errors:
            print(f"  - {problem}")
        return 1
    checked = f" + content ({', '.join(args.require)})" if args.require else ""
    print(f"{args.path}: OK — schema{checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
