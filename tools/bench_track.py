#!/usr/bin/env python
"""Track compile and serving performance across commits.

Runs two fixed benchmarks and appends one data point each to
``BENCH_compile.json`` and ``BENCH_serving.json`` at the repo root.  Both
files are JSON lists, one entry per run::

    [{"commit": "abc1234", "date": "2026-08-08T12:00:00+00:00",
      "metrics": {...}}, ...]

* **Compile** — a cold :class:`~repro.engine.Engine` compile of ``nasnet_a``
  and ``inception_v3`` on ``v100``, a warm in-engine recompile (cache hit),
  and an artifact save/load round-trip (the zero-search warm start the serve
  registry relies on).  Wall-clock seconds are machine-dependent; the
  simulated latency and stage structure are deterministic.
* **Serving** — a fixed seeded scenario (``squeezenet`` on a ``k80:1,v100:2``
  fleet, bursty deadline-carrying traffic, deadline admission).  The serving
  loop runs on a virtual clock, so every serving metric is deterministic and
  comparable across machines.  The same entry carries a ``cluster_*`` block:
  a 4-host partitioned replay over a modeled link, gating cluster-wide SLO
  attainment, end-to-end p99, and total modeled transfer time.

Run from the repo root::

    PYTHONPATH=src python tools/bench_track.py             # append data points
    PYTHONPATH=src python tools/bench_track.py --dry-run   # print, don't write
    PYTHONPATH=src python tools/bench_track.py --check     # regression gate

``--check`` is the CI perf-regression gate: instead of appending, it runs the
same benchmarks and compares the fresh point against the *best* committed
point in each history file, metric by metric.  Every gated metric carries its
own direction (lower/higher is better) and tolerance — a >15% cold-compile or
p99 regression fails the gate (exit 1), wall-clock metrics get extra absolute
slack so scheduler noise does not flake the job.

``REPRO_BENCH_FAST=1`` (or ``--fast``) shrinks both benchmarks for CI smoke
runs: ``squeezenet`` only, a smaller request count — fast entries are tagged
``"fast": true`` so they are never compared against full runs (``--check``
compares fast points only to committed fast points and vice versa).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ClusterConfig, run_cluster_serving  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.engine.compiled import CompiledModel  # noqa: E402
from repro.serve import ServingConfig, TrafficConfig, run_serving  # noqa: E402
from repro.serve.batcher import BatchPolicy  # noqa: E402

COMPILE_MODELS = ("nasnet_a", "inception_v3", "transformer_block")
FAST_MODELS = ("squeezenet", "transformer_block")
DEVICE = "v100"
#: The checked-in example model the frontend-smoke CI job serves; benched
#: through its file path so the importer + path-keyed registry flow is the
#: thing being measured.
TRANSFORMER_EXAMPLE = str(REPO_ROOT / "examples" / "transformer_block.json")


def _commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def bench_compile(models: tuple[str, ...]) -> dict:
    """Cold compile, warm (cached) recompile, artifact reload — per model."""
    metrics: dict[str, dict] = {}
    for model in models:
        engine = Engine(DEVICE)
        start = time.perf_counter()
        compiled = engine.compile_model(model)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        engine.compile_model(model)
        warm_s = time.perf_counter() - start

        with tempfile.TemporaryDirectory() as tmp:
            artifact = Path(tmp) / f"{model}.json"
            compiled.save(artifact)
            start = time.perf_counter()
            reloaded = CompiledModel.load(artifact)
            reload_s = time.perf_counter() - start
        assert not reloaded.stats.searched, "artifact reload must not re-search"

        metrics[model] = {
            "cold_compile_s": round(cold_s, 4),
            "warm_compile_s": round(warm_s, 6),
            "artifact_reload_s": round(reload_s, 4),
            # Deterministic across machines: the simulated schedule quality.
            "latency_ms": round(compiled.latency_ms(), 4),
            "operators": compiled.stats.operators_out,
            "stages": {
                stage.stage: round(stage.elapsed_s, 4)
                for stage in compiled.stats.stages
            },
        }
        assert engine.stats.cache_hits >= 1, "warm compile must hit the cache"
    return metrics


def bench_serving(fast: bool) -> dict:
    """One fixed seeded scenario; every metric is virtual-clock deterministic."""
    num_requests = 60 if fast else 240
    traffic = TrafficConfig(
        model="squeezenet", pattern="bursty", num_requests=num_requests,
        rate_rps=2000.0, burst_size=24, burst_gap_ms=25.0, slo_ms=25.0, seed=0,
    ).capped_to(8)
    serving = ServingConfig(
        model="squeezenet", fleet="k80:1,v100:2", batch_sizes=(1, 2, 4, 8),
        policy=BatchPolicy(max_batch_size=8, max_wait_ms=2.0),
        admission="deadline",
    )
    start = time.perf_counter()
    report = run_serving(traffic, serving)
    wall_s = time.perf_counter() - start
    slo = report.slo_summary
    metrics = {
        "requests": report.num_requests,
        "batches": report.num_batches,
        "throughput_rps": round(report.throughput_rps, 3),
        "samples_per_s": round(report.throughput_samples_per_s, 3),
        "p50_ms": round(report.latency.p50_ms, 4),
        "p95_ms": round(report.latency.p95_ms, 4),
        "p99_ms": round(report.latency.p99_ms, 4),
        "mean_queue_ms": round(report.queue_delay.mean_ms, 4),
        "attainment": round(slo.attainment_rate, 4),
        "rejected": slo.rejected,
        "harness_wall_s": round(wall_s, 3),
    }
    metrics.update(bench_cluster(fast))
    metrics.update(bench_transformer(fast))
    return metrics


def bench_transformer(fast: bool) -> dict:
    """Serve the example transformer straight from its JSON file.

    The model reaches the workers through ``repro.frontend.load`` (import →
    pass pipeline → schedule), so this point regresses when the importer, the
    matmul/attention cost model or the new fusion passes do.
    """
    num_requests = 60 if fast else 240
    traffic = TrafficConfig(
        model=TRANSFORMER_EXAMPLE, pattern="bursty", num_requests=num_requests,
        rate_rps=600.0, burst_size=16, burst_gap_ms=25.0, slo_ms=30.0, seed=5,
    ).capped_to(8)
    serving = ServingConfig(
        model=TRANSFORMER_EXAMPLE, devices=("v100", "v100"),
        batch_sizes=(1, 2, 4, 8),
        policy=BatchPolicy(max_batch_size=8, max_wait_ms=2.0),
        passes=True, admission="deadline",
    )
    start = time.perf_counter()
    report = run_serving(traffic, serving)
    wall_s = time.perf_counter() - start
    slo = report.slo_summary
    return {
        "transformer_throughput_rps": round(report.throughput_rps, 3),
        "transformer_p50_ms": round(report.latency.p50_ms, 4),
        "transformer_p99_ms": round(report.latency.p99_ms, 4),
        "transformer_attainment": round(slo.attainment_rate, 4),
        "transformer_harness_wall_s": round(wall_s, 3),
    }


def bench_cluster(fast: bool) -> dict:
    """A 4-host partitioned replay; virtual-clock deterministic like the rest."""
    num_requests = 60 if fast else 240
    traffic = TrafficConfig(
        model="squeezenet", pattern="bursty", num_requests=num_requests,
        rate_rps=400.0, burst_size=32, burst_gap_ms=40.0, slo_ms=40.0, seed=11,
    ).capped_to(8)
    serving = ServingConfig(
        model="squeezenet", devices=("k80",), batch_sizes=(1, 2, 4, 8),
        policy=BatchPolicy(max_batch_size=8, max_wait_ms=2.0),
    )
    cluster = ClusterConfig(
        serving=serving, num_hosts=4, partition=True,
        router="partition-affinity", link="bw=12.5,lat=0.05",
    )
    start = time.perf_counter()
    report = run_cluster_serving(traffic, cluster)
    wall_s = time.perf_counter() - start
    return {
        "cluster_attainment": round(report.attainment, 4),
        "cluster_p99_ms": round(report.report.latency.p99_ms, 4),
        "cluster_transfers": report.transfers.count,
        "cluster_transfer_ms": round(report.transfers.total_ms, 4),
        "cluster_harness_wall_s": round(wall_s, 3),
    }


# ---------------------------------------------------------------------------
# Regression gate (--check)
# ---------------------------------------------------------------------------
# metric -> (direction, relative tolerance, absolute slack).  Direction says
# which way is better; a fresh value is a regression when it lands beyond
# best * (1 +/- tolerance) +/- slack.  Virtual-clock metrics (latencies,
# throughput, attainment) are deterministic and gate tightly; wall-clock
# seconds get absolute slack so machine noise does not flake CI.
COMPILE_CHECKS = {
    "cold_compile_s": ("lower", 0.15, 0.25),
    "artifact_reload_s": ("lower", 0.50, 0.05),
    "latency_ms": ("lower", 0.02, 0.0),
}
SERVING_CHECKS = {
    "p50_ms": ("lower", 0.15, 0.0),
    "p99_ms": ("lower", 0.15, 0.0),
    "mean_queue_ms": ("lower", 0.25, 0.0),
    "throughput_rps": ("higher", 0.15, 0.0),
    "attainment": ("higher", 0.05, 0.0),
    "cluster_attainment": ("higher", 0.05, 0.0),
    "cluster_p99_ms": ("lower", 0.15, 0.0),
    "cluster_transfer_ms": ("lower", 0.15, 0.0),
    "transformer_p99_ms": ("lower", 0.15, 0.0),
    "transformer_attainment": ("higher", 0.05, 0.0),
}


def _load_history(path: Path) -> list[dict]:
    if not path.exists():
        return []
    history = json.loads(path.read_text())
    if not isinstance(history, list):
        raise SystemExit(f"{path} must contain a JSON list")
    return history


def _comparable(history: list[dict], fast: bool) -> list[dict]:
    """Committed points with the same fast/full tag as the fresh run."""
    return [entry for entry in history if bool(entry.get("fast")) == fast]


def _best(values: list[float], direction: str) -> float:
    return min(values) if direction == "lower" else max(values)


def _check_metric(
    label: str, fresh: float, best: float, direction: str,
    tolerance: float, slack: float,
) -> str | None:
    """One gated metric; returns a failure line or None, printing either way."""
    if direction == "lower":
        limit = best * (1.0 + tolerance) + slack
        regressed = fresh > limit
        delta = (fresh - best) / best if best else 0.0
    else:
        limit = best * (1.0 - tolerance) - slack
        regressed = fresh < limit
        delta = (best - fresh) / best if best else 0.0
    verdict = "REGRESSION" if regressed else "ok"
    print(
        f"  {label}: {fresh:g} vs best {best:g} "
        f"({delta:+.1%} worse, tolerance {tolerance:.0%}) {verdict}"
    )
    if regressed:
        return f"{label}: {fresh:g} regressed past {limit:g} (best {best:g})"
    return None


def check_compile(fresh: dict, history: list[dict], fast: bool) -> list[str]:
    """Gate the fresh compile point against the best committed values."""
    failures: list[str] = []
    for model, metrics in fresh.items():
        for name, (direction, tolerance, slack) in COMPILE_CHECKS.items():
            committed = [
                entry["metrics"][model][name]
                for entry in _comparable(history, fast)
                if model in entry.get("metrics", {})
                and name in entry["metrics"][model]
            ]
            if not committed:
                print(f"  {model}.{name}: no comparable committed points, skipped")
                continue
            failure = _check_metric(
                f"{model}.{name}", metrics[name], _best(committed, direction),
                direction, tolerance, slack,
            )
            if failure:
                failures.append(failure)
    return failures


def check_serving(fresh: dict, history: list[dict], fast: bool) -> list[str]:
    """Gate the fresh serving point against the best committed values."""
    failures: list[str] = []
    for name, (direction, tolerance, slack) in SERVING_CHECKS.items():
        committed = [
            entry["metrics"][name]
            for entry in _comparable(history, fast)
            if name in entry.get("metrics", {})
        ]
        if not committed:
            print(f"  {name}: no comparable committed points, skipped")
            continue
        failure = _check_metric(
            name, fresh[name], _best(committed, direction),
            direction, tolerance, slack,
        )
        if failure:
            failures.append(failure)
    return failures


def append_point(path: Path, entry: dict, dry_run: bool) -> None:
    history = json.loads(path.read_text()) if path.exists() else []
    if not isinstance(history, list):
        raise SystemExit(f"{path} must contain a JSON list")
    history.append(entry)
    rendered = json.dumps(history, indent=2, sort_keys=True) + "\n"
    if dry_run:
        print(f"--- {path.name} (dry run, not written) ---")
        print(json.dumps(entry, indent=2, sort_keys=True))
    else:
        path.write_text(rendered)
        print(f"appended data point {len(history)} to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI smoke mode (also via REPRO_BENCH_FAST=1)")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the data points without writing the files")
    parser.add_argument("--check", action="store_true",
                        help="regression gate: compare a fresh run against the "
                        "best committed point instead of appending; exit 1 on "
                        "any gated-metric regression")
    parser.add_argument("--output-dir", default=REPO_ROOT, type=Path,
                        help="where BENCH_*.json live (default: repo root)")
    args = parser.parse_args(argv)
    fast = args.fast or os.environ.get("REPRO_BENCH_FAST") == "1"

    models = FAST_MODELS if fast else COMPILE_MODELS
    if args.check:
        failures: list[str] = []
        print(f"bench gate ({'fast' if fast else 'full'} mode)")
        print("BENCH_compile.json:")
        failures += check_compile(
            bench_compile(models),
            _load_history(args.output_dir / "BENCH_compile.json"), fast,
        )
        print("BENCH_serving.json:")
        failures += check_serving(
            bench_serving(fast),
            _load_history(args.output_dir / "BENCH_serving.json"), fast,
        )
        if failures:
            print(f"FAILED: {len(failures)} regression(s)")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("PASSED: no gated metric regressed")
        return 0

    stamp = {
        "commit": _commit(),
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if fast:
        stamp["fast"] = True

    compile_entry = dict(stamp, metrics=bench_compile(models))
    append_point(args.output_dir / "BENCH_compile.json", compile_entry, args.dry_run)

    serving_entry = dict(stamp, metrics=bench_serving(fast))
    append_point(args.output_dir / "BENCH_serving.json", serving_entry, args.dry_run)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
