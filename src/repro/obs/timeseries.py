"""Windowed time series: bounded-memory live metrics on the virtual clock.

The :class:`~repro.obs.metrics.MetricsRegistry` answers "what happened over
the whole run" — one snapshot at the end.  At trace-replay scale that is not
enough: an operator (or an alert rule) needs to know what the p99 and the
attainment look like *right now*, and keeping every raw observation around to
answer that would grow without bound.

:class:`TimeSeriesRegistry` closes the gap.  It is a drop-in
:class:`~repro.obs.metrics.MetricsRegistry` — the serving loop's call sites
(``metrics.counter(...).inc()`` et al.) do not change — whose families
additionally bucket every observation into fixed virtual-time windows:

* **counters** keep the per-window increment sum (→ rates);
* **gauges** keep the per-window last value and high-water mark;
* **histograms** keep one bounded :class:`StreamingQuantile` sketch per
  window instead of the raw samples.

Windows live in a ring: at most ``max_windows`` of them are retained per
series, so memory stays **O(windows × series)** no matter how many requests
flow through.  The loop advances the registry's clock as its event heap
drains; every window close is reported so alert rules
(:mod:`repro.obs.alerts`) and the ``--watch`` dashboard can act *during* the
run, not after it.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence, TextIO

from .metrics import Counter, Gauge, Histogram, Metric, MetricsRegistry, _label_key

__all__ = [
    "StreamingQuantile",
    "WindowSpan",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "WindowedSeries",
    "TimeSeriesRegistry",
    "WatchRenderer",
]


class StreamingQuantile:
    """A bounded, mergeable, deterministic quantile sketch.

    The classic streaming histogram of Ben-Haim & Tom-Yossef: observations
    insert as unit-weight bins; when the sketch exceeds ``max_bins`` the two
    *closest* adjacent bins merge into their weighted centroid (ties break on
    the lower index, so the compaction is deterministic).  While fewer than
    ``max_bins`` distinct values have been observed the sketch is exact;
    beyond that, quantiles interpolate between centroids and are clamped to
    the true ``[min, max]``, which the sketch tracks exactly alongside
    ``count`` and ``sum``.
    """

    __slots__ = ("max_bins", "_centroids", "_weights", "count", "sum", "min", "max")

    def __init__(self, max_bins: int = 64):
        if max_bins < 2:
            raise ValueError(f"a quantile sketch needs >= 2 bins, got {max_bins}")
        self.max_bins = max_bins
        self._centroids: list[float] = []
        self._weights: list[float] = []
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        index = bisect.bisect_left(self._centroids, value)
        if index < len(self._centroids) and self._centroids[index] == value:
            self._weights[index] += 1.0
        else:
            self._centroids.insert(index, value)
            self._weights.insert(index, 1.0)
            if len(self._centroids) > self.max_bins:
                self._compact()

    def _compact(self) -> None:
        """Merge the closest adjacent bin pair (lowest index wins ties)."""
        centroids, weights = self._centroids, self._weights
        best, best_gap = 0, float("inf")
        for i in range(len(centroids) - 1):
            gap = centroids[i + 1] - centroids[i]
            if gap < best_gap:
                best, best_gap = i, gap
        w = weights[best] + weights[best + 1]
        centroids[best] = (
            centroids[best] * weights[best] + centroids[best + 1] * weights[best + 1]
        ) / w
        weights[best] = w
        del centroids[best + 1]
        del weights[best + 1]

    def merge(self, other: "StreamingQuantile") -> "StreamingQuantile":
        """Fold ``other`` into this sketch (used to aggregate label sets)."""
        for centroid, weight in zip(other._centroids, other._weights):
            index = bisect.bisect_left(self._centroids, centroid)
            if index < len(self._centroids) and self._centroids[index] == centroid:
                self._weights[index] += weight
            else:
                self._centroids.insert(index, centroid)
                self._weights.insert(index, weight)
        while len(self._centroids) > self.max_bins:
            self._compact()
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def copy(self) -> "StreamingQuantile":
        clone = StreamingQuantile(self.max_bins)
        clone._centroids = list(self._centroids)
        clone._weights = list(self._weights)
        clone.count, clone.sum = self.count, self.sum
        clone.min, clone.max = self.min, self.max
        return clone

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (0..100), clamped to the exact [min, max]."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            raise ValueError("quantile of an empty sketch")
        centroids, weights = self._centroids, self._weights
        if len(centroids) == 1:
            return centroids[0]
        target = q / 100.0 * self.count
        # Each bin is treated as centred on its centroid: the cumulative
        # weight *at* centroid i is sum(w[:i]) + w[i]/2.
        cumulative = 0.0
        previous_c, previous_cum = self.min, 0.0
        for centroid, weight in zip(centroids, weights):
            centre = cumulative + weight / 2.0
            if target <= centre:
                span = centre - previous_cum
                fraction = (target - previous_cum) / span if span > 0 else 0.0
                value = previous_c + fraction * (centroid - previous_c)
                return min(max(value, self.min), self.max)
            previous_c, previous_cum = centroid, centre
            cumulative += weight
        return self.max

    def __len__(self) -> int:
        return len(self._centroids)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<StreamingQuantile n={self.count} bins={len(self._centroids)}"
            f"/{self.max_bins}>"
        )


@dataclass(frozen=True)
class WindowSpan:
    """One closed virtual-time window ``[start_ms, end_ms)``."""

    index: int
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class WindowedSeries:
    """Ring buffer of per-window buckets for one labelled series.

    ``kind`` selects the bucket shape: ``"counter"`` buckets are increment
    sums, ``"gauge"`` buckets are ``(last, max)`` pairs, ``"histogram"``
    buckets are :class:`StreamingQuantile` sketches.  At most ``max_windows``
    buckets are retained; older ones evict in insertion order.
    """

    __slots__ = ("kind", "max_windows", "sketch_bins", "_buckets")

    def __init__(self, kind: str, max_windows: int, sketch_bins: int = 64):
        self.kind = kind
        self.max_windows = max_windows
        self.sketch_bins = sketch_bins
        self._buckets: OrderedDict[int, object] = OrderedDict()

    def _bucket(self, index: int):
        bucket = self._buckets.get(index)
        if bucket is None:
            if self.kind == "counter":
                bucket = 0.0
            elif self.kind == "gauge":
                bucket = (0.0, float("-inf"))
            else:
                bucket = StreamingQuantile(self.sketch_bins)
            self._buckets[index] = bucket
            while len(self._buckets) > self.max_windows:
                self._buckets.popitem(last=False)
        return bucket

    def record(self, index: int, value: float) -> None:
        if self.kind == "counter":
            self._buckets[index] = self._bucket(index) + value
        elif self.kind == "gauge":
            _, high = self._bucket(index)
            self._buckets[index] = (value, max(high, value))
        else:
            self._bucket(index).observe(value)

    def get(self, index: int):
        """The bucket of window ``index`` (``None`` when nothing recorded)."""
        return self._buckets.get(index)

    def indices(self) -> list[int]:
        """Window indices with data, oldest first."""
        return list(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)


class _WindowedFamily(Metric):
    """Mixin: routes every observation into per-window buckets too."""

    _window_kind = "counter"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._registry: "TimeSeriesRegistry | None" = None
        self._windows: dict[tuple, WindowedSeries] = {}

    def _window_record(self, labels: dict, value: float) -> None:
        registry = self._registry
        if registry is None:
            return
        key = _label_key(labels)
        series = self._windows.get(key)
        if series is None:
            series = WindowedSeries(
                self._window_kind, registry.max_windows, registry.sketch_bins
            )
            self._windows[key] = series
        series.record(registry.window_index(), value)

    # ------------------------------------------------------- window queries
    def window_series(self, **labels) -> WindowedSeries | None:
        """The windowed series of one label set, if anything was recorded."""
        return self._windows.get(_label_key(labels))

    def _window_buckets(self, index: int) -> list:
        return [
            bucket
            for series in self._windows.values()
            if (bucket := series.get(index)) is not None
        ]


class WindowedCounter(_WindowedFamily, Counter):
    """A :class:`~repro.obs.metrics.Counter` with per-window increment sums."""

    _window_kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        super().inc(value, **labels)
        self._window_record(labels, value)

    def window_total(self, index: int) -> float:
        """Sum of increments across every label set in window ``index``."""
        return float(sum(self._window_buckets(index)))

    def window_rate(self, index: int) -> float:
        """Increments per *second* over window ``index``."""
        assert self._registry is not None
        return self.window_total(index) / (self._registry.window_ms / 1e3)


class WindowedGauge(_WindowedFamily, Gauge):
    """A :class:`~repro.obs.metrics.Gauge` with per-window last/max values."""

    _window_kind = "gauge"

    def set(self, value: float, **labels) -> None:
        super().set(value, **labels)
        self._window_record(labels, float(value))

    def window_last(self, index: int, **labels) -> float | None:
        """Last value written in window ``index`` (one label set)."""
        series = self._windows.get(_label_key(labels))
        bucket = series.get(index) if series is not None else None
        return bucket[0] if bucket is not None else None

    def window_max(self, index: int) -> float | None:
        """High-water mark across every label set in window ``index``."""
        buckets = self._window_buckets(index)
        if not buckets:
            return None
        return max(high for _, high in buckets)


class WindowedHistogram(_WindowedFamily, Histogram):
    """A :class:`~repro.obs.metrics.Histogram` with one sketch per window.

    The cumulative family still keeps exact observations (snapshots and
    end-of-run quantiles are unchanged); the *windows* hold bounded
    :class:`StreamingQuantile` sketches instead of raw samples.
    """

    _window_kind = "histogram"

    def observe(self, value: float, **labels) -> None:
        super().observe(value, **labels)
        self._window_record(labels, float(value))

    def window_sketch(self, index: int) -> StreamingQuantile | None:
        """Merged sketch across every label set in window ``index``."""
        buckets = self._window_buckets(index)
        if not buckets:
            return None
        merged = buckets[0].copy()
        for bucket in buckets[1:]:
            merged.merge(bucket)
        return merged

    def window_quantile(self, index: int, q: float) -> float | None:
        """Sketch quantile of window ``index`` (``None`` when empty)."""
        sketch = self.window_sketch(index)
        return sketch.quantile(q) if sketch is not None else None


#: Plain family class → windowed replacement, used by the registry factory.
_WINDOWED = {Counter: WindowedCounter, Gauge: WindowedGauge, Histogram: WindowedHistogram}


class TimeSeriesRegistry(MetricsRegistry):
    """A :class:`~repro.obs.metrics.MetricsRegistry` whose families window.

    Drop-in compatible: instrumented call sites keep calling
    ``registry.counter(name).inc(...)`` — the families they get back are the
    windowed subclasses, so every observation also lands in the bucket of the
    *current* virtual-time window.  The driver (the serving loop) owns the
    clock: it calls :meth:`advance` with the event time as the simulation
    progresses, and :meth:`advance` returns every window that closed so alert
    rules and dashboards can react on the boundary.

    Parameters
    ----------
    window_ms:
        Width of one window on the virtual clock.
    max_windows:
        Ring capacity per series — memory stays bounded at trace-replay
        scale.  Long idle gaps close at most this many trailing windows.
    sketch_bins:
        Bin budget of each per-window :class:`StreamingQuantile`.
    """

    def __init__(self, window_ms: float = 50.0, max_windows: int = 240,
                 sketch_bins: int = 64):
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        if max_windows < 1:
            raise ValueError(f"max_windows must be >= 1, got {max_windows}")
        super().__init__()
        self.window_ms = float(window_ms)
        self.max_windows = int(max_windows)
        self.sketch_bins = int(sketch_bins)
        self._now_ms = 0.0
        self._index = 0

    # ------------------------------------------------------------ factories
    def _get_or_create(self, cls: type[Metric], name: str, description: str) -> Metric:
        metric = super()._get_or_create(_WINDOWED.get(cls, cls), name, description)
        if isinstance(metric, _WindowedFamily) and metric._registry is None:
            metric._registry = self
        return metric

    # ----------------------------------------------------------------- clock
    @property
    def now_ms(self) -> float:
        """The registry's current virtual time."""
        return self._now_ms

    def window_index(self, ts_ms: float | None = None) -> int:
        """Window index holding ``ts_ms`` (default: the current time)."""
        ts = self._now_ms if ts_ms is None else ts_ms
        return int(ts // self.window_ms)

    def window_span(self, index: int) -> WindowSpan:
        """The ``[start, end)`` span of window ``index``."""
        return WindowSpan(
            index=index,
            start_ms=index * self.window_ms,
            end_ms=(index + 1) * self.window_ms,
        )

    def advance(self, now_ms: float) -> list[WindowSpan]:
        """Move the clock to ``now_ms``; return every window that closed.

        Time never moves backwards (the driver replays an ordered event
        heap).  A long idle gap closes at most ``max_windows`` trailing
        windows — older ones would have evicted from every ring anyway.
        """
        if now_ms < self._now_ms:
            return []
        self._now_ms = now_ms
        new_index = self.window_index(now_ms)
        if new_index <= self._index:
            return []
        first = max(self._index, new_index - self.max_windows)
        closed = [self.window_span(i) for i in range(first, new_index)]
        self._index = new_index
        return closed

    def flush(self) -> WindowSpan:
        """Close the current (partial) window at the end of a run."""
        span = self.window_span(self._index)
        self._index += 1
        return span

    def clear(self) -> None:
        """Drop every family and restart the clock at window 0."""
        super().clear()
        self._now_ms = 0.0
        self._index = 0

    # --------------------------------------------------------------- export
    def window_snapshot(self, indices: Iterable[int] | None = None) -> dict:
        """Deterministic dict form of the windowed data (docs/tests helper).

        One entry per family with windowed series; histograms export sketch
        quantiles, not raw samples, so the document stays bounded.
        """
        out: dict[str, object] = {}
        for name in self.names():
            family = self.get(name)
            if not isinstance(family, _WindowedFamily) or not family._windows:
                continue
            rows = []
            for key in sorted(family._windows):
                series = family._windows[key]
                wanted = series.indices() if indices is None else [
                    i for i in indices if series.get(i) is not None
                ]
                windows = []
                for index in wanted:
                    bucket = series.get(index)
                    span = self.window_span(index)
                    entry: dict[str, object] = {
                        "index": index,
                        "start_ms": span.start_ms,
                        "end_ms": span.end_ms,
                    }
                    if series.kind == "counter":
                        entry["sum"] = bucket
                    elif series.kind == "gauge":
                        entry["last"], entry["max"] = bucket
                    else:
                        entry.update(
                            count=bucket.count,
                            sum=round(bucket.sum, 6),
                            p50=round(bucket.quantile(50), 6),
                            p95=round(bucket.quantile(95), 6),
                            p99=round(bucket.quantile(99), 6),
                        )
                    windows.append(entry)
                rows.append({"labels": dict(key), "windows": windows})
            out[name] = {"type": family.kind, "series": rows}
        return out


class WatchRenderer:
    """Render one dashboard line per closed window (the ``--watch`` view).

    The line is assembled purely from the :class:`TimeSeriesRegistry`'s
    windowed families — rps from the offered counter, p99 from the latency
    sketch, attainment from the per-window SLO counters, queue depth from the
    gauge — plus whichever alerts are firing.  Windows with no activity are
    skipped.
    """

    def __init__(self, stream: TextIO | None = None, every: int = 1):
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self.every = max(1, int(every))
        self._emitted = 0

    def emit(
        self,
        registry: TimeSeriesRegistry,
        window: WindowSpan,
        firing: Sequence[str] = (),
    ) -> str | None:
        """Render (and print) the dashboard line of one closed window."""
        offered = registry.counter("serve.requests.offered")
        rate = offered.window_rate(window.index)
        latency = registry.histogram("serve.latency_ms")
        queue = registry.gauge("serve.queue.depth")
        met = registry.counter("serve.slo.met").window_total(window.index)
        missed = registry.counter("serve.slo.missed").window_total(window.index)
        depth = queue.window_max(window.index)
        p99 = latency.window_quantile(window.index, 99)
        if not rate and p99 is None and depth is None and not (met or missed):
            return None
        self._emitted += 1
        if (self._emitted - 1) % self.every:
            return None
        parts = [f"[{window.end_ms:9.1f}ms]", f"rps {rate:7.0f}"]
        parts.append(f"p99 {p99:8.3f}ms" if p99 is not None else "p99        -")
        if met or missed:
            parts.append(f"slo {met / (met + missed):6.1%}")
        else:
            parts.append("slo      -")
        parts.append(f"queue {int(depth) if depth is not None else 0:3d}")
        if firing:
            parts.append("ALERTS: " + ",".join(firing))
        line = "  ".join(parts)
        print(line, file=self.stream)
        return line
