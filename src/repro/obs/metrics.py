"""Metrics registry: counters, gauges and histograms with deterministic export.

Every layer of the system used to keep its own ad-hoc tallies (the serving
loop counted executions in a dict, admission kept rejection reasons, the
autoscaler its events).  The :class:`MetricsRegistry` replaces that parallel
bookkeeping with one typed store:

* :class:`Counter` — monotonically increasing totals (requests offered,
  admission rejects by reason, executions per batch size);
* :class:`Gauge` — last-written values (queue depth, pool size, per-worker
  busy/lifetime milliseconds);
* :class:`Histogram` — full value distributions with the same percentile
  arithmetic the serving report uses (latency, queue delay, batch occupancy).

Each metric is a *family*: series within a family are keyed by labels
(``counter.inc(reason="predicted-deadline-miss")``), so one counter holds the
whole breakdown.  :meth:`MetricsRegistry.snapshot` exports everything as one
nested dict with sorted keys, and :meth:`MetricsRegistry.to_json` renders it
byte-deterministically — the same run always dumps the same document.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "HISTOGRAM_QUANTILES",
    "QUANTILE_DECIMALS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "quantiles_reference",
]

#: Internal series key: labels as a sorted tuple of (name, value) pairs.
_LabelKey = tuple

#: Histogram quantiles exported by snapshots, in export order.
HISTOGRAM_QUANTILES = (50.0, 95.0, 99.0)

#: Decimal places snapshot quantiles round to.  ``np.percentile`` interpolates
#: between observations, and the last bits of that arithmetic vary across
#: platforms/BLAS builds — rounding to fixed precision keeps
#: :meth:`MetricsRegistry.to_json` byte-stable everywhere.
QUANTILE_DECIMALS = 6


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    """Canonical hashable form of a label set (sorted, values stringified)."""
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class Metric:
    """Base of all metric families: a name, a kind, and labelled series."""

    kind = "metric"

    def __init__(self, name: str, description: str = ""):
        if not name:
            raise ValueError("a metric needs a non-empty name")
        self.name = name
        self.description = description

    def labelsets(self) -> list[dict[str, str]]:
        """Every label set with a recorded series, in sorted order."""
        return [dict(key) for key in sorted(self._series)]

    def _snapshot_series(self, key: _LabelKey) -> dict[str, object]:
        raise NotImplementedError

    def snapshot(self) -> dict[str, object]:
        """Deterministic dict form of the whole family."""
        return {
            "type": self.kind,
            "description": self.description,
            "series": [
                {"labels": dict(key), **self._snapshot_series(key)}
                for key in sorted(self._series)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r} ({len(self._series)} series)>"


class Counter(Metric):
    """A monotonically increasing total, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._series: dict[_LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        """Add ``value`` (>= 0) to the series selected by ``labels``."""
        if value < 0:
            raise ValueError(
                f"counter {self.name!r} can only increase; got inc({value})"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current total of one series (0 if it never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every series of the family."""
        return sum(self._series.values())

    def by_label(self, label: str) -> dict[str, float]:
        """Totals grouped by one label's values (e.g. rejects by reason)."""
        grouped: dict[str, float] = {}
        for key, value in self._series.items():
            for name, label_value in key:
                if name == label:
                    grouped[label_value] = grouped.get(label_value, 0.0) + value
        return dict(sorted(grouped.items()))

    def _snapshot_series(self, key: _LabelKey) -> dict[str, object]:
        return {"value": self._series[key]}


class Gauge(Metric):
    """A last-written value per label set (queue depth, pool size)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._series: dict[_LabelKey, float] = {}
        self._max: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        """Overwrite the series value (the high-water mark is kept too)."""
        key = _label_key(labels)
        self._series[key] = float(value)
        self._max[key] = max(self._max.get(key, float("-inf")), float(value))

    def add(self, delta: float, **labels) -> None:
        """Adjust the series by ``delta`` (convenience for up/down tracking)."""
        self.set(self.value(**labels) + delta, **labels)

    def value(self, **labels) -> float:
        """Current value of one series (0 if never set)."""
        return self._series.get(_label_key(labels), 0.0)

    def max(self, **labels) -> float:
        """High-water mark of one series (0 if never set)."""
        key = _label_key(labels)
        return self._max.get(key, 0.0) if key in self._series else 0.0

    def _snapshot_series(self, key: _LabelKey) -> dict[str, object]:
        return {"value": self._series[key], "max": self._max[key]}


class Histogram(Metric):
    """A full value distribution per label set.

    Observations are kept verbatim (runs are bounded and deterministic), so
    quantiles are *exact* — the same linear-interpolation arithmetic as
    ``numpy.percentile``, which the serving report's latency summaries already
    use.  No bucket-boundary approximation can drift from the report.
    """

    kind = "histogram"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._series: dict[_LabelKey, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation in the series selected by ``labels``."""
        self._series.setdefault(_label_key(labels), []).append(float(value))

    def values(self, **labels) -> list[float]:
        """All observations of one series, in observation order."""
        return list(self._series.get(_label_key(labels), ()))

    def count(self, **labels) -> int:
        return len(self._series.get(_label_key(labels), ()))

    def sum(self, **labels) -> float:
        return float(sum(self._series.get(_label_key(labels), ())))

    def quantile(self, q: float, **labels) -> float:
        """The ``q``-th percentile (0..100) with linear interpolation."""
        values = self._series.get(_label_key(labels))
        if not values:
            raise ValueError(
                f"histogram {self.name!r} has no observations for labels {labels!r}"
            )
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(values, q))

    def _snapshot_series(self, key: _LabelKey) -> dict[str, object]:
        values = self._series[key]
        summary: dict[str, object] = {
            "count": len(values),
            "sum": float(sum(values)),
            "min": min(values),
            "max": max(values),
            "mean": float(sum(values)) / len(values),
        }
        for q in HISTOGRAM_QUANTILES:
            summary[f"p{q:g}"] = round(float(np.percentile(values, q)), QUANTILE_DECIMALS)
        return summary


class MetricsRegistry:
    """One namespace of metric families, the single home of a run's tallies.

    Families are created lazily and memoised by name —
    ``registry.counter("serve.requests.offered")`` returns the same
    :class:`Counter` on every call, and asking for an existing name with a
    different type raises, so two subsystems can never fight over a name.
    """

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------- factories
    def _get_or_create(self, cls: type[Metric], name: str, description: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, description)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        elif description and not metric.description:
            metric.description = description
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        """The counter family ``name`` (created on first use)."""
        return self._get_or_create(Counter, name, description)  # type: ignore[return-value]

    def gauge(self, name: str, description: str = "") -> Gauge:
        """The gauge family ``name`` (created on first use)."""
        return self._get_or_create(Gauge, name, description)  # type: ignore[return-value]

    def histogram(self, name: str, description: str = "") -> Histogram:
        """The histogram family ``name`` (created on first use)."""
        return self._get_or_create(Histogram, name, description)  # type: ignore[return-value]

    # --------------------------------------------------------------- queries
    def get(self, name: str) -> Metric | None:
        """The family registered as ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """All registered family names, sorted."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # ---------------------------------------------------------------- export
    def snapshot(self) -> dict[str, object]:
        """Deterministic nested-dict export of every family, names sorted."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def to_json(self, indent: int | None = 2) -> str:
        """Byte-deterministic JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write(self, path):
        """Dump :meth:`to_json` to ``path`` (parent directories created)."""
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")
        return target

    def clear(self) -> None:
        """Drop every family (a fresh namespace)."""
        self._metrics.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<MetricsRegistry {len(self._metrics)} families>"


def quantiles_reference(values: Sequence[float], qs=HISTOGRAM_QUANTILES) -> dict[str, float]:
    """Numpy-computed reference quantiles (what snapshot arithmetic must match)."""
    return {
        f"p{q:g}": round(float(np.percentile(list(values), q)), QUANTILE_DECIMALS)
        for q in qs
    }
