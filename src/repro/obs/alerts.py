"""Declarative alert rules evaluated on window close, inside the run.

PR 6's observability is post-hoc: an SLO regression only becomes visible when
the final :class:`~repro.serve.metrics.ServingReport` prints.  This module
makes it visible *while the simulation runs*: the serving loop hands every
closed :class:`~repro.obs.timeseries.WindowSpan` to an :class:`AlertManager`,
which evaluates a set of :class:`AlertRule`\\ s against the windowed series
and emits typed :class:`AlertEvent`\\ s on state *transitions* — once when a
rule starts firing, once when it resolves.  Events land in three places: the
trace (as ``alert``-category instants), the serving report (``alerts``
section), and — for firing events — the autoscaler's alert hook, so a
burn-rate breach can trigger scale-up ahead of the backlog watermark.

Three rule shapes cover the serving SLO surface:

* :class:`ThresholdRule` — a window statistic of one metric crossed a line
  for N consecutive windows (e.g. windowed p99 latency above the SLO).
* :class:`BurnRateRule` — the multi-window SLO burn rate: how fast the run
  is spending its error budget, measured over a short and a long trailing
  span of windows.  Both must breach for the rule to fire — the long span
  filters blips, the short one makes resolution fast.
* :class:`QueueSaturationRule` — the queue-depth high-water mark pinned at or
  above a limit for N consecutive windows.

Everything runs on the virtual clock over deterministic series, so alert
firing and resolution are reproducible run to run.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .timeseries import TimeSeriesRegistry, WindowSpan

__all__ = [
    "AlertEvent",
    "AlertManager",
    "AlertRule",
    "BurnRateRule",
    "HostSaturationRule",
    "QueueSaturationRule",
    "ThresholdRule",
    "alerts_snapshot",
    "default_alert_rules",
    "parse_alert_rules",
    "per_host_alert_rules",
]

#: Counter families the serving loop feeds per request outcome; the burn-rate
#: rule reads their per-window deltas.
SLO_MET_METRIC = "serve.slo.met"
SLO_MISSED_METRIC = "serve.slo.missed"


@dataclass(frozen=True)
class AlertEvent:
    """One alert state transition (``firing`` or ``resolved``)."""

    time_ms: float
    rule: str
    state: str
    value: float
    threshold: float
    message: str
    severity: str = "warning"

    def summary(self) -> str:
        """One human-readable line (used by reports and ``--watch``)."""
        return (
            f"[{self.time_ms:9.1f}ms] {self.state.upper():8s} {self.rule}: "
            f"{self.message}"
        )


class AlertRule:
    """Base rule: a name, a severity, and a per-window breach predicate.

    Subclasses implement :meth:`observe`, returning the measured value when
    the window *breaches* and ``None`` otherwise; the manager turns breach
    streak edges into :class:`AlertEvent` transitions.
    """

    def __init__(self, name: str, severity: str = "warning"):
        if not name:
            raise ValueError("an alert rule needs a non-empty name")
        self.name = name
        self.severity = severity
        self.threshold = 0.0

    def observe(
        self, registry: "TimeSeriesRegistry", window: "WindowSpan"
    ) -> float | None:
        raise NotImplementedError

    def message(self, value: float) -> str:
        return f"value {value:g} vs threshold {self.threshold:g}"

    def reset(self) -> None:
        """Forget per-run state (breach streaks); rules are reusable."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r}>"


class ThresholdRule(AlertRule):
    """A window statistic of one metric crossed a threshold.

    ``stat`` selects the statistic per family kind: counters support
    ``"sum"``/``"rate"`` (increments per window / per second), gauges
    ``"last"``/``"max"``, histograms ``"p<q>"`` sketch quantiles (``"p99"``)
    or ``"mean"``.  Windows with no data for the metric do not breach.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        stat: str,
        threshold: float,
        *,
        op: str = ">",
        for_windows: int = 1,
        severity: str = "warning",
    ):
        super().__init__(name, severity)
        if op not in (">", ">=", "<", "<="):
            raise ValueError(f"unsupported comparison {op!r}")
        if for_windows < 1:
            raise ValueError(f"for_windows must be >= 1, got {for_windows}")
        self.metric = metric
        self.stat = stat
        self.threshold = float(threshold)
        self.op = op
        self.for_windows = for_windows
        self._streak = 0

    def _measure(
        self, registry: "TimeSeriesRegistry", window: "WindowSpan"
    ) -> float | None:
        family = registry.get(self.metric)
        if family is None:
            return None
        stat = self.stat
        if family.kind == "counter":
            if stat == "rate":
                return family.window_rate(window.index)
            return family.window_total(window.index)
        if family.kind == "gauge":
            if stat == "last":
                return family.window_last(window.index)
            return family.window_max(window.index)
        if stat == "mean":
            sketch = family.window_sketch(window.index)
            return sketch.mean if sketch is not None else None
        return family.window_quantile(window.index, float(stat.lstrip("p")))

    def observe(
        self, registry: "TimeSeriesRegistry", window: "WindowSpan"
    ) -> float | None:
        value = self._measure(registry, window)
        breached = value is not None and {
            ">": value > self.threshold,
            ">=": value >= self.threshold,
            "<": value < self.threshold,
            "<=": value <= self.threshold,
        }[self.op]
        self._streak = self._streak + 1 if breached else 0
        return value if self._streak >= self.for_windows else None

    def reset(self) -> None:
        self._streak = 0

    def message(self, value: float) -> str:
        return (
            f"{self.metric} {self.stat} {value:g} {self.op} {self.threshold:g} "
            f"for {self.for_windows} window(s)"
        )


class BurnRateRule(AlertRule):
    """Multi-window SLO burn rate over the attainment series.

    With an attainment target of ``target`` the run's *error budget* is
    ``1 - target`` — the fraction of requests allowed to miss.  The burn rate
    of a span of windows is ``miss_fraction / error_budget``: burn 1.0 spends
    the budget exactly; burn ``factor`` spends it ``factor`` times too fast.
    The rule fires when **both** the short and the long trailing spans burn at
    ``>= factor`` — the long window keeps single-burst noise from paging, the
    short window resolves the alert quickly once the system recovers.  Spans
    with no finished requests do not breach.
    """

    def __init__(
        self,
        name: str,
        target: float,
        *,
        factor: float = 2.0,
        short_windows: int = 2,
        long_windows: int = 8,
        severity: str = "critical",
    ):
        super().__init__(name, severity)
        if not 0.0 < target < 1.0:
            raise ValueError(f"attainment target must be in (0, 1), got {target}")
        if short_windows < 1 or long_windows < short_windows:
            raise ValueError(
                f"need 1 <= short_windows <= long_windows, got "
                f"{short_windows}/{long_windows}"
            )
        self.target = float(target)
        self.factor = float(factor)
        self.short_windows = short_windows
        self.long_windows = long_windows
        self.threshold = self.factor

    def _burn(self, registry: "TimeSeriesRegistry", last: int, span: int) -> float | None:
        met_family = registry.get(SLO_MET_METRIC)
        missed_family = registry.get(SLO_MISSED_METRIC)
        met = missed = 0.0
        for index in range(last - span + 1, last + 1):
            if met_family is not None:
                met += met_family.window_total(index)
            if missed_family is not None:
                missed += missed_family.window_total(index)
        finished = met + missed
        if not finished:
            return None
        return (missed / finished) / (1.0 - self.target)

    def observe(
        self, registry: "TimeSeriesRegistry", window: "WindowSpan"
    ) -> float | None:
        short = self._burn(registry, window.index, self.short_windows)
        long = self._burn(registry, window.index, self.long_windows)
        if short is None or long is None:
            return None
        if short >= self.factor and long >= self.factor:
            return short
        return None

    def message(self, value: float) -> str:
        return (
            f"SLO burn rate {value:.2f}x >= {self.factor:g}x over "
            f"{self.short_windows}/{self.long_windows} windows "
            f"(target attainment {self.target:.1%})"
        )


class QueueSaturationRule(ThresholdRule):
    """Queue-depth high-water mark at/above a limit for N consecutive windows."""

    def __init__(
        self,
        name: str,
        limit: float,
        *,
        metric: str = "serve.queue.depth",
        for_windows: int = 2,
        severity: str = "warning",
    ):
        super().__init__(
            name, metric, "max", limit,
            op=">=", for_windows=for_windows, severity=severity,
        )

    def message(self, value: float) -> str:
        return (
            f"queue depth high-water {value:g} >= {self.threshold:g} "
            f"for {self.for_windows} window(s)"
        )


class HostSaturationRule(QueueSaturationRule):
    """Per-host queue saturation for cluster runs (``hostN-queue-saturation``).

    Each simulated host of a :mod:`repro.cluster` run evaluates its own copy
    against its own windowed metrics; the host id in the rule name keeps the
    merged cluster-wide alert stream attributable to the saturated host.
    """

    def __init__(
        self,
        host_id: int,
        limit: float = 32.0,
        *,
        for_windows: int = 2,
        severity: str = "warning",
    ):
        super().__init__(
            f"host{host_id}-queue-saturation", limit,
            for_windows=for_windows, severity=severity,
        )
        self.host_id = host_id

    def message(self, value: float) -> str:
        return (
            f"host{self.host_id} queue depth high-water {value:g} >= "
            f"{self.threshold:g} for {self.for_windows} window(s)"
        )


def per_host_alert_rules(
    host_id: int, rules: Sequence[AlertRule]
) -> list[AlertRule]:
    """Fresh per-host copies of ``rules``, renamed ``hostN-<rule>``.

    Rules are stateful (consecutive-window counters, firing state), so N
    hosts must never share instances; each host gets deep copies, reset, with
    the host id prefixed to every name.  Queue-saturation rules become
    :class:`HostSaturationRule`\\ s so the per-host saturation alert carries
    its canonical name.
    """
    copies: list[AlertRule] = []
    for rule in rules:
        if isinstance(rule, QueueSaturationRule):
            clone: AlertRule = HostSaturationRule(
                host_id, rule.threshold,
                for_windows=rule.for_windows, severity=rule.severity,
            )
        else:
            clone = copy.deepcopy(rule)
            clone.name = f"host{host_id}-{clone.name}"
            clone.reset()
        copies.append(clone)
    return copies


class AlertManager:
    """Evaluates rules on every closed window; emits events on transitions.

    A rule whose :meth:`~AlertRule.observe` returns a value is *breaching*;
    the manager records one ``firing`` event on the first breaching window
    and one ``resolved`` event on the first clean window after.  Rule order
    is preserved, so event sequences are deterministic.
    """

    def __init__(self, rules: Sequence[AlertRule]):
        self.rules = list(rules)
        self._firing: dict[str, AlertEvent] = {}
        self.events: list[AlertEvent] = []

    def evaluate(
        self, registry: "TimeSeriesRegistry", window: "WindowSpan"
    ) -> list[AlertEvent]:
        """Run every rule against one closed window; return new transitions."""
        transitions: list[AlertEvent] = []
        for rule in self.rules:
            value = rule.observe(registry, window)
            was_firing = rule.name in self._firing
            if value is not None and not was_firing:
                event = AlertEvent(
                    time_ms=window.end_ms, rule=rule.name, state="firing",
                    value=float(value), threshold=rule.threshold,
                    message=rule.message(float(value)), severity=rule.severity,
                )
                self._firing[rule.name] = event
                transitions.append(event)
            elif value is None and was_firing:
                fired = self._firing.pop(rule.name)
                transitions.append(
                    AlertEvent(
                        time_ms=window.end_ms, rule=rule.name, state="resolved",
                        value=fired.value, threshold=rule.threshold,
                        message=f"recovered (fired at {fired.time_ms:g}ms)",
                        severity=rule.severity,
                    )
                )
        self.events.extend(transitions)
        return transitions

    def firing(self) -> list[str]:
        """Names of currently firing rules, in rule order."""
        return [rule.name for rule in self.rules if rule.name in self._firing]

    def reset(self) -> None:
        """Forget everything (the serving loop resets per run)."""
        self._firing.clear()
        self.events.clear()
        for rule in self.rules:
            rule.reset()

    def __len__(self) -> int:
        return len(self.events)


def default_alert_rules(
    *,
    slo_ms: float | None = None,
    attainment_target: float = 0.95,
    queue_limit: float = 32.0,
) -> list[AlertRule]:
    """The standard serving rule set (what bare ``--alerts`` enables).

    * ``slo-burn-rate`` — budget burning at >= 2x over 2/8 windows;
    * ``queue-saturation`` — queue high-water >= ``queue_limit`` twice;
    * ``p99-latency`` — windowed p99 above the SLO (when ``slo_ms`` given).
    """
    rules: list[AlertRule] = [
        BurnRateRule("slo-burn-rate", attainment_target),
        QueueSaturationRule("queue-saturation", queue_limit),
    ]
    if slo_ms is not None:
        rules.append(
            ThresholdRule(
                "p99-latency", "serve.latency_ms", "p99", float(slo_ms),
                for_windows=2,
            )
        )
    return rules


def parse_alert_rules(
    spec: str, *, slo_ms: float | None = None
) -> list[AlertRule]:
    """Build rules from a CLI spec like ``"burn-rate=0.9,queue=32,p99=25"``.

    Recognised keys: ``burn-rate=<target attainment>``, ``queue=<depth>``,
    ``p99=<ms>``.  The empty spec (bare ``--alerts``) yields
    :func:`default_alert_rules`.
    """
    spec = spec.strip()
    if not spec or spec == "default":
        return default_alert_rules(slo_ms=slo_ms)
    rules: list[AlertRule] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, raw = part.partition("=")
        key = key.strip()
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(f"alert rule {part!r}: {raw!r} is not a number")
        if key == "burn-rate":
            rules.append(BurnRateRule("slo-burn-rate", value))
        elif key == "queue":
            rules.append(QueueSaturationRule("queue-saturation", value))
        elif key == "p99":
            rules.append(
                ThresholdRule(
                    "p99-latency", "serve.latency_ms", "p99", value, for_windows=2
                )
            )
        else:
            raise ValueError(
                f"unknown alert rule key {key!r} (expected burn-rate/queue/p99)"
            )
    return rules


def alerts_snapshot(events: Sequence[AlertEvent]) -> list[Mapping[str, object]]:
    """Deterministic dict form of an event list (report/JSON export)."""
    return [
        {
            "time_ms": round(event.time_ms, 4),
            "rule": event.rule,
            "state": event.state,
            "value": round(event.value, 6),
            "threshold": event.threshold,
            "severity": event.severity,
            "message": event.message,
        }
        for event in events
    ]
