"""Exporters: Chrome-trace/Perfetto JSON and the trace schema checker.

:func:`chrome_trace` renders a :class:`~repro.obs.trace.Tracer`'s records in
the Chrome trace-event format (the JSON ``ui.perfetto.dev`` and
``chrome://tracing`` load directly):

* each ``"process/thread"`` track becomes one row — processes and threads are
  named via metadata events and ordered by first appearance, so a trace lays
  out as *compile*, *serving*, then one process per worker;
* complete spans are ``"X"`` events, instants ``"i"``, counters ``"C"``, and
  request lifecycles async ``"b"``/``"e"`` pairs correlated by id;
* timestamps convert from the tracer's milliseconds to the format's
  microseconds.

The rendering is deterministic: given the same records the emitted JSON is
byte-identical (keys sorted, insertion-ordered events, no wall-clock stamped
at export time).  :func:`validate_chrome_trace` is the matching schema check
used by ``tools/check_trace.py`` and the CI trace-smoke job.
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import ASYNC_BEGIN, ASYNC_END, COUNTER, INSTANT, SPAN, Tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Default process (Perfetto row group) for tracks written without a "/".
DEFAULT_PROCESS = "main"

#: Chrome-trace phase per record kind.
_PHASES = {SPAN: "X", INSTANT: "i", COUNTER: "C", ASYNC_BEGIN: "b", ASYNC_END: "e"}


def _split_track(track: str) -> tuple[str, str]:
    """``"process/thread"`` → (process, thread); bare names join DEFAULT_PROCESS."""
    if "/" in track:
        process, thread = track.split("/", 1)
        return process, thread
    return DEFAULT_PROCESS, track


def chrome_trace(tracer: Tracer) -> dict:
    """Render the tracer's records as a Chrome trace-event document."""
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def row(track: str) -> tuple[int, int]:
        process, thread = _split_track(track)
        if process not in pids:
            pid = len(pids) + 1
            pids[process] = pid
            events.append(
                {
                    "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                    "args": {"name": process},
                }
            )
            events.append(
                {
                    "name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
                    "args": {"sort_index": pid},
                }
            )
        pid = pids[process]
        if (process, thread) not in tids:
            tid = sum(1 for key in tids if key[0] == process) + 1
            tids[(process, thread)] = tid
            events.append(
                {
                    "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                    "args": {"name": thread},
                }
            )
            events.append(
                {
                    "name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        return pid, tids[(process, thread)]

    for record in tracer.records:
        pid, tid = row(record.track)
        event: dict = {
            "name": record.name,
            "ph": _PHASES[record.kind],
            "ts": record.ts_ms * 1e3,
            "pid": pid,
            "tid": tid,
        }
        if record.category:
            event["cat"] = record.category
        if record.kind == SPAN:
            event["dur"] = record.dur_ms * 1e3
        elif record.kind == INSTANT:
            event["s"] = "t"  # thread-scoped marker
        elif record.kind in (ASYNC_BEGIN, ASYNC_END):
            event["cat"] = record.category or "async"
            event["id"] = record.correlation
        if record.args:
            event["args"] = dict(record.args)
        events.append(event)

    other: dict = {
        "generator": "repro.obs",
        "trackCount": len(tids),
    }
    # A sampling tracer reports what it kept/dropped; embed that so
    # ``ios-bench trace`` can summarise a sampled trace honestly.
    metadata = getattr(tracer, "sampling_metadata", None)
    if metadata is not None:
        other["sampling"] = dict(metadata())

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def chrome_trace_json(tracer: Tracer, indent: int | None = None) -> str:
    """Byte-deterministic JSON rendering of :func:`chrome_trace`."""
    return json.dumps(chrome_trace(tracer), indent=indent, sort_keys=True)


def write_chrome_trace(tracer: Tracer, path) -> Path:
    """Write the trace JSON to ``path`` (parent directories created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(chrome_trace_json(tracer) + "\n")
    return target


# --------------------------------------------------------------------------- #
# Schema validation                                                            #
# --------------------------------------------------------------------------- #
#: Phases this exporter can emit; anything else in a trace is a schema error.
_KNOWN_PHASES = {"X", "i", "C", "b", "e", "M"}

_REQUIRED_FIELDS = ("name", "ph", "pid", "tid")


def validate_chrome_trace(data: object) -> list[str]:
    """Schema-check a Chrome trace document; returns a list of problems.

    An empty list means the document is loadable by Perfetto as far as this
    exporter's contract goes: a ``traceEvents`` list whose events carry the
    required fields, known phases, non-negative durations, and whose every
    (pid, tid) row is named by metadata events.  Used by
    ``tools/check_trace.py`` and the ``ios-bench trace`` subcommand.
    """
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"trace document must be a JSON object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["trace document must carry a 'traceEvents' list"]
    if not events:
        errors.append("'traceEvents' is empty — nothing was traced")

    named_rows: set[tuple[int, int]] = set()
    named_processes: set[int] = set()
    used_rows: set[tuple[int, int]] = set()
    open_async: dict[tuple[str, object], int] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        missing = [key for key in _REQUIRED_FIELDS if key not in event]
        if missing:
            errors.append(f"{where}: missing fields {missing}")
            continue
        phase = event["ph"]
        if phase not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == "M":
            if event["name"] == "process_name":
                named_processes.add(event["pid"])
            elif event["name"] == "thread_name":
                named_rows.add((event["pid"], event["tid"]))
            continue
        if "ts" not in event:
            errors.append(f"{where}: non-metadata event missing 'ts'")
            continue
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            errors.append(f"{where}: 'ts' must be a non-negative number")
        used_rows.add((event["pid"], event["tid"]))
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                errors.append(f"{where}: complete span needs a non-negative 'dur'")
        elif phase in ("b", "e"):
            if "id" not in event:
                errors.append(f"{where}: async event missing 'id'")
                continue
            key = (event.get("cat", ""), event["id"], event["name"])
            if phase == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    errors.append(
                        f"{where}: async end without a matching begin "
                        f"(cat={key[0]!r}, id={key[1]!r}, name={key[2]!r})"
                    )
                else:
                    open_async[key] -= 1

    for key, still_open in sorted(open_async.items(), key=str):
        if still_open:
            errors.append(
                f"async span never closed (cat={key[0]!r}, id={key[1]!r}, "
                f"name={key[2]!r})"
            )
    for pid, tid in sorted(used_rows):
        if (pid, tid) not in named_rows:
            errors.append(f"row (pid={pid}, tid={tid}) carries events but no thread_name")
        if pid not in named_processes:
            errors.append(f"process {pid} carries events but no process_name")
    return errors
