"""Span tracer: one timeline for compile stages, serving events and kernels.

A *span* is a named interval on a *track*.  Tracks are written as
``"process/thread"`` (the exporter turns each process into a Perfetto row
group and each thread into a row), so a single trace can show the compile
pipeline, every request's lifecycle, and each worker's kernel activity as
parallel rows:

* ``compile/stages`` — wall-clock spans of the engine's Graph → Schedule →
  Plan stages, one per compile;
* ``serving/requests`` — virtual-time request lifecycles as nested async
  spans (queued → dispatch-wait → execute), one lane per request id;
* ``worker 0 (v100)/stages`` and ``.../stream N`` — virtual-time batch,
  stage and kernel spans of each simulated worker.

Two time domains coexist deliberately: the engine measures real elapsed
milliseconds (its work is real), while the serving loop stamps spans with the
virtual clock its simulation runs on (``add_span`` et al. take explicit
timestamps).  They live in different processes of the trace, so the mixed
timeline stays readable.

Tracing must cost nothing when off: the module-level :data:`NULL_TRACER` is
falsy and swallows every call, so instrumented code guards its span
construction with ``if tracer:`` and pays a single truth test per event when
tracing is disabled.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PrefixedTracer",
    "TraceRecord",
    "Tracer",
]

#: Record kinds, mirrored 1:1 by the Chrome-trace exporter's phases.
SPAN, INSTANT, COUNTER, ASYNC_BEGIN, ASYNC_END = (
    "span", "instant", "counter", "async_begin", "async_end",
)


@dataclass(frozen=True)
class TraceRecord:
    """One recorded trace event (exporter-agnostic form)."""

    #: One of ``span`` / ``instant`` / ``counter`` / ``async_begin`` /
    #: ``async_end``.
    kind: str
    name: str
    #: ``"process/thread"`` row identity; a bare name means process ``main``.
    track: str
    #: Start (or instant) time in milliseconds on the caller's clock.
    ts_ms: float
    #: Span duration in milliseconds (spans only).
    dur_ms: float = 0.0
    #: Event category (used to correlate async begin/end pairs).
    category: str = ""
    #: Correlation id for async begin/end pairs (request lifecycles).
    correlation: int | None = None
    #: Extra key/value payload shown in the trace viewer.
    args: Mapping[str, object] | None = None

    @property
    def end_ms(self) -> float:
        return self.ts_ms + self.dur_ms


def _wall_clock_ms() -> float:
    return time.perf_counter() * 1e3


class Tracer:
    """Collects trace records; see :mod:`repro.obs.export` for rendering.

    Parameters
    ----------
    clock:
        Wall-clock source (milliseconds) used by the context-managed
        :meth:`span`; defaults to ``time.perf_counter``.  Timestamps are
        reported relative to the tracer's construction, and tests inject a
        deterministic counter here to make wall-clock spans reproducible.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock or _wall_clock_ms
        self._epoch = self._clock()
        self.records: list[TraceRecord] = []

    def __bool__(self) -> bool:
        return True

    @property
    def enabled(self) -> bool:
        return True

    def now_ms(self) -> float:
        """Milliseconds on the tracer's wall clock since construction."""
        return self._clock() - self._epoch

    # --------------------------------------------------------------- recording
    def add_span(
        self,
        name: str,
        track: str,
        start_ms: float,
        end_ms: float,
        *,
        category: str = "",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Record a complete span with explicit (e.g. virtual-clock) times."""
        self.records.append(
            TraceRecord(
                kind=SPAN, name=name, track=track, ts_ms=start_ms,
                dur_ms=max(0.0, end_ms - start_ms), category=category, args=args,
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        track: str,
        *,
        category: str = "",
        args: Mapping[str, object] | None = None,
    ) -> Iterator[dict[str, object]]:
        """Measure a wall-clock span around a code block.

        Yields a mutable dict of span args — whatever the block adds to it is
        recorded alongside the initial ``args`` when the span closes::

            with tracer.span("schedule", "compile/stages") as info:
                result = search(graph)
                info["transitions"] = result.total_transitions
        """
        payload: dict[str, object] = dict(args or {})
        start = self.now_ms()
        try:
            yield payload
        finally:
            self.add_span(
                name, track, start, self.now_ms(),
                category=category, args=payload or None,
            )

    def instant(
        self,
        name: str,
        track: str,
        ts_ms: float | None = None,
        *,
        category: str = "",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Record a zero-duration marker (batch close, scale event, reject)."""
        self.records.append(
            TraceRecord(
                kind=INSTANT, name=name, track=track,
                ts_ms=self.now_ms() if ts_ms is None else ts_ms,
                category=category, args=args,
            )
        )

    def counter(
        self,
        name: str,
        track: str,
        ts_ms: float,
        values: Mapping[str, float],
    ) -> None:
        """Record a counter sample (rendered as a stacked area row)."""
        self.records.append(
            TraceRecord(
                kind=COUNTER, name=name, track=track, ts_ms=ts_ms,
                args=dict(values),
            )
        )

    def async_begin(
        self,
        name: str,
        track: str,
        correlation: int,
        ts_ms: float,
        *,
        category: str = "",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Open an async span (overlapping lifecycles, e.g. requests).

        Async spans with the same ``(category, correlation)`` nest into one
        lane of the track, so concurrent request lifecycles each render as
        their own nested group instead of colliding on a single row.
        """
        self.records.append(
            TraceRecord(
                kind=ASYNC_BEGIN, name=name, track=track, ts_ms=ts_ms,
                category=category, correlation=correlation, args=args,
            )
        )

    def async_end(
        self,
        name: str,
        track: str,
        correlation: int,
        ts_ms: float,
        *,
        category: str = "",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Close the async span opened with the same ``(category, correlation)``."""
        self.records.append(
            TraceRecord(
                kind=ASYNC_END, name=name, track=track, ts_ms=ts_ms,
                category=category, correlation=correlation, args=args,
            )
        )

    # ----------------------------------------------------------------- queries
    def spans(self, track: str | None = None) -> list[TraceRecord]:
        """All complete spans, optionally restricted to one track."""
        return [
            record for record in self.records
            if record.kind == SPAN and (track is None or record.track == track)
        ]

    def tracks(self) -> list[str]:
        """Every track written so far, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.track, None)
        return list(seen)

    def clear(self) -> None:
        """Drop every record and restart the wall clock at zero."""
        self.records.clear()
        self._epoch = self._clock()

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Tracer {len(self.records)} records, {len(self.tracks())} tracks>"


class NullTracer(Tracer):
    """The disabled tracer: falsy, records nothing, costs nothing.

    Instrumented code holds a tracer unconditionally and guards span
    construction with ``if tracer:`` — with a :class:`NullTracer` that guard
    is a single constant-false test, so tracing-off runs take the exact same
    code path (and produce the exact same reports) as before tracing existed.
    """

    def __init__(self):
        super().__init__(clock=lambda: 0.0)

    def __bool__(self) -> bool:
        return False

    @property
    def enabled(self) -> bool:
        return False

    def add_span(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    @contextmanager
    def span(self, *args, **kwargs) -> Iterator[dict[str, object]]:  # noqa: D102
        yield {}

    def instant(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def counter(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def async_begin(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def async_end(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass


class PrefixedTracer(Tracer):
    """A view of another tracer that prefixes every track's process name.

    The cluster loop hands each simulated host a
    ``PrefixedTracer(shared, "host0 ")`` so the host's serving-loop spans land
    on per-host rows (``host0 serving/requests``,
    ``host0 worker 1 (v100)/batches``) of the *shared* trace — one file, one
    timeline, N hosts side by side.  Only the track is rewritten; timestamps,
    correlations and sampling behaviour are the inner tracer's (wrapping a
    :class:`~repro.obs.sampling.SamplingTracer` samples as usual, wrapping
    :data:`NULL_TRACER` stays falsy and free).
    """

    def __init__(self, inner: Tracer, prefix: str):
        super().__init__()
        self.inner = inner
        self.prefix = prefix

    def __bool__(self) -> bool:
        return bool(self.inner)

    @property
    def enabled(self) -> bool:
        return self.inner.enabled

    @property
    def records(self) -> list[TraceRecord]:  # type: ignore[override]
        return self.inner.records

    @records.setter
    def records(self, value: list[TraceRecord]) -> None:
        # Tracer.__init__ assigns self.records = []; the view has no store
        # of its own, so the base-class initialisation is dropped here.
        pass

    def _track(self, track: str) -> str:
        return f"{self.prefix}{track}"

    def add_span(self, name, track, start_ms, end_ms, *, category="", args=None):
        self.inner.add_span(
            name, self._track(track), start_ms, end_ms, category=category, args=args
        )

    @contextmanager
    def span(self, name, track, *, category="", args=None):
        with self.inner.span(
            name, self._track(track), category=category, args=args
        ) as extra:
            yield extra

    def instant(self, name, track, ts_ms=None, *, category="", args=None):
        self.inner.instant(
            name, self._track(track), ts_ms, category=category, args=args
        )

    def counter(self, name, track, ts_ms, values):
        self.inner.counter(name, self._track(track), ts_ms, values)

    def async_begin(self, name, track, correlation, ts_ms, *, category="", args=None):
        self.inner.async_begin(
            name, self._track(track), correlation, ts_ms,
            category=category, args=args,
        )

    def async_end(self, name, track, correlation, ts_ms, *, category="", args=None):
        self.inner.async_end(
            name, self._track(track), correlation, ts_ms,
            category=category, args=args,
        )


#: Shared disabled tracer; instrumented modules default to this.
NULL_TRACER = NullTracer()
