"""Observability: span tracing, a metrics registry, and trace exporters.

One subsystem correlates what used to be three disjoint sets of numbers —
engine :class:`~repro.engine.engine.StageTiming`, serving
:class:`~repro.serve.metrics.ServingReport`, and runtime
:class:`~repro.runtime.events.KernelEvent` records:

* :mod:`repro.obs.trace` — the span tracer.  Threaded through the engine's
  compile stages, the pass pipeline, and the serving loop, it records one
  timeline from a request's arrival down to the kernel/stream placement that
  served it.  Disabled tracing is a falsy no-op (:data:`NULL_TRACER`).
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms with
  deterministic snapshots; the single home of a serving run's tallies.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON rendering plus the
  schema checker behind ``ios-bench trace`` and CI's trace-smoke job.
"""

from .export import (
    chrome_trace,
    chrome_trace_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    HISTOGRAM_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    quantiles_reference,
)
from .trace import NULL_TRACER, NullTracer, TraceRecord, Tracer

__all__ = [
    "HISTOGRAM_QUANTILES",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NullTracer",
    "TraceRecord",
    "Tracer",
    "chrome_trace",
    "chrome_trace_json",
    "quantiles_reference",
    "validate_chrome_trace",
    "write_chrome_trace",
]
