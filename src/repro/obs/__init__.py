"""Observability: span tracing, a metrics registry, and trace exporters.

One subsystem correlates what used to be three disjoint sets of numbers —
engine :class:`~repro.engine.engine.StageTiming`, serving
:class:`~repro.serve.metrics.ServingReport`, and runtime
:class:`~repro.runtime.events.KernelEvent` records:

* :mod:`repro.obs.trace` — the span tracer.  Threaded through the engine's
  compile stages, the pass pipeline, and the serving loop, it records one
  timeline from a request's arrival down to the kernel/stream placement that
  served it.  Disabled tracing is a falsy no-op (:data:`NULL_TRACER`).
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms with
  deterministic snapshots; the single home of a serving run's tallies.
* :mod:`repro.obs.timeseries` — windowed live metrics: a drop-in
  :class:`TimeSeriesRegistry` bucketing observations into fixed virtual-time
  windows (bounded ring, streaming quantile sketches) behind the same
  call-site API.
* :mod:`repro.obs.alerts` — declarative alert rules (threshold, multi-window
  SLO burn rate, queue saturation) evaluated on window close inside the
  serving loop.
* :mod:`repro.obs.sampling` — head + tail trace sampling: bounded traces
  that always retain SLO-missed/rejected/slowest lifecycles.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON rendering plus the
  schema checker behind ``ios-bench trace`` and CI's trace-smoke job.
"""

from .alerts import (
    AlertEvent,
    AlertManager,
    AlertRule,
    BurnRateRule,
    HostSaturationRule,
    QueueSaturationRule,
    ThresholdRule,
    alerts_snapshot,
    default_alert_rules,
    parse_alert_rules,
    per_host_alert_rules,
)
from .export import (
    chrome_trace,
    chrome_trace_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    HISTOGRAM_QUANTILES,
    QUANTILE_DECIMALS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    quantiles_reference,
)
from .sampling import SamplingConfig, SamplingTracer, parse_sampling_spec
from .timeseries import (
    StreamingQuantile,
    TimeSeriesRegistry,
    WatchRenderer,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
    WindowedSeries,
    WindowSpan,
)
from .trace import NULL_TRACER, NullTracer, PrefixedTracer, TraceRecord, Tracer

__all__ = [
    "HISTOGRAM_QUANTILES",
    "NULL_TRACER",
    "QUANTILE_DECIMALS",
    "AlertEvent",
    "AlertManager",
    "AlertRule",
    "BurnRateRule",
    "Counter",
    "Gauge",
    "Histogram",
    "HostSaturationRule",
    "Metric",
    "MetricsRegistry",
    "NullTracer",
    "PrefixedTracer",
    "QueueSaturationRule",
    "SamplingConfig",
    "SamplingTracer",
    "StreamingQuantile",
    "ThresholdRule",
    "TimeSeriesRegistry",
    "TraceRecord",
    "Tracer",
    "WatchRenderer",
    "WindowSpan",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "WindowedSeries",
    "alerts_snapshot",
    "chrome_trace",
    "chrome_trace_json",
    "default_alert_rules",
    "parse_alert_rules",
    "parse_sampling_spec",
    "per_host_alert_rules",
    "quantiles_reference",
    "validate_chrome_trace",
    "write_chrome_trace",
]
