"""Head + tail trace sampling: bounded traces that keep the interesting spans.

The plain :class:`~repro.obs.trace.Tracer` keeps every record — perfect for a
thousand requests, unbounded at trace-replay scale (a million-request run
emits ~10 records per request lifecycle alone).  Production tracers solve
this with *sampling*; the useful twist for an SLO-driven service is that the
sampling must be **tail-based**: the spans worth keeping are exactly the ones
you cannot pick at arrival time — the requests that missed their deadline,
were shed by admission, or landed in the latency tail.

:class:`SamplingTracer` buffers each request lifecycle (the async-span group
correlated by request id) until its root span closes, then decides:

* **must-keep** — the outcome says ``rejected``, or the measured lifecycle
  latency exceeded the request's deadline (an SLO miss).  These are always
  retained, budget or not.
* **head sample** — request id divisible by ``head_every``: a deterministic
  1-in-N baseline of *normal* traffic, so the trace still shows what healthy
  requests look like.
* **tail candidates** — everything else competes for the remaining budget;
  when the retained-record budget overflows, the *fastest non-head* groups
  evict first, so the slowest (p99) lifecycles survive.

Non-request records (queue-depth counters, batch instants, kernel spans)
decimate per track with a stride-doubling reservoir: each track keeps at most
``track_budget`` records, and whenever a track fills, every other kept record
drops and the sampling stride doubles — bounded memory, roughly uniform
time coverage.  Alert and autoscale instants are exempt (rare and precious).

Everything is deterministic — decisions depend only on request ids, virtual
timestamps and arrival order — so a sampled trace of a seeded run is
byte-reproducible, and :meth:`SamplingTracer.sampling_metadata` reports
exactly what was kept and dropped (surfaced by ``ios-bench trace``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

from .trace import ASYNC_BEGIN, ASYNC_END, TraceRecord, Tracer

__all__ = ["SamplingConfig", "SamplingTracer", "parse_sampling_spec"]

#: Instant categories never decimated (rare, high-signal).
_EXEMPT_CATEGORIES = frozenset({"alert", "autoscale"})


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs of the :class:`SamplingTracer`.

    ``max_records`` budgets the *request-lifecycle* records retained; SLO-miss
    and rejected groups are always kept even when they alone exceed it (the
    guarantee that matters is never losing a miss).  ``head_every=N`` keeps a
    deterministic 1-in-N baseline of healthy requests (0 disables head
    sampling).  ``track_budget`` caps every non-request track independently.
    """

    max_records: int = 50_000
    head_every: int = 100
    keep_slo_miss: bool = True
    keep_rejected: bool = True
    track_budget: int = 4_000

    def __post_init__(self):
        if self.max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {self.max_records}")
        if self.head_every < 0:
            raise ValueError(f"head_every must be >= 0, got {self.head_every}")
        if self.track_budget < 2:
            raise ValueError(f"track_budget must be >= 2, got {self.track_budget}")


class _TrackReservoir:
    """Stride-doubling decimator: bounded, roughly uniform time coverage."""

    __slots__ = ("budget", "stride", "seen", "kept", "dropped")

    def __init__(self, budget: int):
        self.budget = budget
        self.stride = 1
        self.seen = 0
        self.kept: list[tuple[int, TraceRecord]] = []
        self.dropped = 0

    def offer(self, seq: int, record: TraceRecord) -> None:
        index = self.seen
        self.seen += 1
        if index % self.stride:
            self.dropped += 1
            return
        self.kept.append((seq, record))
        if len(self.kept) >= self.budget:
            # Halve: drop every other kept record, double the stride.
            self.dropped += len(self.kept) - (len(self.kept) + 1) // 2
            self.kept = self.kept[::2]
            self.stride *= 2


class SamplingTracer(Tracer):
    """A :class:`~repro.obs.trace.Tracer` that samples instead of hoarding.

    Drop-in for the serving loop: same recording API, same ``records``
    contract (the property merges every retained record back into global
    recording order), so :func:`~repro.obs.export.chrome_trace` renders a
    sampled trace unchanged — whole lifecycle groups are kept or dropped
    atomically, so async begin/end pairs stay balanced and the exporter's
    validator passes.
    """

    def __init__(self, config: SamplingConfig | None = None, **kwargs):
        self.config = config or SamplingConfig()
        self._seq = 0
        #: Closed, retained records: correlation → [(seq, record), ...].
        self._kept_groups: dict[int, list[tuple[int, TraceRecord]]] = {}
        #: Open lifecycle buffers: correlation → (root name, [(seq, record)]).
        self._open: dict[int, tuple[str, list[tuple[int, TraceRecord]]]] = {}
        #: Eviction heap over discretionary groups: (is_head, latency, corr).
        self._evictable: list[tuple[int, float, int]] = []
        self._tracks: dict[str, _TrackReservoir] = {}
        self._exempt: list[tuple[int, TraceRecord]] = []
        self._kept_request_records = 0
        self._stats = {
            "requests_total": 0, "requests_kept": 0, "requests_dropped": 0,
            "slo_miss_kept": 0, "rejected_kept": 0, "head_kept": 0,
            "records_dropped": 0, "peak_retained": 0, "peak_request_records": 0,
        }
        super().__init__(**kwargs)

    # ------------------------------------------------------------ record sink
    @property
    def records(self) -> list[TraceRecord]:
        """Every retained record, merged back into recording order."""
        merged: list[tuple[int, TraceRecord]] = []
        for group in self._kept_groups.values():
            merged.extend(group)
        for _, group in self._open.values():
            merged.extend(group)
        for reservoir in self._tracks.values():
            merged.extend(reservoir.kept)
        merged.extend(self._exempt)
        merged.sort(key=lambda pair: pair[0])
        return [record for _, record in merged]

    @records.setter
    def records(self, value) -> None:
        # The base class assigns ``records = []`` on construction/clear; a
        # sampling tracer interprets that as a full reset.
        if value:
            raise ValueError("a SamplingTracer's records cannot be assigned")
        self._seq = 0
        self._kept_groups.clear()
        self._open.clear()
        self._evictable.clear()
        self._tracks.clear()
        self._exempt.clear()
        self._kept_request_records = 0
        for key in self._stats:
            self._stats[key] = 0

    def clear(self) -> None:
        super().clear()
        self.records = []

    def __len__(self) -> int:
        return (
            self._kept_request_records
            + sum(len(group) for _, group in self._open.values())
            + sum(len(reservoir.kept) for reservoir in self._tracks.values())
            + len(self._exempt)
        )

    # -------------------------------------------------------------- ingestion
    def _ingest(self, record: TraceRecord) -> None:
        seq = self._seq
        self._seq += 1
        if record.category == "request" and record.correlation is not None:
            self._ingest_request(seq, record)
        elif record.category in _EXEMPT_CATEGORIES:
            self._exempt.append((seq, record))
        else:
            reservoir = self._tracks.get(record.track)
            if reservoir is None:
                reservoir = _TrackReservoir(self.config.track_budget)
                self._tracks[record.track] = reservoir
            reservoir.offer(seq, record)
        retained = len(self)
        if retained > self._stats["peak_retained"]:
            self._stats["peak_retained"] = retained
        request_records = self._kept_request_records + self._open_records()
        if request_records > self._stats["peak_request_records"]:
            self._stats["peak_request_records"] = request_records

    def _open_records(self) -> int:
        return sum(len(group) for _, group in self._open.values())

    def _ingest_request(self, seq: int, record: TraceRecord) -> None:
        correlation = record.correlation
        entry = self._open.get(correlation)
        if entry is None:
            # First record of a lifecycle: its name is the root span's name.
            self._open[correlation] = (record.name, [(seq, record)])
            self._stats["requests_total"] += 1
            # An opening buffer counts against the budget immediately — evict
            # settled discretionary groups now, so the *peak* of retained
            # request records honours max_records, not just the settled count.
            self._enforce_budget()
            return
        root_name, group = entry
        group.append((seq, record))
        if record.kind == ASYNC_END and record.name == root_name:
            del self._open[correlation]
            self._decide(correlation, group)
        else:
            self._enforce_budget()

    # --------------------------------------------------------------- decisions
    def _decide(self, correlation: int, group: list[tuple[int, TraceRecord]]) -> None:
        """Keep or drop one closed lifecycle group, then enforce the budget."""
        config = self.config
        root_begin = next(
            record for _, record in group
            if record.kind == ASYNC_BEGIN and record.correlation == correlation
        )
        root_end = group[-1][1]
        end_args = root_end.args or {}
        rejected = end_args.get("outcome") == "rejected"
        latency_ms = root_end.ts_ms - root_begin.ts_ms
        deadline = (root_begin.args or {}).get("deadline_ms")
        slo_miss = (
            not rejected and deadline is not None and latency_ms > float(deadline)
        )
        must_keep = (rejected and config.keep_rejected) or (
            slo_miss and config.keep_slo_miss
        )
        is_head = bool(config.head_every) and correlation % config.head_every == 0
        self._kept_groups[correlation] = group
        self._kept_request_records += len(group)
        if must_keep:
            self._stats["rejected_kept" if rejected else "slo_miss_kept"] += 1
        else:
            if is_head:
                self._stats["head_kept"] += 1
            heapq.heappush(self._evictable, (int(is_head), latency_ms, correlation))
        self._stats["requests_kept"] += 1
        self._enforce_budget()

    def _enforce_budget(self) -> None:
        """Evict the fastest non-head discretionary groups over budget.

        Must-keeps are never candidates.  Still-open lifecycle buffers count
        against the budget too (and this runs as they grow), so the *peak* of
        retained request records — not just the settled count — honours
        ``max_records`` whenever discretionary groups remain to shed.
        """
        open_records = self._open_records()
        while (
            self._kept_request_records + open_records > self.config.max_records
            and self._evictable
        ):
            is_head_key, _, victim = heapq.heappop(self._evictable)
            evicted = self._kept_groups.pop(victim, None)
            if evicted is None:
                continue  # stale heap entry
            self._kept_request_records -= len(evicted)
            self._stats["requests_kept"] -= 1
            self._stats["requests_dropped"] += 1
            self._stats["records_dropped"] += len(evicted)
            if is_head_key:
                self._stats["head_kept"] -= 1

    # ------------------------------------------------------------- recording
    def add_span(self, name, track, start_ms, end_ms, *, category="", args=None):
        self._ingest(
            TraceRecord(
                kind="span", name=name, track=track, ts_ms=start_ms,
                dur_ms=max(0.0, end_ms - start_ms), category=category, args=args,
            )
        )

    def instant(self, name, track, ts_ms=None, *, category="", args=None):
        self._ingest(
            TraceRecord(
                kind="instant", name=name, track=track,
                ts_ms=self.now_ms() if ts_ms is None else ts_ms,
                category=category, args=args,
            )
        )

    def counter(self, name, track, ts_ms, values):
        self._ingest(
            TraceRecord(
                kind="counter", name=name, track=track, ts_ms=ts_ms,
                args=dict(values),
            )
        )

    def async_begin(self, name, track, correlation, ts_ms, *, category="", args=None):
        self._ingest(
            TraceRecord(
                kind="async_begin", name=name, track=track, ts_ms=ts_ms,
                category=category, correlation=correlation, args=args,
            )
        )

    def async_end(self, name, track, correlation, ts_ms, *, category="", args=None):
        self._ingest(
            TraceRecord(
                kind="async_end", name=name, track=track, ts_ms=ts_ms,
                category=category, correlation=correlation, args=args,
            )
        )

    # --------------------------------------------------------------- metadata
    def sampling_metadata(self) -> Mapping[str, object]:
        """What was kept and dropped (embedded in the exported trace)."""
        stats = self._stats
        track_dropped = sum(r.dropped for r in self._tracks.values())
        return {
            "budget": self.config.max_records,
            "head_every": self.config.head_every,
            "track_budget": self.config.track_budget,
            "requests": {
                "total": stats["requests_total"],
                "kept": stats["requests_kept"],
                "dropped": stats["requests_dropped"],
                "head_kept": stats["head_kept"],
                "slo_miss_kept": stats["slo_miss_kept"],
                "rejected_kept": stats["rejected_kept"],
            },
            "records": {
                "kept": len(self),
                "dropped": stats["records_dropped"] + track_dropped,
                "peak_retained": stats["peak_retained"],
                "peak_request_records": stats["peak_request_records"],
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        stats = self._stats
        return (
            f"<SamplingTracer {len(self)} records retained, "
            f"{stats['requests_kept']}/{stats['requests_total']} requests>"
        )


def parse_sampling_spec(spec: str) -> SamplingConfig:
    """Build a :class:`SamplingConfig` from a CLI spec.

    ``--trace-sample`` alone uses the defaults; otherwise a comma list of
    ``budget=<records>``, ``head=<every Nth>``, ``track=<records per track>``,
    e.g. ``--trace-sample budget=20000,head=50``.
    """
    spec = spec.strip()
    if not spec or spec == "default":
        return SamplingConfig()
    values: dict[str, int] = {}
    keys = {"budget": "max_records", "head": "head_every", "track": "track_budget"}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, raw = part.partition("=")
        field = keys.get(key.strip())
        if field is None:
            raise ValueError(
                f"unknown sampling key {key!r} (expected budget/head/track)"
            )
        try:
            values[field] = int(raw)
        except ValueError:
            raise ValueError(f"sampling spec {part!r}: {raw!r} is not an integer")
    return SamplingConfig(**values)
