"""Serving metrics: per-request accounting and aggregate reports.

The serving loop produces one :class:`~repro.serve.request.RequestRecord` per
request; :func:`build_report` folds them into the numbers a serving system is
judged by — throughput (requests/s and samples/s), latency percentiles
(p50/p95/p99), queue delay, batch-size distribution — plus the registry and
worker statistics that explain *why* the numbers look the way they do.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from .registry import RegistryStats
from .request import RequestRecord

__all__ = ["percentile", "LatencySummary", "ServingReport", "build_report"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


@dataclass(frozen=True)
class LatencySummary:
    """Five-number summary of a latency distribution (milliseconds)."""

    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        return cls(
            mean_ms=sum(values) / len(values),
            p50_ms=percentile(values, 50),
            p95_ms=percentile(values, 95),
            p99_ms=percentile(values, 99),
            max_ms=max(values),
        )

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        return {
            f"{prefix}mean_ms": self.mean_ms,
            f"{prefix}p50_ms": self.p50_ms,
            f"{prefix}p95_ms": self.p95_ms,
            f"{prefix}p99_ms": self.p99_ms,
            f"{prefix}max_ms": self.max_ms,
        }


@dataclass
class ServingReport:
    """Aggregate result of one serving run."""

    num_requests: int
    num_samples: int
    num_batches: int
    #: Wall-clock span of the run on the virtual clock, first arrival to last
    #: completion, in milliseconds.
    makespan_ms: float
    throughput_rps: float
    throughput_samples_per_s: float
    latency: LatencySummary
    queue_delay: LatencySummary
    #: How many batches executed at each specialised batch size.
    batch_size_counts: dict[int, int] = field(default_factory=dict)
    #: Snapshot of the registry counters at the end of the run.
    registry_stats: RegistryStats = field(default_factory=RegistryStats)
    #: Per-worker accounting rows from the pool.
    worker_summary: list[dict[str, object]] = field(default_factory=list)
    records: list[RequestRecord] = field(default_factory=list)

    @property
    def mean_batch_occupancy(self) -> float:
        """Average samples per executed batch."""
        if self.num_batches == 0:
            return 0.0
        return self.num_samples / self.num_batches

    def describe(self) -> str:
        """Human-readable multi-line report (what the CLI prints)."""
        lines = [
            f"served {self.num_requests} requests ({self.num_samples} samples) "
            f"in {self.num_batches} batches over {self.makespan_ms:.2f} ms",
            f"throughput: {self.throughput_rps:.1f} req/s, "
            f"{self.throughput_samples_per_s:.1f} samples/s",
            f"latency   : mean {self.latency.mean_ms:.3f}  p50 {self.latency.p50_ms:.3f}  "
            f"p95 {self.latency.p95_ms:.3f}  p99 {self.latency.p99_ms:.3f}  "
            f"max {self.latency.max_ms:.3f} ms",
            f"queue     : mean {self.queue_delay.mean_ms:.3f}  "
            f"p95 {self.queue_delay.p95_ms:.3f} ms",
            f"batch mix : "
            + ", ".join(
                f"bs{size}×{count}" for size, count in sorted(self.batch_size_counts.items())
            ),
            f"registry  : {self.registry_stats.searches} searches, "
            f"{self.registry_stats.disk_hits} disk hits, "
            f"{self.registry_stats.memory_hits} memory hits",
        ]
        for row in self.worker_summary:
            lines.append(
                f"worker {row['worker']} ({row['device']}): {row['batches']} batches, "
                f"{row['samples']} samples, {row['utilization']:.1%} busy"
            )
        return "\n".join(lines)


def build_report(
    records: Sequence[RequestRecord],
    num_batches: int,
    batch_size_counts: dict[int, int],
    registry_stats: RegistryStats,
    worker_summary: list[dict[str, object]],
) -> ServingReport:
    """Fold per-request records into a :class:`ServingReport`."""
    if not records:
        raise ValueError("cannot build a serving report from zero records")
    first_arrival = min(record.request.arrival_ms for record in records)
    last_completion = max(record.completion_ms for record in records)
    makespan_ms = max(last_completion - first_arrival, 1e-9)
    num_samples = sum(record.request.num_samples for record in records)
    return ServingReport(
        num_requests=len(records),
        num_samples=num_samples,
        num_batches=num_batches,
        makespan_ms=makespan_ms,
        throughput_rps=len(records) / (makespan_ms / 1e3),
        throughput_samples_per_s=num_samples / (makespan_ms / 1e3),
        latency=LatencySummary.from_values([record.latency_ms for record in records]),
        queue_delay=LatencySummary.from_values(
            [record.queue_delay_ms for record in records]
        ),
        batch_size_counts=dict(sorted(batch_size_counts.items())),
        # Copy: the registry keeps mutating its own counters when it is shared
        # across runs, and the report promises a snapshot.
        registry_stats=replace(registry_stats),
        worker_summary=worker_summary,
        records=list(records),
    )
