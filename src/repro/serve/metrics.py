"""Serving metrics: per-request accounting and aggregate reports.

The serving loop produces one :class:`~repro.serve.request.RequestRecord` per
request; :func:`build_report` folds them into the numbers a serving system is
judged by — throughput (requests/s and samples/s), latency percentiles
(p50/p95/p99), queue delay, batch-size distribution — plus the registry and
worker statistics that explain *why* the numbers look the way they do.

Heterogeneous fleets additionally get a **per-device-group** breakdown
(``ServingReport.device_summary``): for each device type, worker count,
batches/samples executed, group utilisation, and the latency summary of the
requests that ran on that group — the numbers that show whether the router
actually put the fast silicon to work.

SLO-aware runs (requests carrying ``deadline_ms``, an admission policy other
than admit-all, or an autoscaler) additionally get
``ServingReport.slo_summary`` — attainment rate, violations, rejections and
p50/p95/p99 per priority class (and per traffic burst when requests carry
``burst_id``) — plus the autoscaler's ``scale_events``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..obs.metrics import MetricsRegistry
from .registry import RegistryStats
from .request import RejectedRequest, RequestRecord

__all__ = [
    "percentile",
    "LatencySummary",
    "PriorityClassSlo",
    "BurstSlo",
    "SloSummary",
    "ServingReport",
    "build_report",
    "build_slo_summary",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


@dataclass(frozen=True)
class LatencySummary:
    """Five-number summary of a latency distribution (milliseconds)."""

    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        """Summarise a non-empty sequence of latency samples."""
        return cls(
            mean_ms=sum(values) / len(values),
            p50_ms=percentile(values, 50),
            p95_ms=percentile(values, 95),
            p99_ms=percentile(values, 99),
            max_ms=max(values),
        )

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The all-zero summary of a run that completed no request at all.

        Only SLO runs can produce one: an admission policy may reject every
        request (e.g. all deadlines already missed at arrival), leaving no
        latency sample to summarise.
        """
        return cls(mean_ms=0.0, p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, max_ms=0.0)

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        """Flat dict form with keys prefixed by ``prefix`` (CSV columns)."""
        return {
            f"{prefix}mean_ms": self.mean_ms,
            f"{prefix}p50_ms": self.p50_ms,
            f"{prefix}p95_ms": self.p95_ms,
            f"{prefix}p99_ms": self.p99_ms,
            f"{prefix}max_ms": self.max_ms,
        }


@dataclass(frozen=True)
class PriorityClassSlo:
    """SLO accounting of one priority class."""

    priority: int
    #: Requests of this class offered to the service (admitted + rejected).
    offered: int
    admitted: int
    rejected: int
    #: Completed within their deadline (no-deadline requests count as met).
    met: int
    #: Completed after their deadline.
    violations: int
    #: ``met / offered`` — a rejected request never attains its SLO.
    attainment: float
    #: Latency percentiles over the class's *completed* requests.
    p50_ms: float
    p95_ms: float
    p99_ms: float


@dataclass(frozen=True)
class BurstSlo:
    """SLO attainment of one traffic burst (requests sharing a ``burst_id``)."""

    burst_id: int
    offered: int
    admitted: int
    met: int
    attainment: float


@dataclass(frozen=True)
class SloSummary:
    """Deadline/admission accounting of one serving run.

    ``attainment_rate`` is ``met / offered``: the fraction of *all* requests
    the clients submitted that completed within their deadline.  A rejected
    request never attains its SLO — load shedding pays off only by letting
    the admitted requests meet theirs.  Requests without a deadline count as
    met upon completion.
    """

    offered: int
    admitted: int
    rejected: int
    #: Admitted requests that carried a deadline.
    with_deadline: int
    met: int
    violations: int
    attainment_rate: float
    #: Rejections grouped by the policy's reason string.
    rejection_reasons: dict[str, int] = field(default_factory=dict)
    #: Per-priority-class breakdown, highest priority first.
    per_priority: list[PriorityClassSlo] = field(default_factory=list)
    #: Per-burst attainment (bursty traffic only), in burst order.
    per_burst: list[BurstSlo] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable multi-line SLO section (what the CLI prints)."""
        lines = [
            f"slo       : {self.met}/{self.offered} met "
            f"({self.attainment_rate:.1%} attainment), "
            f"{self.violations} violations, {self.rejected} rejected"
        ]
        if self.rejection_reasons:
            reasons = ", ".join(
                f"{reason}×{count}"
                for reason, count in sorted(self.rejection_reasons.items())
            )
            lines.append(f"rejections: {reasons}")
        for row in self.per_priority:
            lines.append(
                f"priority {row.priority}: {row.met}/{row.offered} met "
                f"({row.attainment:.1%}), p50 {row.p50_ms:.3f}  "
                f"p95 {row.p95_ms:.3f}  p99 {row.p99_ms:.3f} ms"
            )
        return "\n".join(lines)


@dataclass
class ServingReport:
    """Aggregate result of one serving run."""

    num_requests: int
    num_samples: int
    num_batches: int
    #: Wall-clock span of the run on the virtual clock, first arrival to last
    #: completion, in milliseconds.
    makespan_ms: float
    throughput_rps: float
    throughput_samples_per_s: float
    latency: LatencySummary
    queue_delay: LatencySummary
    #: How many batches executed at each specialised batch size.
    batch_size_counts: dict[int, int] = field(default_factory=dict)
    #: Snapshot of the registry counters at the end of the run.
    registry_stats: RegistryStats = field(default_factory=RegistryStats)
    #: Per-worker accounting rows from the pool.
    worker_summary: list[dict[str, object]] = field(default_factory=list)
    #: Per-device-group rows (device, workers, batches, samples, utilization,
    #: plus a latency summary of the requests that group executed).  Empty for
    #: reports built without pool group accounting.
    device_summary: list[dict[str, object]] = field(default_factory=list)
    #: Name of the routing policy that dispatched the batches ("" pre-fleet).
    router: str = ""
    records: list[RequestRecord] = field(default_factory=list)
    #: Name of the admission policy that gated arrivals ("" pre-SLO).
    admission: str = ""
    #: Requests the admission policy refused to queue.
    rejected: list[RejectedRequest] = field(default_factory=list)
    #: Deadline/admission accounting; ``None`` for runs without SLOs.
    slo_summary: SloSummary | None = None
    #: Autoscaler resize events, in event order (empty without an autoscaler).
    scale_events: list = field(default_factory=list)
    #: Alert transitions (:class:`~repro.obs.AlertEvent`), in window order;
    #: empty for runs without alert rules.
    alerts: list = field(default_factory=list)
    #: The run's full metrics registry (queue depth, admission outcomes,
    #: latency distributions, per-worker utilisation series, ...); ``None``
    #: for reports built without one.  Deliberately absent from
    #: :meth:`describe`, which stays byte-compatible with pre-metrics output.
    metrics: MetricsRegistry | None = None

    @property
    def mean_batch_occupancy(self) -> float:
        """Average samples per executed batch."""
        if self.num_batches == 0:
            return 0.0
        return self.num_samples / self.num_batches

    def describe(self) -> str:
        """Human-readable multi-line report (what the CLI prints)."""
        lines = [
            f"served {self.num_requests} requests ({self.num_samples} samples) "
            f"in {self.num_batches} batches over {self.makespan_ms:.2f} ms",
            f"throughput: {self.throughput_rps:.1f} req/s, "
            f"{self.throughput_samples_per_s:.1f} samples/s",
            f"latency   : mean {self.latency.mean_ms:.3f}  p50 {self.latency.p50_ms:.3f}  "
            f"p95 {self.latency.p95_ms:.3f}  p99 {self.latency.p99_ms:.3f}  "
            f"max {self.latency.max_ms:.3f} ms",
            f"queue     : mean {self.queue_delay.mean_ms:.3f}  "
            f"p95 {self.queue_delay.p95_ms:.3f} ms",
            "batch mix : "
            + ", ".join(
                f"bs{size}×{count}" for size, count in sorted(self.batch_size_counts.items())
            ),
            f"registry  : {self.registry_stats.searches} searches, "
            f"{self.registry_stats.disk_hits} disk hits, "
            f"{self.registry_stats.memory_hits} memory hits",
        ]
        if self.router:
            lines.append(f"router    : {self.router}")
        # Keep pre-SLO output byte-compatible: the admission/SLO sections
        # only print when there is something to say (a non-default policy,
        # deadlines in play, shed requests, or several priority classes).
        if self.admission and self.admission != "admit-all":
            lines.append(f"admission : {self.admission}")
        slo = self.slo_summary
        if slo is not None and (
            slo.rejected or slo.with_deadline or len(slo.per_priority) > 1
        ):
            lines.append(slo.describe())
        if self.scale_events:
            ups = sum(1 for event in self.scale_events if event.action == "up")
            downs = len(self.scale_events) - ups
            sizes = " → ".join(
                str(size)
                for size in _pool_size_trajectory(self.scale_events)
            )
            lines.append(
                f"autoscale : {len(self.scale_events)} events "
                f"({ups} up, {downs} down), pool {sizes}"
            )
        # Alert section only for runs that evaluated rules AND saw
        # transitions — alert-free runs print byte-identically to pre-alert
        # output.
        if self.alerts:
            fired = sum(1 for event in self.alerts if event.state == "firing")
            lines.append(
                f"alerts    : {len(self.alerts)} transitions ({fired} firing)"
            )
            for event in self.alerts:
                lines.append("  " + event.summary())
        for row in self.device_summary:
            latency = row.get("latency")
            latency_text = (
                f", p50 {latency.p50_ms:.3f} / p95 {latency.p95_ms:.3f} ms"
                if isinstance(latency, LatencySummary) else ""
            )
            lines.append(
                f"group {row['device']}×{row['workers']}: {row['batches']} batches, "
                f"{row['samples']} samples, {row['utilization']:.1%} busy"
                + latency_text
            )
        for row in self.worker_summary:
            lines.append(
                f"worker {row['worker']} ({row['device']}): {row['batches']} batches, "
                f"{row['samples']} samples, {row['utilization']:.1%} busy"
            )
        return "\n".join(lines)


def _pool_size_trajectory(scale_events) -> list[int]:
    """Pool sizes the autoscaler stepped through: initial plus each event's."""
    if not scale_events:
        return []
    first = scale_events[0]
    initial = first.num_workers + (1 if first.action == "down" else -1)
    return [initial] + [event.num_workers for event in scale_events]


def build_slo_summary(
    records: Sequence[RequestRecord],
    rejected: Sequence[RejectedRequest] = (),
) -> SloSummary:
    """Fold completed records and rejections into an :class:`SloSummary`."""
    offered = len(records) + len(rejected)
    met = sum(1 for record in records if record.deadline_met)
    violations = len(records) - met
    with_deadline = sum(
        1 for record in records if record.request.deadline_ms is not None
    )
    reasons: dict[str, int] = {}
    for rejection in rejected:
        reasons[rejection.reason] = reasons.get(rejection.reason, 0) + 1

    per_priority: list[PriorityClassSlo] = []
    priorities = sorted(
        {record.request.priority for record in records}
        | {rejection.request.priority for rejection in rejected},
        reverse=True,
    )
    for priority in priorities:
        class_records = [r for r in records if r.request.priority == priority]
        class_rejected = [
            r for r in rejected if r.request.priority == priority
        ]
        class_met = sum(1 for record in class_records if record.deadline_met)
        class_offered = len(class_records) + len(class_rejected)
        latencies = [record.latency_ms for record in class_records]
        per_priority.append(
            PriorityClassSlo(
                priority=priority,
                offered=class_offered,
                admitted=len(class_records),
                rejected=len(class_rejected),
                met=class_met,
                violations=len(class_records) - class_met,
                attainment=class_met / class_offered if class_offered else 0.0,
                p50_ms=percentile(latencies, 50) if latencies else 0.0,
                p95_ms=percentile(latencies, 95) if latencies else 0.0,
                p99_ms=percentile(latencies, 99) if latencies else 0.0,
            )
        )

    per_burst: list[BurstSlo] = []
    burst_ids = sorted(
        {
            record.request.burst_id
            for record in records
            if record.request.burst_id is not None
        }
        | {
            rejection.request.burst_id
            for rejection in rejected
            if rejection.request.burst_id is not None
        }
    )
    for burst_id in burst_ids:
        burst_records = [r for r in records if r.request.burst_id == burst_id]
        burst_rejected = [r for r in rejected if r.request.burst_id == burst_id]
        burst_met = sum(1 for record in burst_records if record.deadline_met)
        burst_offered = len(burst_records) + len(burst_rejected)
        per_burst.append(
            BurstSlo(
                burst_id=burst_id,
                offered=burst_offered,
                admitted=len(burst_records),
                met=burst_met,
                attainment=burst_met / burst_offered if burst_offered else 0.0,
            )
        )

    return SloSummary(
        offered=offered,
        admitted=len(records),
        rejected=len(rejected),
        with_deadline=with_deadline,
        met=met,
        violations=violations,
        attainment_rate=met / offered if offered else 0.0,
        rejection_reasons=reasons,
        per_priority=per_priority,
        per_burst=per_burst,
    )


def build_report(
    records: Sequence[RequestRecord],
    num_batches: int,
    batch_size_counts: dict[int, int],
    registry_stats: RegistryStats,
    worker_summary: list[dict[str, object]],
    group_summary: list[dict[str, object]] | None = None,
    router: str = "",
    admission: str = "",
    rejected: Sequence[RejectedRequest] = (),
    scale_events: Sequence | None = None,
    alerts: Sequence | None = None,
    metrics: MetricsRegistry | None = None,
) -> ServingReport:
    """Fold per-request records into a :class:`ServingReport`.

    Parameters
    ----------
    records:
        One finished :class:`~repro.serve.request.RequestRecord` per request.
    num_batches:
        Device executions performed (a formed batch may chunk into several).
    batch_size_counts:
        Executions per specialised batch size.
    registry_stats:
        Registry counters to snapshot into the report.
    worker_summary:
        Per-worker rows from :meth:`~repro.serve.workers.WorkerPool.summary`.
    group_summary:
        Per-device-group rows from
        :meth:`~repro.serve.workers.WorkerPool.group_summary`; each group is
        enriched with the latency summary of the requests it executed.
    router:
        Name of the routing policy that dispatched the batches.
    admission:
        Name of the admission policy that gated arrivals; any non-empty name
        (or any request with a deadline, or any rejection) adds an
        :class:`SloSummary` to the report.
    rejected:
        Requests the admission policy refused to queue.  A run may consist of
        rejections only — then every latency summary is all-zero.
    scale_events:
        Autoscaler resize events to record in the report.
    alerts:
        Alert transitions (:class:`~repro.obs.AlertEvent`) to record; the
        report prints them only when non-empty.
    metrics:
        The run's :class:`~repro.obs.MetricsRegistry` to attach to the
        report (``ios-bench serve --metrics`` dumps it); never printed by
        :meth:`ServingReport.describe`.
    """
    if not records and not rejected:
        raise ValueError("cannot build a serving report from zero records")
    arrivals = [record.request.arrival_ms for record in records] + [
        rejection.request.arrival_ms for rejection in rejected
    ]
    first_arrival = min(arrivals)
    last_completion = max(
        (record.completion_ms for record in records),
        default=first_arrival,
    )
    makespan_ms = max(last_completion - first_arrival, 1e-9)
    num_samples = sum(record.request.num_samples for record in records)
    device_summary: list[dict[str, object]] = []
    for group in group_summary or []:
        row = dict(group)
        group_latencies = [
            record.latency_ms for record in records if record.device == row["device"]
        ]
        row["requests"] = len(group_latencies)
        if group_latencies:
            row["latency"] = LatencySummary.from_values(group_latencies)
        device_summary.append(row)
    # The default admit-all policy on deadline-free traffic is not an SLO
    # signal: plain runs keep slo_summary is None, preserving the "None for
    # runs without SLOs" contract downstream code branches on.
    slo_summary = None
    if (
        (admission and admission != "admit-all")
        or rejected
        or any(record.request.deadline_ms is not None for record in records)
    ):
        slo_summary = build_slo_summary(records, rejected)
    return ServingReport(
        num_requests=len(records),
        num_samples=num_samples,
        num_batches=num_batches,
        makespan_ms=makespan_ms,
        throughput_rps=len(records) / (makespan_ms / 1e3),
        throughput_samples_per_s=num_samples / (makespan_ms / 1e3),
        latency=(
            LatencySummary.from_values([record.latency_ms for record in records])
            if records else LatencySummary.empty()
        ),
        queue_delay=(
            LatencySummary.from_values([record.queue_delay_ms for record in records])
            if records else LatencySummary.empty()
        ),
        batch_size_counts=dict(sorted(batch_size_counts.items())),
        # Copy: the registry keeps mutating its own counters when it is shared
        # across runs, and the report promises a snapshot.
        registry_stats=replace(registry_stats),
        worker_summary=worker_summary,
        device_summary=device_summary,
        router=router,
        records=list(records),
        admission=admission,
        rejected=list(rejected),
        slo_summary=slo_summary,
        scale_events=list(scale_events or []),
        alerts=list(alerts or []),
        metrics=metrics,
    )
