"""Serving metrics: per-request accounting and aggregate reports.

The serving loop produces one :class:`~repro.serve.request.RequestRecord` per
request; :func:`build_report` folds them into the numbers a serving system is
judged by — throughput (requests/s and samples/s), latency percentiles
(p50/p95/p99), queue delay, batch-size distribution — plus the registry and
worker statistics that explain *why* the numbers look the way they do.

Heterogeneous fleets additionally get a **per-device-group** breakdown
(``ServingReport.device_summary``): for each device type, worker count,
batches/samples executed, group utilisation, and the latency summary of the
requests that ran on that group — the numbers that show whether the router
actually put the fast silicon to work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from .registry import RegistryStats
from .request import RequestRecord

__all__ = ["percentile", "LatencySummary", "ServingReport", "build_report"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


@dataclass(frozen=True)
class LatencySummary:
    """Five-number summary of a latency distribution (milliseconds)."""

    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        """Summarise a non-empty sequence of latency samples."""
        return cls(
            mean_ms=sum(values) / len(values),
            p50_ms=percentile(values, 50),
            p95_ms=percentile(values, 95),
            p99_ms=percentile(values, 99),
            max_ms=max(values),
        )

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        """Flat dict form with keys prefixed by ``prefix`` (CSV columns)."""
        return {
            f"{prefix}mean_ms": self.mean_ms,
            f"{prefix}p50_ms": self.p50_ms,
            f"{prefix}p95_ms": self.p95_ms,
            f"{prefix}p99_ms": self.p99_ms,
            f"{prefix}max_ms": self.max_ms,
        }


@dataclass
class ServingReport:
    """Aggregate result of one serving run."""

    num_requests: int
    num_samples: int
    num_batches: int
    #: Wall-clock span of the run on the virtual clock, first arrival to last
    #: completion, in milliseconds.
    makespan_ms: float
    throughput_rps: float
    throughput_samples_per_s: float
    latency: LatencySummary
    queue_delay: LatencySummary
    #: How many batches executed at each specialised batch size.
    batch_size_counts: dict[int, int] = field(default_factory=dict)
    #: Snapshot of the registry counters at the end of the run.
    registry_stats: RegistryStats = field(default_factory=RegistryStats)
    #: Per-worker accounting rows from the pool.
    worker_summary: list[dict[str, object]] = field(default_factory=list)
    #: Per-device-group rows (device, workers, batches, samples, utilization,
    #: plus a latency summary of the requests that group executed).  Empty for
    #: reports built without pool group accounting.
    device_summary: list[dict[str, object]] = field(default_factory=list)
    #: Name of the routing policy that dispatched the batches ("" pre-fleet).
    router: str = ""
    records: list[RequestRecord] = field(default_factory=list)

    @property
    def mean_batch_occupancy(self) -> float:
        """Average samples per executed batch."""
        if self.num_batches == 0:
            return 0.0
        return self.num_samples / self.num_batches

    def describe(self) -> str:
        """Human-readable multi-line report (what the CLI prints)."""
        lines = [
            f"served {self.num_requests} requests ({self.num_samples} samples) "
            f"in {self.num_batches} batches over {self.makespan_ms:.2f} ms",
            f"throughput: {self.throughput_rps:.1f} req/s, "
            f"{self.throughput_samples_per_s:.1f} samples/s",
            f"latency   : mean {self.latency.mean_ms:.3f}  p50 {self.latency.p50_ms:.3f}  "
            f"p95 {self.latency.p95_ms:.3f}  p99 {self.latency.p99_ms:.3f}  "
            f"max {self.latency.max_ms:.3f} ms",
            f"queue     : mean {self.queue_delay.mean_ms:.3f}  "
            f"p95 {self.queue_delay.p95_ms:.3f} ms",
            f"batch mix : "
            + ", ".join(
                f"bs{size}×{count}" for size, count in sorted(self.batch_size_counts.items())
            ),
            f"registry  : {self.registry_stats.searches} searches, "
            f"{self.registry_stats.disk_hits} disk hits, "
            f"{self.registry_stats.memory_hits} memory hits",
        ]
        if self.router:
            lines.append(f"router    : {self.router}")
        for row in self.device_summary:
            latency = row.get("latency")
            latency_text = (
                f", p50 {latency.p50_ms:.3f} / p95 {latency.p95_ms:.3f} ms"
                if isinstance(latency, LatencySummary) else ""
            )
            lines.append(
                f"group {row['device']}×{row['workers']}: {row['batches']} batches, "
                f"{row['samples']} samples, {row['utilization']:.1%} busy"
                + latency_text
            )
        for row in self.worker_summary:
            lines.append(
                f"worker {row['worker']} ({row['device']}): {row['batches']} batches, "
                f"{row['samples']} samples, {row['utilization']:.1%} busy"
            )
        return "\n".join(lines)


def build_report(
    records: Sequence[RequestRecord],
    num_batches: int,
    batch_size_counts: dict[int, int],
    registry_stats: RegistryStats,
    worker_summary: list[dict[str, object]],
    group_summary: list[dict[str, object]] | None = None,
    router: str = "",
) -> ServingReport:
    """Fold per-request records into a :class:`ServingReport`.

    Parameters
    ----------
    records:
        One finished :class:`~repro.serve.request.RequestRecord` per request.
    num_batches:
        Device executions performed (a formed batch may chunk into several).
    batch_size_counts:
        Executions per specialised batch size.
    registry_stats:
        Registry counters to snapshot into the report.
    worker_summary:
        Per-worker rows from :meth:`~repro.serve.workers.WorkerPool.summary`.
    group_summary:
        Per-device-group rows from
        :meth:`~repro.serve.workers.WorkerPool.group_summary`; each group is
        enriched with the latency summary of the requests it executed.
    router:
        Name of the routing policy that dispatched the batches.
    """
    if not records:
        raise ValueError("cannot build a serving report from zero records")
    first_arrival = min(record.request.arrival_ms for record in records)
    last_completion = max(record.completion_ms for record in records)
    makespan_ms = max(last_completion - first_arrival, 1e-9)
    num_samples = sum(record.request.num_samples for record in records)
    device_summary: list[dict[str, object]] = []
    for group in group_summary or []:
        row = dict(group)
        group_latencies = [
            record.latency_ms for record in records if record.device == row["device"]
        ]
        row["requests"] = len(group_latencies)
        if group_latencies:
            row["latency"] = LatencySummary.from_values(group_latencies)
        device_summary.append(row)
    return ServingReport(
        num_requests=len(records),
        num_samples=num_samples,
        num_batches=num_batches,
        makespan_ms=makespan_ms,
        throughput_rps=len(records) / (makespan_ms / 1e3),
        throughput_samples_per_s=num_samples / (makespan_ms / 1e3),
        latency=LatencySummary.from_values([record.latency_ms for record in records]),
        queue_delay=LatencySummary.from_values(
            [record.queue_delay_ms for record in records]
        ),
        batch_size_counts=dict(sorted(batch_size_counts.items())),
        # Copy: the registry keeps mutating its own counters when it is shared
        # across runs, and the report promises a snapshot.
        registry_stats=replace(registry_stats),
        worker_summary=worker_summary,
        device_summary=device_summary,
        router=router,
        records=list(records),
    )
