"""Reproducible serving experiments.

The paper's figures measure schedules in isolation; these harnesses measure
them *in service*: synthetic traffic flows through the batcher → router →
registry → worker pool pipeline and the resulting throughput/latency numbers
land in the same :class:`~repro.experiments.tables.ExperimentTable` container
as every paper figure, so serving runs are printable, CSV-exportable and
benchmarkable with the existing machinery.

Three comparisons are provided:

* :func:`run_serving_comparison` — dynamic batching vs. the no-batching
  baseline on a homogeneous pool (the PR-1 study);
* :func:`run_fleet_comparison` — a mixed-device fleet vs. equally-sized
  homogeneous fleets of each member device type, under Poisson and bursty
  traffic: the heterogeneity study;
* :func:`run_slo_comparison` — admission policies head-to-head under a
  deadline-carrying bursty overload, with an optional elastic pool: the
  SLO study (deadline-aware shedding must beat admit-all on attainment).
"""

from __future__ import annotations

from ..experiments.tables import ExperimentTable
from ..obs.trace import Tracer
from .batcher import BatchPolicy
from .fleet import FleetSpec
from .metrics import ServingReport
from .registry import ScheduleRegistry
from .service import InferenceService, ServingConfig
from .traffic import TrafficConfig, TrafficGenerator

__all__ = [
    "run_serving",
    "run_serving_comparison",
    "run_fleet_comparison",
    "run_slo_comparison",
]


def run_serving(
    traffic: TrafficConfig,
    serving: ServingConfig,
    registry: ScheduleRegistry | None = None,
    warmup: bool = True,
    tracer: "Tracer | None" = None,
    alerts=None,
    watch=None,
    window_ms: float = 50.0,
) -> ServingReport:
    """Generate traffic, serve it, and return the report.

    ``registry`` may be shared across calls (or pre-warmed from disk) to model
    a long-lived service; by default each call builds its own from
    ``serving.registry_root``.  ``tracer`` (a :class:`repro.obs.Tracer`)
    records the run — compile stages, request lifecycles, worker activity —
    without changing the report.  ``alerts`` (an
    :class:`~repro.obs.AlertManager` or rule list) and ``watch`` (a
    :class:`~repro.obs.WatchRenderer` or ``True``) turn on windowed live
    metrics, evaluated every ``window_ms`` of virtual time; alert transitions
    land in the report's ``alerts`` section.
    """
    if traffic.model != serving.model:
        raise ValueError(
            f"traffic is for model {traffic.model!r} but the service serves "
            f"{serving.model!r}"
        )
    service = InferenceService(
        serving, registry=registry, tracer=tracer,
        alerts=alerts, watch=watch, window_ms=window_ms,
    )
    if warmup:
        service.warmup()
    requests = TrafficGenerator(traffic).generate()
    return service.run(requests)


def run_serving_comparison(
    model: str = "inception_v3",
    device: str = "v100",
    num_workers: int = 2,
    num_requests: int = 200,
    rate_rps: float = 200.0,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16),
    max_wait_ms: float = 5.0,
    patterns: tuple[str, ...] = ("poisson", "bursty"),
    burst_size: int = 16,
    burst_gap_ms: float = 50.0,
    variant: str = "ios-both",
    registry_root: str | None = None,
    seed: int = 0,
    passes: bool = False,
) -> ExperimentTable:
    """Dynamic batching vs. the no-batching baseline across traffic patterns.

    One registry (and hence one set of scheduler searches) is shared by all
    runs, exactly as a deployed service would share its schedule store.  The
    per-request sample mix is capped to the ladder maximum so every generated
    request is servable.
    """
    table = ExperimentTable(
        experiment_id="serving_comparison",
        title=f"Serving {model} on {num_workers}×{device}: "
        "dynamic batching vs. no batching",
        columns=[
            "pattern", "policy", "requests", "batches", "throughput_rps",
            "samples_per_s", "p50_ms", "p95_ms", "mean_queue_ms", "searches",
        ],
        notes="one schedule registry shared across all runs; 'searches' is the "
        "cumulative number of IOS scheduler runs it performed so far",
    )

    registry = ScheduleRegistry(root=registry_root, variant=variant, passes=passes)
    devices = (device,) * num_workers
    configs = {
        "dynamic": ServingConfig(
            model=model, devices=devices, batch_sizes=batch_sizes,
            policy=BatchPolicy(max_batch_size=max(batch_sizes), max_wait_ms=max_wait_ms),
            variant=variant, passes=passes,
        ),
        "unbatched": ServingConfig.unbatched(
            model=model, devices=devices, batch_sizes=batch_sizes, variant=variant,
            passes=passes,
        ),
    }
    for pattern in patterns:
        traffic = TrafficConfig(
            model=model, pattern=pattern, num_requests=num_requests,
            rate_rps=rate_rps, burst_size=burst_size, burst_gap_ms=burst_gap_ms,
            seed=seed,
        ).capped_to(max(batch_sizes))
        for policy_name, serving in configs.items():
            report = run_serving(traffic, serving, registry=registry)
            table.add_row(
                pattern=pattern,
                policy=policy_name,
                requests=report.num_requests,
                batches=report.num_batches,
                throughput_rps=report.throughput_rps,
                samples_per_s=report.throughput_samples_per_s,
                p50_ms=report.latency.p50_ms,
                p95_ms=report.latency.p95_ms,
                mean_queue_ms=report.queue_delay.mean_ms,
                searches=registry.stats.searches,
            )
    return table


def run_slo_comparison(
    model: str = "squeezenet",
    device: str = "k80",
    num_workers: int = 1,
    slo_ms: float = 20.0,
    admissions: tuple[str, ...] = ("admit-all", "deadline"),
    autoscale: "str | object | None" = None,
    router: str = "earliest-finish",
    num_requests: int = 320,
    burst_size: int = 64,
    burst_gap_ms: float = 30.0,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8),
    max_wait_ms: float = 2.0,
    pattern: str = "bursty",
    rate_rps: float = 2000.0,
    variant: str = "ios-both",
    registry_root: str | None = None,
    seed: int = 0,
    passes: bool = False,
) -> ExperimentTable:
    """Admission policies head-to-head on one deadline-carrying workload.

    Every row serves the identical seeded workload — bursty overload by
    default, each request carrying an ``slo_ms`` latency budget — through
    the same pool shape, varying only the admission policy (and applying the
    same ``autoscale`` bounds to every row, so the comparison isolates
    admission).  One schedule registry is shared by all rows.

    The headline columns: ``attainment`` (fraction of *offered* requests that
    completed within their deadline — a rejected request never attains) and
    the latency percentiles of the admitted requests.  Under overload,
    deadline-aware shedding must beat admit-all on attainment *and* p99: the
    benchmark suite asserts exactly that.

    Parameters
    ----------
    model, batch_sizes, max_wait_ms, variant, registry_root, passes:
        Service knobs, as in :func:`run_serving_comparison`.
    device, num_workers:
        The (homogeneous) pool every policy serves on.
    slo_ms:
        Latency budget attached to every generated request.
    admissions:
        Admission policies to measure; each gets one row.
    autoscale:
        Optional elastic bounds applied to every row: a ``"min:max"``
        string, or a full :class:`~repro.serve.autoscale.AutoscaleConfig`
        when the watermarks need tuning too.
    router:
        Routing policy every row dispatches with.
    num_requests, pattern, rate_rps, burst_size, burst_gap_ms, seed:
        Traffic shape, shared by every row.
    """
    table = ExperimentTable(
        experiment_id="slo_comparison",
        title=f"Serving {model} with a {slo_ms:.0f}ms SLO on "
        f"{num_workers}×{device} ({pattern} overload): admission policies",
        columns=[
            "admission", "offered", "admitted", "rejected", "attainment",
            "violations", "p50_ms", "p99_ms", "scale_events", "peak_workers",
        ],
        notes="every row serves the identical seeded deadline-carrying "
        "workload; 'attainment' counts a rejected request as a miss, so "
        "shedding only wins by letting admitted requests meet their SLO; "
        "one schedule registry is shared across rows",
    )

    registry = ScheduleRegistry(root=registry_root, variant=variant, passes=passes)
    traffic = TrafficConfig(
        model=model, pattern=pattern, num_requests=num_requests,
        rate_rps=rate_rps, burst_size=burst_size, burst_gap_ms=burst_gap_ms,
        slo_ms=slo_ms, seed=seed,
    ).capped_to(max(batch_sizes))
    for admission in admissions:
        serving = ServingConfig(
            model=model, devices=(device,) * num_workers,
            batch_sizes=batch_sizes,
            policy=BatchPolicy(max_batch_size=max(batch_sizes),
                               max_wait_ms=max_wait_ms),
            admission=admission, autoscale=autoscale, router=router,
            variant=variant, passes=passes,
        )
        report = run_serving(traffic, serving, registry=registry)
        slo = report.slo_summary
        peak_workers = max(
            [num_workers]
            + [event.num_workers for event in report.scale_events]
        )
        table.add_row(
            admission=admission,
            offered=slo.offered,
            admitted=slo.admitted,
            rejected=slo.rejected,
            attainment=slo.attainment_rate,
            violations=slo.violations,
            p50_ms=report.latency.p50_ms,
            p99_ms=report.latency.p99_ms,
            scale_events=len(report.scale_events),
            peak_workers=peak_workers,
        )
    return table


def _group_utilization(report: ServingReport) -> str:
    """Compact per-device-group utilisation cell, e.g. ``k80:2@41% v100:4@87%``."""
    return " ".join(
        f"{row['device']}:{row['workers']}@{row['utilization']:.0%}"
        for row in report.device_summary
    )


def run_fleet_comparison(
    model: str = "squeezenet",
    fleet: "FleetSpec | str" = "k80:2,v100:4",
    routers: tuple[str, ...] = ("earliest-finish",),
    num_requests: int = 300,
    rate_rps: float = 2000.0,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16),
    max_wait_ms: float = 5.0,
    patterns: tuple[str, ...] = ("poisson", "bursty"),
    burst_size: int = 32,
    burst_gap_ms: float = 20.0,
    variant: str = "ios-both",
    registry_root: str | None = None,
    seed: int = 0,
    passes: bool = False,
) -> ExperimentTable:
    """Mixed fleet vs. equally-sized homogeneous fleets, per traffic pattern.

    For the given (typically mixed) ``fleet``, every member device type also
    runs as a *homogeneous* fleet of the same total worker count, so the
    comparison isolates device heterogeneity from pool size.  Each row serves
    the identical seeded workload; one schedule registry is shared by all
    runs (fleets sharing a device type reuse its compiled artifacts, exactly
    like deployments sharing a schedule store).  Under load, the mixed fleet
    must beat the homogeneous fleet of its slowest member device — that is
    the acceptance bar the fleet tests assert on.

    Parameters
    ----------
    model, batch_sizes, max_wait_ms, variant, registry_root, passes:
        Service knobs, as in :func:`run_serving_comparison`.
    fleet:
        The mixed fleet under study (spec object or ``"k80:2,v100:4"``).
    routers:
        Routing policies to measure; each gets its own rows.
    num_requests, rate_rps, patterns, burst_size, burst_gap_ms, seed:
        Traffic shape per pattern, shared by every fleet.
    """
    fleet = FleetSpec.of(fleet)
    fleets: dict[str, FleetSpec] = {fleet.describe(): fleet}
    for device in fleet.device_types():
        homogeneous = FleetSpec.homogeneous(device, fleet.num_workers)
        fleets.setdefault(homogeneous.describe(), homogeneous)

    table = ExperimentTable(
        experiment_id="fleet_comparison",
        title=f"Serving {model} on mixed vs homogeneous fleets "
        f"({fleet.describe()}, {fleet.num_workers} workers each)",
        columns=[
            "fleet", "pattern", "router", "requests", "batches",
            "throughput_rps", "samples_per_s", "p50_ms", "p95_ms",
            "groups", "searches",
        ],
        notes="every fleet serves the identical seeded workload; 'groups' is "
        "per-device-group utilisation; one schedule registry is shared, so "
        "'searches' is cumulative across rows",
    )

    registry = ScheduleRegistry(root=registry_root, variant=variant, passes=passes)
    policy = BatchPolicy(max_batch_size=max(batch_sizes), max_wait_ms=max_wait_ms)
    for pattern in patterns:
        traffic = TrafficConfig(
            model=model, pattern=pattern, num_requests=num_requests,
            rate_rps=rate_rps, burst_size=burst_size, burst_gap_ms=burst_gap_ms,
            seed=seed,
        ).capped_to(max(batch_sizes))
        for fleet_name, members in fleets.items():
            for router in routers:
                serving = ServingConfig(
                    model=model, fleet=members, router=router,
                    batch_sizes=batch_sizes, policy=policy, variant=variant,
                    passes=passes,
                )
                report = run_serving(traffic, serving, registry=registry)
                table.add_row(
                    fleet=fleet_name,
                    pattern=pattern,
                    router=router,
                    requests=report.num_requests,
                    batches=report.num_batches,
                    throughput_rps=report.throughput_rps,
                    samples_per_s=report.throughput_samples_per_s,
                    p50_ms=report.latency.p50_ms,
                    p95_ms=report.latency.p95_ms,
                    groups=_group_utilization(report),
                    searches=registry.stats.searches,
                )
    return table
