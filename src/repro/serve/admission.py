"""Admission control: which arrivals are allowed to queue at all.

Under overload a serving system must *shed* load, not queue it forever — a
request that will blow its deadline anyway only adds queueing delay for every
request behind it.  :class:`AdmissionPolicy` is the pluggable gate the
:class:`~repro.serve.loop.ServingLoop` consults on every arrival:

* :class:`AdmitAll` — the pre-SLO behaviour: everything queues, nothing is
  shed (the baseline every other policy is measured against);
* :class:`DeadlineAwareAdmission` — reject a request whose *predicted*
  completion time already misses its deadline.  The prediction combines the
  batching wait bound, the earliest worker horizon, and the engine's
  per-device execution-latency estimate for the request's batch size — the
  same estimate the device-aware router ranks workers with;
* :class:`PriorityAdmission` — priority-preemptive queueing: dispatch order
  follows ``InferenceRequest.priority`` (ties FIFO), a high-priority arrival
  whose deadline demands it closes the forming batch on the spot, and
  predicted misses are shed in every class — with a *protection margin*
  that makes classes below the top one yield admission headroom: a
  below-top request must be predicted to finish with spare budget
  proportional to its class distance from the top, so under contention the
  low classes shed first and the freed capacity serves the important
  traffic.

Policies never measure a device themselves: they see a
:class:`~repro.serve.loop.LoopState` view of the loop (virtual time, queue
depth, worker horizons, latency estimates) and return an
:class:`AdmissionDecision`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .request import InferenceRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .loop import LoopState

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmitAll",
    "DeadlineAwareAdmission",
    "PriorityAdmission",
    "ADMISSION_POLICIES",
    "get_admission_policy",
    "list_admission_policies",
]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    #: Reason string recorded with a rejection (e.g. "predicted-deadline-miss").
    reason: str = ""

    @classmethod
    def admit(cls) -> "AdmissionDecision":
        return cls(admitted=True)

    @classmethod
    def reject(cls, reason: str) -> "AdmissionDecision":
        return cls(admitted=False, reason=reason)


class AdmissionPolicy:
    """Gate deciding whether an arrival may enter the serving queue.

    Subclasses implement :meth:`admit`; :meth:`order_key` and
    :meth:`preempts` refine how admitted requests queue.  Policies may keep
    state — the service owns one instance per run, so state never leaks
    between services.
    """

    #: Registry name; subclasses override.
    name = "admission"

    def reset(self) -> None:
        """Clear per-run state; the serving loop calls this once per run."""

    def admit(self, request: InferenceRequest, state: "LoopState") -> AdmissionDecision:
        """Decide whether ``request`` (arriving now) may queue."""
        raise NotImplementedError

    def order_key(self, request: InferenceRequest):
        """Sort key fixing the dispatch order within a closing batch.

        The default is FIFO (arrival order); priority-aware policies rank
        important requests first so chunking serves them ahead of the rest.
        """
        return (request.arrival_ms, request.request_id)

    def preempts(self, request: InferenceRequest, state: "LoopState") -> bool:
        """Whether this arrival closes the forming batch immediately.

        A preempting arrival joins the batch and the batch dispatches on the
        spot — the arrival (and whatever queued before it) bypasses the rest
        of the max-wait window.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class AdmitAll(AdmissionPolicy):
    """Queue everything: the pre-SLO behaviour and the baseline to beat."""

    name = "admit-all"

    def admit(self, request: InferenceRequest, state: "LoopState") -> AdmissionDecision:
        """Always admit (``state`` unused)."""
        return AdmissionDecision.admit()


class DeadlineAwareAdmission(AdmissionPolicy):
    """Reject a request whose predicted completion already misses its deadline.

    The prediction is deliberately the same arithmetic the device-aware
    router uses: batching wait (bounded by the batch policy) plus the
    earliest worker start plus the engine's execution-latency estimate for
    the request's sample count.  ``slack_ms`` loosens the gate — a positive
    slack admits requests predicted to miss by less than that margin,
    absorbing estimate noise.
    """

    name = "deadline"

    def __init__(self, slack_ms: float = 0.0):
        self.slack_ms = slack_ms

    def admit(self, request: InferenceRequest, state: "LoopState") -> AdmissionDecision:
        """Admit unless the predicted completion misses the deadline."""
        if self._predicted_to_meet(request, state):
            return AdmissionDecision.admit()
        return AdmissionDecision.reject("predicted-deadline-miss")

    def _predicted_to_meet(self, request: InferenceRequest, state: "LoopState",
                           skip_wait: bool = False) -> bool:
        """Whether the prediction clears the deadline (within ``slack_ms``).

        ``skip_wait`` evaluates the immediate-dispatch prediction instead —
        what a preempting arrival would experience.  The prediction is
        recomputed with a zero wait rather than subtracted, because the wait
        only moves the completion when it, not a busy worker horizon, is the
        binding term.
        """
        if request.deadline_ms is None:
            return True
        predicted = state.predicted_completion_ms(request, immediate=skip_wait)
        return predicted <= request.absolute_deadline_ms + self.slack_ms


class PriorityAdmission(DeadlineAwareAdmission):
    """Priority-preemptive queueing with priority-aware shedding.

    Dispatch order follows the request's priority class (ties FIFO), and an
    arrival of a strictly higher priority than everything already queued
    flushes the forming batch so the important request does not sit behind
    it.  Shedding inherits the deadline prediction of
    :class:`DeadlineAwareAdmission` for every class — overload beyond
    capacity must be shed whoever carries it — tightened by a *protection
    margin* for the classes below the top one.

    Queue-jumping alone does not protect the high class under deep
    overload: once the worker horizons (not the batching wait) are the
    binding term of the prediction, every class predicts the same miss and
    sheds at the same rate.  The margin restores the asymmetry where it
    matters — at the admission gate.  A request ``levels`` classes below
    the top class seen this run is admitted only when predicted to finish
    with ``protection * levels`` of its latency budget to spare (capped at
    ``MAX_PROTECTION``), so marginal low-priority arrivals are shed first
    and the capacity they would have consumed serves the top class.  The
    top class itself, and every request while only one class has been
    seen, admits exactly as :class:`DeadlineAwareAdmission` would.
    """

    name = "priority"

    #: Cap on the protection margin, as a fraction of the request's budget:
    #: even a deeply subordinate class keeps a sliver of admission chance
    #: when the pool is idle and its budget generous.
    MAX_PROTECTION = 0.75

    def __init__(self, slack_ms: float = 0.0, protection: float = 0.25):
        super().__init__(slack_ms=slack_ms)
        self.protection = protection
        self._highest_queued: int | None = None
        self._highest_seen: int | None = None
        #: (request_id, needs_preemption) of the last admit() verdict — the
        #: loop calls preempts() immediately after on unchanged state, so the
        #: prediction is computed once, not twice per arrival.
        self._last_verdict: tuple[int, bool] | None = None

    def reset(self) -> None:
        """Forget the previous run's priority classes (loop calls per run)."""
        self._highest_queued = None
        self._highest_seen = None
        self._last_verdict = None

    def admit(self, request: InferenceRequest, state: "LoopState") -> AdmissionDecision:
        """Shed on predicted miss, labelling below-top-class rejections.

        A request preemption would rescue (see :meth:`preempts`) is admitted
        even though the waiting prediction misses — it will not wait.  A
        rejection is labelled ``low-priority-shed`` only when a strictly
        higher class has been seen; the top class's own overflow is an
        ordinary ``predicted-deadline-miss``.
        """
        if self._highest_seen is None or request.priority > self._highest_seen:
            self._highest_seen = request.priority
        if self._predicted_to_meet(request, state):
            self._last_verdict = (request.request_id, False)
            return AdmissionDecision.admit()
        if self._rescued_by_preemption(request, state):
            self._last_verdict = (request.request_id, True)
            return AdmissionDecision.admit()
        self._last_verdict = (request.request_id, False)
        if request.priority < self._highest_seen:
            return AdmissionDecision.reject("low-priority-shed")
        return AdmissionDecision.reject("predicted-deadline-miss")

    def order_key(self, request: InferenceRequest):
        """Rank by priority (descending), then FIFO within a class."""
        return (-request.priority, request.arrival_ms, request.request_id)

    def _predicted_to_meet(self, request: InferenceRequest, state: "LoopState",
                           skip_wait: bool = False) -> bool:
        """Deadline prediction, tightened by the class-protection margin."""
        if request.deadline_ms is None:
            return True
        predicted = state.predicted_completion_ms(request, immediate=skip_wait)
        margin = self._protection_margin_ms(request)
        return predicted <= request.absolute_deadline_ms + self.slack_ms - margin

    def _protection_margin_ms(self, request: InferenceRequest) -> float:
        """Spare budget a below-top-class request must be predicted to keep.

        Zero for the top class seen so far (and while only one class has
        been seen), ``protection`` of the latency budget per class level
        below the top otherwise, capped at ``MAX_PROTECTION``.
        """
        top = self._highest_seen
        if top is None or request.priority >= top or request.deadline_ms is None:
            return 0.0
        fraction = min(self.protection * (top - request.priority), self.MAX_PROTECTION)
        return fraction * request.deadline_ms

    def preempts(self, request: InferenceRequest, state: "LoopState") -> bool:
        """Expedite a higher-priority arrival when the batching wait costs its SLO.

        Preemption shrinks batches (the forming batch dispatches part-full),
        so it only fires when it actually rescues the important request:
        strictly higher priority than everything queued, predicted to miss
        its deadline if it waits, predicted to meet it if dispatched now.
        The verdict is the one :meth:`admit` just computed for this arrival.
        """
        if self._last_verdict and self._last_verdict[0] == request.request_id:
            return self._last_verdict[1]
        if self._predicted_to_meet(request, state):
            return False  # meets its SLO without preempting anything
        return self._rescued_by_preemption(request, state)

    def _rescued_by_preemption(self, request: InferenceRequest,
                               state: "LoopState") -> bool:
        """Whether immediate dispatch (queue-jump) clears the deadline.

        An empty forming batch counts as preemptable — the request outranks
        "everything" queued vacuously and dispatches alone on arrival, so
        admission stays monotonic in load (queued junk never *improves* a
        request's odds).
        """
        highest = self._highest_queued
        if highest is not None and request.priority <= highest:
            return False
        if request.deadline_ms is None:
            return False
        return self._predicted_to_meet(request, state, skip_wait=True)

    def observe_queue(self, highest_priority: int | None) -> None:
        """Loop callback: the highest priority currently in the forming batch."""
        self._highest_queued = highest_priority


#: Admission-policy registry: name → zero-argument constructor.
ADMISSION_POLICIES: dict[str, Callable[[], AdmissionPolicy]] = {
    AdmitAll.name: AdmitAll,
    DeadlineAwareAdmission.name: DeadlineAwareAdmission,
    PriorityAdmission.name: PriorityAdmission,
}


def get_admission_policy(name: "str | AdmissionPolicy") -> AdmissionPolicy:
    """A fresh admission policy for ``name`` (case/underscore tolerant).

    Accepts an already-built :class:`AdmissionPolicy` unchanged, so configs
    can carry either a name or an instance.  Raises :class:`ValueError`
    listing the registered policies on an unknown name.
    """
    if isinstance(name, AdmissionPolicy):
        return name
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    factory = ADMISSION_POLICIES.get(key)
    if factory is None:
        raise ValueError(
            f"unknown admission policy {name!r}; registered policies: "
            f"{', '.join(sorted(ADMISSION_POLICIES))}"
        )
    return factory()


def list_admission_policies() -> list[str]:
    """Names of all registered admission policies."""
    return sorted(ADMISSION_POLICIES)
