"""Elastic worker pools: grow under backlog, shrink when idle.

A fixed-size fleet wastes silicon between bursts and queues unboundedly
inside them.  The :class:`Autoscaler` closes that gap: the
:class:`~repro.serve.loop.ServingLoop` schedules a scale-check event every
``interval_ms`` of virtual time, and the autoscaler compares the pool's mean
per-worker backlog (how far each worker's horizon runs past *now*) against
its watermarks:

* backlog above ``scale_up_backlog_ms`` → add one worker (up to
  ``max_workers``);
* every worker idle and nothing queued → retire one worker (down to
  ``min_workers``).

One action per check, with an optional ``cooldown_ms`` between actions, so
the pool ramps instead of thrashing.  Every resize is recorded as a
:class:`ScaleEvent` in the :class:`~repro.serve.metrics.ServingReport`.

Bounds come either from an explicit :class:`AutoscaleConfig` (the CLI's
``--autoscale min:max``) or from the fleet declaration itself — a
:class:`~repro.serve.fleet.FleetSpec` with ``min_workers``/``max_workers``
set turns autoscaling on for every service using it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..hardware.device import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..obs.alerts import AlertEvent
    from .loop import LoopState

__all__ = ["AutoscaleConfig", "Autoscaler", "ScaleEvent"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs of the elastic-pool policy."""

    #: The pool never shrinks below this many workers.
    min_workers: int = 1
    #: The pool never grows beyond this many workers.
    max_workers: int = 4
    #: Virtual time between scale checks, in milliseconds.
    interval_ms: float = 5.0
    #: Scale up when the mean per-worker backlog exceeds this, in ms.
    scale_up_backlog_ms: float = 10.0
    #: Minimum virtual time between two scale actions, in milliseconds.
    cooldown_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.min_workers <= 0:
            raise ValueError(f"min_workers must be positive, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})"
            )
        if self.interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {self.interval_ms}")
        if self.scale_up_backlog_ms < 0:
            raise ValueError(
                f"scale_up_backlog_ms must be non-negative, got "
                f"{self.scale_up_backlog_ms}"
            )
        if self.cooldown_ms < 0:
            raise ValueError(
                f"cooldown_ms must be non-negative, got {self.cooldown_ms}"
            )

    @classmethod
    def parse(cls, spec: str, **overrides) -> "AutoscaleConfig":
        """Parse the CLI spelling ``"min:max"`` into a config.

        ``"1:6"`` bounds the pool to 1..6 workers; keyword overrides set the
        remaining knobs.
        """
        parts = spec.strip().split(":")
        if len(parts) != 2:
            raise ValueError(f"autoscale spec must be 'min:max', got {spec!r}")
        try:
            low, high = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"autoscale bounds must be integers, got {spec!r}"
            ) from None
        return cls(min_workers=low, max_workers=high, **overrides)

    @classmethod
    def of(cls, spec: "AutoscaleConfig | str") -> "AutoscaleConfig":
        """Coerce any accepted autoscale spelling into an :class:`AutoscaleConfig`."""
        if isinstance(spec, AutoscaleConfig):
            return spec
        if isinstance(spec, str):
            return cls.parse(spec)
        raise TypeError(
            f"cannot build an AutoscaleConfig from {type(spec).__name__}; "
            "pass an AutoscaleConfig or a 'min:max' string"
        )


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler resize, recorded in the serving report."""

    #: Virtual time of the resize.
    time_ms: float
    #: "up" (worker added) or "down" (worker retired).
    action: str
    #: Why the autoscaler acted (watermark crossed, pool idle, ...).
    reason: str
    #: The worker added or retired.
    worker_id: int
    #: Device preset of that worker.
    device: str
    #: Pool size *after* the resize.
    num_workers: int


class Autoscaler:
    """Backlog-driven elastic sizing of a :class:`~repro.serve.workers.WorkerPool`.

    The declared fleet composition is the anchor: scale-*down* retires
    surplus workers first (then the spawn device, then highest id), and
    scale-*up* revives whichever declared device the pool is missing before
    spawning extra primaries — so a mixed fleet's fast silicon is restored
    after an idle valley instead of drifting to all-primary-device.

    Parameters
    ----------
    config:
        Bounds and watermarks (or a ``"min:max"`` string).
    device:
        Device preset extra workers spawn with once the declared composition
        is whole — the fleet's primary device, chosen by the service.
        Replicas of an already-served type start warm: the pool's plan
        caches are keyed by device, not worker.
    """

    def __init__(self, config: "AutoscaleConfig | str", device: DeviceSpec):
        self.config = AutoscaleConfig.of(config)
        self.device = device
        self._last_action_ms = float("-inf")
        #: Declared composition {device name: count}, snapshotted from the
        #: pool on the first scale check (before any resize can have run).
        self._declared: dict[str, int] | None = None
        self._catalog: dict[str, DeviceSpec] = {}

    def _snapshot_declared(self, workers) -> None:
        if self._declared is not None:
            return
        self._declared = {}
        for worker in workers:
            name = worker.device.name
            self._declared[name] = self._declared.get(name, 0) + 1
            self._catalog.setdefault(name, worker.device)

    def _spawn_device(self, counts: dict[str, int]) -> DeviceSpec:
        """Revive missing declared capacity first; then spawn the primary."""
        for name, declared in self._declared.items():
            if counts.get(name, 0) < declared:
                return self._catalog[name]
        return self.device

    def evaluate(self, state: "LoopState") -> list[ScaleEvent]:
        """Run one scale check against the loop state; return resize events."""
        config = self.config
        now = state.now_ms
        pool = state.pool
        workers = pool.workers
        self._snapshot_declared(workers)
        if now - self._last_action_ms < config.cooldown_ms:
            return []
        backlogs = [max(0.0, worker.busy_until_ms - now) for worker in workers]
        mean_backlog = sum(backlogs) / len(workers)
        counts: dict[str, int] = {}
        for worker in workers:
            counts[worker.device.name] = counts.get(worker.device.name, 0) + 1

        can_grow = len(workers) < config.max_workers
        if mean_backlog > config.scale_up_backlog_ms and can_grow:
            worker = pool.add_worker(self._spawn_device(counts), now_ms=now)
            self._last_action_ms = now
            return [
                ScaleEvent(
                    time_ms=now,
                    action="up",
                    reason=f"mean backlog {mean_backlog:.2f}ms > "
                    f"{config.scale_up_backlog_ms:.2f}ms",
                    worker_id=worker.worker_id,
                    device=worker.device.name,
                    num_workers=len(pool.workers),
                )
            ]

        return self._maybe_scale_down(state, counts, mean_backlog)

    def on_alert(self, state: "LoopState", event: "AlertEvent") -> list[ScaleEvent]:
        """React to a firing alert by adding a worker immediately.

        Burn-rate alerts lead the backlog watermark: the error budget starts
        draining while per-worker backlog can still look acceptable, so a
        firing alert is allowed to grow the pool without waiting for the next
        scale check to cross ``scale_up_backlog_ms``.  Bounds and cooldown
        still apply.
        """
        config = self.config
        now = state.now_ms
        pool = state.pool
        workers = pool.workers
        self._snapshot_declared(workers)
        if now - self._last_action_ms < config.cooldown_ms:
            return []
        if len(workers) >= config.max_workers:
            return []
        counts: dict[str, int] = {}
        for worker in workers:
            counts[worker.device.name] = counts.get(worker.device.name, 0) + 1
        worker = pool.add_worker(self._spawn_device(counts), now_ms=now)
        self._last_action_ms = now
        return [
            ScaleEvent(
                time_ms=now,
                action="up",
                reason=f"alert {event.rule} firing",
                worker_id=worker.worker_id,
                device=worker.device.name,
                num_workers=len(pool.workers),
            )
        ]

    def _maybe_scale_down(
        self, state: "LoopState", counts: dict[str, int], mean_backlog: float
    ) -> list[ScaleEvent]:
        config = self.config
        now = state.now_ms
        pool = state.pool
        workers = pool.workers
        # Zero mean backlog means every worker's horizon cleared; with an
        # empty queue the whole pool is provably idle.
        pool_idle = mean_backlog == 0.0 and state.pending_samples == 0
        if pool_idle and len(workers) > config.min_workers:
            worker = max(
                workers,
                key=lambda w: (
                    counts[w.device.name] > self._declared.get(w.device.name, 0),
                    w.device.name == self.device.name,
                    w.worker_id,
                ),
            )
            pool.remove_worker(worker, now_ms=now)
            self._last_action_ms = now
            return [
                ScaleEvent(
                    time_ms=now,
                    action="down",
                    reason="pool idle and queue empty",
                    worker_id=worker.worker_id,
                    device=worker.device.name,
                    num_workers=len(pool.workers),
                )
            ]
        return []
