"""Dynamic request batching.

Serving traffic arrives one request at a time, but the device is only well
utilised — and the specialised schedules only apply — when requests execute
together.  :class:`DynamicBatcher` implements the classic max-batch/max-wait
policy on the service's virtual clock:

* a batch is closed as **full** when admitting the next request would exceed
  ``max_batch_size`` samples;
* a batch is closed as **timeout** when the oldest queued request has waited
  ``max_wait_ms`` (the latency SLO knob);
* remaining requests are closed as **drain** when the stream ends.

The batcher is deliberately a pure function of the arrival sequence: given the
same requests it always forms the same batches, which keeps serving
experiments reproducible.  Schedule selection for a formed batch lives in
:class:`BatchSizeSelector`, which reuses the cross-evaluation idea of
:mod:`repro.core.specialization`: among the registry's specialised schedules
that can hold the batch, pick the one with the lowest measured latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from ..core.lowering import schedule_latency_ms
from ..core.schedule import Schedule
from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from .registry import ScheduleRegistry
from .request import FormedBatch, InferenceRequest

__all__ = ["BatchPolicy", "DynamicBatcher", "BatchSizeSelector"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic batching policy."""

    #: Maximum samples per formed batch.
    max_batch_size: int = 16
    #: Maximum time the oldest request may wait before the batch is flushed.
    max_wait_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be non-negative, got {self.max_wait_ms}")

    def close_deadline_ms(self, first_arrival_ms: float) -> float:
        """When a batch opened at ``first_arrival_ms`` must be flushed.

        The single home of the max-wait rule: the offline
        :class:`DynamicBatcher` and the online
        :class:`~repro.serve.loop.ServingLoop` both stamp batch-close
        deadlines with it, so the two execution models can never drift.
        """
        return first_arrival_ms + self.max_wait_ms


class DynamicBatcher:
    """Groups a time-ordered request stream into batches under a policy."""

    def __init__(self, policy: BatchPolicy | None = None):
        self.policy = policy or BatchPolicy()

    def form_batches(self, requests: Iterable[InferenceRequest]) -> list[FormedBatch]:
        """Materialised list of :meth:`iter_batches`."""
        return list(self.iter_batches(requests))

    def iter_batches(self, requests: Iterable[InferenceRequest]) -> Iterator[FormedBatch]:
        """Replay the arrival sequence and yield batches in formation order.

        Requests must be sorted by ``arrival_ms`` (the traffic generators
        guarantee this).  A request larger than ``max_batch_size`` forms its
        own batch immediately — the service layer chunks a formed batch to
        the schedule ladder before dispatch (``InferenceService._chunk``).
        """
        policy = self.policy
        pending: list[InferenceRequest] = []
        pending_samples = 0
        deadline = 0.0
        last_arrival = float("-inf")

        def close(formed_ms: float, reason: str) -> FormedBatch:
            nonlocal pending, pending_samples
            batch = FormedBatch(requests=pending, formed_ms=formed_ms, close_reason=reason)
            pending = []
            pending_samples = 0
            return batch

        for request in requests:
            if request.arrival_ms < last_arrival:
                raise ValueError(
                    f"requests must arrive in order: {request.request_id} at "
                    f"{request.arrival_ms}ms after {last_arrival}ms"
                )
            last_arrival = request.arrival_ms

            # Flush any batch whose wait deadline passed before this arrival.
            if pending and request.arrival_ms > deadline:
                yield close(deadline, "timeout")

            if pending and pending_samples + request.num_samples > policy.max_batch_size:
                yield close(request.arrival_ms, "full")

            if not pending:
                deadline = policy.close_deadline_ms(request.arrival_ms)
            pending.append(request)
            pending_samples += request.num_samples

            if pending_samples >= policy.max_batch_size:
                yield close(request.arrival_ms, "full")

        if pending:
            yield close(deadline, "drain")


class BatchSizeSelector:
    """Chooses the batch-size-specialised schedule for a formed batch.

    The registry holds schedules for a ladder of batch sizes (e.g. 1, 2, 4,
    8, 16).  A batch of ``n`` samples is padded up to some rung ``c >= n`` and
    executed with the schedule specialised for ``c``; among all rungs that
    fit, the selector cross-evaluates the candidate schedules exactly as
    :func:`repro.core.specialization.specialize_for_batch_sizes` does and
    picks the lowest-latency one.  Measurements are memoised, so steady-state
    selection is a dictionary lookup.
    """

    def __init__(
        self,
        registry: ScheduleRegistry,
        batch_sizes: Sequence[int],
        profile: KernelProfile = CUDNN_PROFILE,
        measure: Callable[..., float] | None = None,
    ):
        if not batch_sizes:
            raise ValueError("batch_sizes ladder must not be empty")
        if len(set(batch_sizes)) != len(batch_sizes):
            raise ValueError(f"duplicate batch sizes in ladder: {batch_sizes}")
        self.registry = registry
        self.batch_sizes = sorted(batch_sizes)
        self.profile = profile
        #: How candidate latency is measured: a callable
        #: ``(graph, schedule, device, plan=None) -> float`` where ``plan`` is
        #: the engine-lowered plan of the candidate's compiled model.  The
        #: service injects the worker pool's cached measurement so plans are
        #: lowered at most once and simulated once.  Plain
        #: ``(graph, schedule, device)`` callables (the pre-engine contract)
        #: still work; they just lower the schedule themselves.
        self._measure = measure or self._default_measure
        self._measure_accepts_plan = self._accepts_plan(self._measure)
        #: Memoised candidate latency keyed by (model, device, rung).
        self._latency_cache: dict[tuple[str, str, int], float] = {}
        #: Memoised selection keyed by (model, device, batch samples).
        self._choice_cache: dict[tuple[str, str, int], int] = {}

    @property
    def max_batch_size(self) -> int:
        """The largest ladder rung — the biggest batch the service can run."""
        return self.batch_sizes[-1]

    def select(self, model: str, num_samples: int, device: DeviceSpec) -> int:
        """The ladder rung whose specialised schedule should run this batch."""
        if num_samples > self.max_batch_size:
            raise ValueError(
                f"batch of {num_samples} samples exceeds the ladder maximum "
                f"{self.max_batch_size}; chunk it first"
            )
        cache_key = (model, device.name, num_samples)
        if cache_key in self._choice_cache:
            return self._choice_cache[cache_key]

        candidates = [c for c in self.batch_sizes if c >= num_samples]
        best_rung = candidates[0]
        best_latency = float("inf")
        for rung in candidates:
            latency = self._candidate_latency(model, rung, device)
            if latency < best_latency:
                best_rung, best_latency = rung, latency
        self._choice_cache[cache_key] = best_rung
        return best_rung

    def predicted_latency(self, model: str, num_samples: int,
                          device: DeviceSpec) -> float:
        """Predicted execution latency (ms) of a batch on ``device``.

        The latency of the ladder rung :meth:`select` would run the batch at,
        from the memoised cross-evaluation measurements.  This is what the
        device-aware routers rank workers with; calling it for a device with
        no registry entry triggers the cold compile, exactly like dispatching
        to that device would.
        """
        rung = self.select(model, num_samples, device)
        return self._candidate_latency(model, rung, device)

    @staticmethod
    def _accepts_plan(measure: Callable[..., float]) -> bool:
        """Whether the measure callable takes the ``plan=`` keyword."""
        import inspect

        try:
            parameters = inspect.signature(measure).parameters
        except (TypeError, ValueError):
            return False
        return "plan" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )

    def _default_measure(self, graph: Graph, schedule: Schedule, device: DeviceSpec,
                         plan=None) -> float:
        if plan is not None:
            from ..runtime.executor import Executor

            return Executor(device, self.profile).run(plan).latency_ms
        return schedule_latency_ms(graph, schedule, device, self.profile)

    def _candidate_latency(self, model: str, rung: int, device: DeviceSpec) -> float:
        key = (model, device.name, rung)
        if key not in self._latency_cache:
            compiled = self.registry.get_compiled(model, rung, device)
            if self._measure_accepts_plan:
                latency = self._measure(
                    compiled.graph, compiled.schedule, device, plan=compiled.plan
                )
            else:
                latency = self._measure(compiled.graph, compiled.schedule, device)
            self._latency_cache[key] = latency
        return self._latency_cache[key]
