"""Request and batch data types for the serving subsystem.

A request is one inference demand: ``num_samples`` images of one model that
arrived at ``arrival_ms`` on the service's virtual clock.  The dynamic batcher
(:mod:`repro.serve.batcher`) groups requests into :class:`FormedBatch` objects;
the service annotates each request with its timeline as it moves through the
pipeline and exposes the finished record as :class:`RequestRecord`.

Requests may carry a **service-level objective**: ``deadline_ms`` is the
latency budget the client attached (the absolute deadline is
``arrival_ms + deadline_ms``) and ``priority`` ranks requests when the
admission policy is priority-aware (larger is more important).  A request the
admission policy refuses to queue becomes a :class:`RejectedRequest` instead
of a :class:`RequestRecord`.

All times are milliseconds on a single virtual clock that starts at 0 when the
traffic generator emits its first request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["InferenceRequest", "FormedBatch", "RequestRecord", "RejectedRequest"]


@dataclass(frozen=True)
class InferenceRequest:
    """One inference demand entering the service."""

    request_id: int
    model: str
    #: Arrival time on the virtual clock, in milliseconds.
    arrival_ms: float
    #: Number of samples (images) this request carries.  Mixed per-request
    #: sample counts are what make batch-size demand dynamic.
    num_samples: int = 1
    #: Latency budget in milliseconds; the absolute deadline is
    #: ``arrival_ms + deadline_ms``.  ``None`` means the request has no SLO.
    deadline_ms: float | None = None
    #: Priority class for priority-aware admission (larger is more
    #: important); requests default to the single class 0.
    priority: int = 0
    #: Index of the traffic burst this request belongs to (bursty traffic
    #: only; ``None`` for non-bursty arrival processes).
    burst_id: int | None = None

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {self.num_samples}")
        if self.arrival_ms < 0:
            raise ValueError(f"arrival_ms must be non-negative, got {self.arrival_ms}")
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError(
                f"deadline_ms must be non-negative, got {self.deadline_ms}"
            )

    @property
    def absolute_deadline_ms(self) -> float:
        """The deadline on the virtual clock (``inf`` when there is no SLO)."""
        if self.deadline_ms is None:
            return float("inf")
        return self.arrival_ms + self.deadline_ms


@dataclass
class FormedBatch:
    """A group of requests the batcher decided to execute together."""

    requests: list[InferenceRequest] = field(default_factory=list)
    #: Virtual time at which the batcher closed this batch.
    formed_ms: float = 0.0
    #: Why the batch was closed: "full", "timeout", "drain" or "priority"
    #: (a priority-preemptive admission policy flushed it early).
    close_reason: str = "drain"

    @property
    def num_samples(self) -> int:
        """Total samples across the batched requests."""
        return sum(request.num_samples for request in self.requests)

    @property
    def model(self) -> str:
        """The model every request in the batch targets."""
        return self.requests[0].model

    @property
    def oldest_arrival_ms(self) -> float:
        """Arrival time of the longest-waiting request in the batch."""
        return min(request.arrival_ms for request in self.requests)

    def __len__(self) -> int:
        return len(self.requests)


@dataclass
class RequestRecord:
    """A finished request with its full timeline.

    ``queue_delay_ms`` covers batching *and* waiting for a free worker;
    ``latency_ms`` is the end-to-end number a client would observe.
    """

    request: InferenceRequest
    #: When the batch containing this request was closed by the batcher.
    batched_ms: float
    #: When the batch started executing on a worker.
    dispatch_ms: float
    #: When the batch finished executing.
    completion_ms: float
    #: Batch size (samples) the schedule was specialised for.
    executed_batch_size: int
    #: Worker that executed the batch.
    worker_id: int
    #: Device preset of the executing worker ("" for legacy records built
    #: before pools were device-aware).
    device: str = ""

    @property
    def latency_ms(self) -> float:
        """End-to-end latency a client observes: arrival → completion."""
        return self.completion_ms - self.request.arrival_ms

    @property
    def queue_delay_ms(self) -> float:
        """Time spent waiting (batching + worker queue): arrival → dispatch."""
        return self.dispatch_ms - self.request.arrival_ms

    @property
    def batching_delay_ms(self) -> float:
        """Time spent waiting for the batch to form: arrival → batch close."""
        return self.batched_ms - self.request.arrival_ms

    @property
    def service_time_ms(self) -> float:
        """Execution time of the batch on the device: dispatch → completion."""
        return self.completion_ms - self.dispatch_ms

    @property
    def deadline_met(self) -> bool:
        """Whether the request completed within its SLO (no SLO counts as met)."""
        return self.completion_ms <= self.request.absolute_deadline_ms


@dataclass(frozen=True)
class RejectedRequest:
    """A request the admission policy refused to queue."""

    request: InferenceRequest
    #: Virtual time of the rejection (the request's arrival).
    rejected_ms: float
    #: Policy-specific reason string, e.g. "predicted-deadline-miss".
    reason: str
