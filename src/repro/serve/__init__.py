"""repro.serve — batch-aware inference serving on the simulated runtime.

The paper shows that inter-operator schedules specialised per batch size beat
one-size-fits-all execution; this package turns that observation into an
end-to-end inference service:

* :mod:`repro.serve.registry` — :class:`ScheduleRegistry`, a disk-backed store
  of :class:`repro.engine.CompiledModel` artifacts keyed by
  ``(model, batch_size, device, variant)``; misses compile through one
  :class:`repro.engine.Engine` per device, warm starts load the persisted
  artifacts with zero scheduler searches;
* :mod:`repro.serve.loop` — :class:`ServingLoop`, the discrete-event core:
  one heap of arrivals, batch-close timeouts, worker completions and scale
  checks drives everything on the virtual clock;
* :mod:`repro.serve.batcher` — :class:`DynamicBatcher` (max-batch/max-wait
  request grouping) and :class:`BatchSizeSelector` (cross-evaluating schedule
  choice, reusing the Table-3 specialisation logic);
* :mod:`repro.serve.admission` — pluggable :class:`AdmissionPolicy` gating
  arrivals: admit-all, deadline-aware shedding, priority-preemptive queueing;
* :mod:`repro.serve.autoscale` — :class:`Autoscaler` growing/shrinking the
  pool between :class:`AutoscaleConfig` bounds, every resize recorded as a
  :class:`ScaleEvent`;
* :mod:`repro.serve.workers` — :class:`WorkerPool` executing compiled plans
  across simulated devices, each worker with its own device identity;
* :mod:`repro.serve.fleet` — heterogeneous fleets: :class:`FleetSpec`
  (``"k80:2,v100:4"`` worker groups, optionally elastic) and pluggable
  :class:`Router` policies (device-aware earliest-finish plus
  earliest-start / round-robin / least-loaded baselines);
* :mod:`repro.serve.traffic` — reproducible Poisson / bursty / uniform
  synthetic traffic, with per-burst labels and optional SLO/priority mixes;
* :mod:`repro.serve.service` — :class:`InferenceService`, the composition
  root, and :class:`ServingConfig`;
* :mod:`repro.serve.metrics` — per-request records folded into a
  :class:`ServingReport` (throughput, p50/p95/p99 latency, queue delay,
  per-device-group utilisation, SLO attainment);
* :mod:`repro.serve.experiment` — table-producing harnesses for the
  ``ios-bench serve`` subcommand and the benchmark suite.

Quick start::

    from repro.serve import (
        BatchPolicy, InferenceService, ServingConfig, TrafficConfig,
        TrafficGenerator,
    )

    config = ServingConfig(model="inception_v3", fleet="k80:2,v100:4",
                           registry_root="schedules/")
    service = InferenceService(config)
    service.warmup()    # one compile fan-out per device type; then artifacts
    requests = TrafficGenerator(TrafficConfig(num_requests=500)).generate()
    print(service.run(requests).describe())

SLO-aware serving (deadlines, load shedding, elastic pools)::

    config = ServingConfig(model="inception_v3", devices=("v100",),
                           admission="deadline", autoscale="1:4")
    traffic = TrafficConfig(pattern="bursty", slo_ms=50.0, num_requests=500)
    report = InferenceService(config).run(TrafficGenerator(traffic).generate())
    print(report.slo_summary.describe())
"""

from .admission import (
    ADMISSION_POLICIES,
    AdmissionDecision,
    AdmissionPolicy,
    AdmitAll,
    DeadlineAwareAdmission,
    PriorityAdmission,
    get_admission_policy,
    list_admission_policies,
)
from .autoscale import AutoscaleConfig, Autoscaler, ScaleEvent
from .batcher import BatchPolicy, BatchSizeSelector, DynamicBatcher
from .experiment import (
    run_fleet_comparison,
    run_serving,
    run_serving_comparison,
    run_slo_comparison,
)
from .fleet import (
    ROUTERS,
    EarliestFinishRouter,
    EarliestStartRouter,
    FleetSpec,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    get_router,
    list_routers,
)
from .loop import LoopResult, LoopState, ServingLoop
from .metrics import (
    BurstSlo,
    LatencySummary,
    PriorityClassSlo,
    ServingReport,
    SloSummary,
    build_report,
    build_slo_summary,
    percentile,
)
from .registry import (
    RegistryError,
    RegistryKey,
    RegistryStats,
    ScheduleRegistry,
    model_dirname,
    reset_legacy_warnings,
)
from .request import (
    FormedBatch,
    InferenceRequest,
    RejectedRequest,
    RequestRecord,
)
from .service import InferenceService, ServingConfig
from .traffic import (
    TrafficConfig,
    TrafficGenerator,
    bursty_arrival_bursts,
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from .workers import DispatchResult, Worker, WorkerPool

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmitAll",
    "AutoscaleConfig",
    "Autoscaler",
    "BatchPolicy",
    "BatchSizeSelector",
    "BurstSlo",
    "DeadlineAwareAdmission",
    "DispatchResult",
    "DynamicBatcher",
    "EarliestFinishRouter",
    "EarliestStartRouter",
    "FleetSpec",
    "FormedBatch",
    "InferenceRequest",
    "InferenceService",
    "LatencySummary",
    "LeastLoadedRouter",
    "LoopResult",
    "LoopState",
    "PriorityAdmission",
    "PriorityClassSlo",
    "ROUTERS",
    "RegistryError",
    "RegistryKey",
    "RegistryStats",
    "RejectedRequest",
    "RequestRecord",
    "RoundRobinRouter",
    "Router",
    "ScaleEvent",
    "ScheduleRegistry",
    "reset_legacy_warnings",
    "ServingConfig",
    "ServingLoop",
    "ServingReport",
    "SloSummary",
    "TrafficConfig",
    "TrafficGenerator",
    "Worker",
    "WorkerPool",
    "build_report",
    "build_slo_summary",
    "bursty_arrival_bursts",
    "bursty_arrivals",
    "get_admission_policy",
    "get_router",
    "list_admission_policies",
    "list_routers",
    "model_dirname",
    "percentile",
    "poisson_arrivals",
    "run_fleet_comparison",
    "run_serving",
    "run_serving_comparison",
    "run_slo_comparison",
    "uniform_arrivals",
]
