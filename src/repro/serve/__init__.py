"""repro.serve — batch-aware inference serving on the simulated runtime.

The paper shows that inter-operator schedules specialised per batch size beat
one-size-fits-all execution; this package turns that observation into an
end-to-end inference service:

* :mod:`repro.serve.registry` — :class:`ScheduleRegistry`, a disk-backed store
  of :class:`repro.engine.CompiledModel` artifacts keyed by
  ``(model, batch_size, device, variant)``; misses compile through one
  :class:`repro.engine.Engine` per device, warm starts load the persisted
  artifacts with zero scheduler searches;
* :mod:`repro.serve.batcher` — :class:`DynamicBatcher` (max-batch/max-wait
  request grouping) and :class:`BatchSizeSelector` (cross-evaluating schedule
  choice, reusing the Table-3 specialisation logic);
* :mod:`repro.serve.workers` — :class:`WorkerPool` executing compiled plans
  across simulated devices, each worker with its own device identity;
* :mod:`repro.serve.fleet` — heterogeneous fleets: :class:`FleetSpec`
  (``"k80:2,v100:4"`` worker groups) and pluggable :class:`Router` policies
  (device-aware earliest-finish plus earliest-start / round-robin /
  least-loaded baselines);
* :mod:`repro.serve.traffic` — reproducible Poisson / bursty / uniform
  synthetic traffic;
* :mod:`repro.serve.service` — :class:`InferenceService`, the composition
  root, and :class:`ServingConfig`;
* :mod:`repro.serve.metrics` — per-request records folded into a
  :class:`ServingReport` (throughput, p50/p95/p99 latency, queue delay,
  per-device-group utilisation);
* :mod:`repro.serve.experiment` — table-producing harnesses for the
  ``ios-bench serve`` subcommand and the benchmark suite.

Quick start::

    from repro.serve import (
        BatchPolicy, InferenceService, ServingConfig, TrafficConfig,
        TrafficGenerator,
    )

    config = ServingConfig(model="inception_v3", fleet="k80:2,v100:4",
                           registry_root="schedules/")
    service = InferenceService(config)
    service.warmup()    # one compile fan-out per device type; then artifacts
    requests = TrafficGenerator(TrafficConfig(num_requests=500)).generate()
    print(service.run(requests).describe())
"""

from .batcher import BatchPolicy, BatchSizeSelector, DynamicBatcher
from .experiment import run_fleet_comparison, run_serving, run_serving_comparison
from .fleet import (
    ROUTERS,
    EarliestFinishRouter,
    EarliestStartRouter,
    FleetSpec,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    get_router,
    list_routers,
)
from .metrics import LatencySummary, ServingReport, build_report, percentile
from .registry import RegistryError, RegistryKey, RegistryStats, ScheduleRegistry
from .request import FormedBatch, InferenceRequest, RequestRecord
from .service import InferenceService, ServingConfig
from .traffic import (
    TrafficConfig,
    TrafficGenerator,
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from .workers import DispatchResult, Worker, WorkerPool

__all__ = [
    "BatchPolicy",
    "BatchSizeSelector",
    "DynamicBatcher",
    "DispatchResult",
    "EarliestFinishRouter",
    "EarliestStartRouter",
    "FleetSpec",
    "FormedBatch",
    "InferenceRequest",
    "InferenceService",
    "LatencySummary",
    "LeastLoadedRouter",
    "ROUTERS",
    "RegistryError",
    "RegistryKey",
    "RegistryStats",
    "RequestRecord",
    "RoundRobinRouter",
    "Router",
    "ScheduleRegistry",
    "ServingConfig",
    "ServingReport",
    "TrafficConfig",
    "TrafficGenerator",
    "Worker",
    "WorkerPool",
    "build_report",
    "bursty_arrivals",
    "get_router",
    "list_routers",
    "percentile",
    "poisson_arrivals",
    "run_fleet_comparison",
    "run_serving",
    "run_serving_comparison",
    "uniform_arrivals",
]
