"""repro.serve — batch-aware inference serving on the simulated runtime.

The paper shows that inter-operator schedules specialised per batch size beat
one-size-fits-all execution; this package turns that observation into an
end-to-end inference service:

* :mod:`repro.serve.registry` — :class:`ScheduleRegistry`, a disk-backed store
  of :class:`repro.engine.CompiledModel` artifacts keyed by
  ``(model, batch_size, device, variant)``; misses compile through one
  :class:`repro.engine.Engine` per device, warm starts load the persisted
  artifacts with zero scheduler searches;
* :mod:`repro.serve.batcher` — :class:`DynamicBatcher` (max-batch/max-wait
  request grouping) and :class:`BatchSizeSelector` (cross-evaluating schedule
  choice, reusing the Table-3 specialisation logic);
* :mod:`repro.serve.workers` — :class:`WorkerPool` dispatching lowered plans
  across simulated devices;
* :mod:`repro.serve.traffic` — reproducible Poisson / bursty / uniform
  synthetic traffic;
* :mod:`repro.serve.service` — :class:`InferenceService`, the composition
  root, and :class:`ServingConfig`;
* :mod:`repro.serve.metrics` — per-request records folded into a
  :class:`ServingReport` (throughput, p50/p95/p99 latency, queue delay);
* :mod:`repro.serve.experiment` — table-producing harnesses for the
  ``ios-bench serve`` subcommand and the benchmark suite.

Quick start::

    from repro.serve import (
        BatchPolicy, InferenceService, ServingConfig, TrafficConfig,
        TrafficGenerator,
    )

    config = ServingConfig(model="inception_v3", devices=("v100", "v100"),
                           registry_root="schedules/")
    service = InferenceService(config)
    service.warmup()    # Engine.compile once; later runs load the artifacts
    requests = TrafficGenerator(TrafficConfig(num_requests=500)).generate()
    print(service.run(requests).describe())
"""

from .batcher import BatchPolicy, BatchSizeSelector, DynamicBatcher
from .experiment import run_serving, run_serving_comparison
from .metrics import LatencySummary, ServingReport, build_report, percentile
from .registry import RegistryError, RegistryKey, RegistryStats, ScheduleRegistry
from .request import FormedBatch, InferenceRequest, RequestRecord
from .service import InferenceService, ServingConfig
from .traffic import (
    TrafficConfig,
    TrafficGenerator,
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from .workers import DispatchResult, Worker, WorkerPool

__all__ = [
    "BatchPolicy",
    "BatchSizeSelector",
    "DynamicBatcher",
    "DispatchResult",
    "FormedBatch",
    "InferenceRequest",
    "InferenceService",
    "LatencySummary",
    "RegistryError",
    "RegistryKey",
    "RegistryStats",
    "RequestRecord",
    "ScheduleRegistry",
    "ServingConfig",
    "ServingReport",
    "TrafficConfig",
    "TrafficGenerator",
    "Worker",
    "WorkerPool",
    "build_report",
    "bursty_arrivals",
    "percentile",
    "poisson_arrivals",
    "run_serving",
    "run_serving_comparison",
    "uniform_arrivals",
]
