"""Worker pool: executing compiled plans across simulated devices.

Each worker wraps one simulated :class:`~repro.hardware.device.DeviceSpec`
with an :class:`~repro.runtime.executor.Executor` and a ``busy_until_ms``
horizon on the shared virtual clock.  Workers carry their *own* device
identity, so a pool may freely mix device types (see
:class:`~repro.serve.fleet.FleetSpec`); plan and latency caches are keyed by
the worker's device, never by a pool-wide one.

*Which* worker a batch goes to is the router's decision
(:mod:`repro.serve.fleet`) — the pool only executes: :meth:`WorkerPool.dispatch`
runs an execution plan on the chosen worker, advances its horizon, and
returns the batch timeline.  :meth:`WorkerPool.next_worker` remains as the
legacy earliest-start rule that homogeneous pools used before routing became
pluggable.

Execution plans come from :class:`~repro.engine.CompiledModel` artifacts via
the schedule registry; the pool memoises them per
``(model, batch size, device, origin)`` so a steady-state dispatch is one
simulated execution — no lowering, no scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.lowering import lower_schedule
from ..core.schedule import Schedule
from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from ..obs.metrics import MetricsRegistry
from ..runtime.executor import ExecutionPlan, ExecutionResult, Executor

__all__ = ["Worker", "DispatchResult", "WorkerPool", "earliest_start_worker"]


def earliest_start_worker(workers: Sequence["Worker"], ready_ms: float) -> "Worker":
    """The worker that can *start* a batch ready at ``ready_ms`` first.

    Ties break by worker id for determinism.  This is the single home of the
    earliest-start tiebreak: :meth:`WorkerPool.next_worker` and the
    ``earliest-start`` router both delegate here.
    """
    return min(
        workers,
        key=lambda worker: (max(worker.busy_until_ms, ready_ms), worker.worker_id),
    )


@dataclass
class Worker:
    """One simulated device plus its execution horizon."""

    worker_id: int
    device: DeviceSpec
    executor: Executor
    busy_until_ms: float = 0.0
    batches_executed: int = 0
    samples_executed: int = 0
    busy_ms: float = 0.0
    #: When the worker joined the pool (0 for the initial fleet; the
    #: autoscaler stamps scale-up spawns with the virtual clock).
    spawned_ms: float = 0.0
    #: When the worker left the pool (``None`` while it is active).
    retired_ms: float | None = None

    def utilization(self, makespan_ms: float) -> float:
        """Fraction of its *lifetime* this worker spent executing batches.

        A worker's lifetime runs from its spawn to its retirement (or to
        ``makespan_ms`` while active) — on a fixed pool that is the whole
        run, exactly as before, while an autoscaler-spawned worker is judged
        only over the slice of the run it existed for.
        """
        end_ms = makespan_ms if self.retired_ms is None else self.retired_ms
        lifetime_ms = end_ms - self.spawned_ms
        if lifetime_ms <= 0:
            return 0.0
        return min(1.0, self.busy_ms / lifetime_ms)


@dataclass
class DispatchResult:
    """Timeline of one batch execution on a worker."""

    worker_id: int
    device: str
    #: When the batch became ready for dispatch (batcher close time).
    ready_ms: float
    #: When the batch started executing (>= ready_ms and >= worker horizon).
    start_ms: float
    #: When the batch finished executing.
    end_ms: float
    #: Simulated device latency of the plan itself.
    execution_ms: float

    @property
    def wait_for_worker_ms(self) -> float:
        """How long the batch sat ready before its worker could start it."""
        return self.start_ms - self.ready_ms


class WorkerPool:
    """A pool of simulated devices executing lowered plans.

    Parameters
    ----------
    devices:
        One entry per worker.  Repeat a spec to model replicas of the same
        GPU; mix specs for a heterogeneous pool.
    profile:
        Kernel-library profile shared by all executors.
    """

    def __init__(self, devices: Sequence[DeviceSpec], profile: KernelProfile = CUDNN_PROFILE):
        if not devices:
            raise ValueError("worker pool needs at least one device")
        self.profile = profile
        self.workers = [
            Worker(worker_id=index, device=device, executor=Executor(device, profile))
            for index, device in enumerate(devices)
        ]
        #: Workers removed by the autoscaler; they keep their executed-batch
        #: accounting and still appear in :meth:`summary`.
        self.retired: list[Worker] = []
        #: Worker ids are never reused, so records stay unambiguous even
        #: after the pool shrank and grew again.
        self._next_worker_id = len(self.workers)
        #: Lowered-plan cache keyed by (graph name, batch size, device name,
        #: schedule origin) — lowering validates and rebuilds merged operators,
        #: so it is worth skipping on the request path.
        self._plan_cache: dict[tuple[str, int, str, str], ExecutionPlan] = {}
        #: Full simulated execution per cache key (simulation is
        #: deterministic, so one run stands for every dispatch of the plan).
        #: Keeping the whole :class:`ExecutionResult` — not just its latency —
        #: lets tracing replay the plan's stage/kernel events as child spans
        #: of each dispatch.
        self._result_cache: dict[tuple[str, int, str, str], ExecutionResult] = {}

    def __len__(self) -> int:
        return len(self.workers)

    @property
    def devices(self) -> list[DeviceSpec]:
        """One :class:`DeviceSpec` per worker, in worker-id order."""
        return [worker.device for worker in self.workers]

    @property
    def device_types(self) -> list[DeviceSpec]:
        """The distinct device specs in the pool, in first-worker order.

        A homogeneous pool has exactly one entry; warmup and per-device
        compile fan-out iterate this instead of every replica.
        """
        seen: dict[str, DeviceSpec] = {}
        for worker in self.workers:
            seen.setdefault(worker.device.name, worker.device)
        return list(seen.values())

    # ---------------------------------------------------------------- dispatch
    def next_worker(self, ready_ms: float) -> Worker:
        """The earliest-start worker for a batch ready at ``ready_ms``.

        The legacy homogeneous dispatch rule, kept for direct pool users;
        the service routes through :mod:`repro.serve.fleet` instead.
        """
        return earliest_start_worker(self.workers, ready_ms)

    def execution_result(self, graph: Graph, schedule: Schedule, worker: Worker,
                         plan: ExecutionPlan | None = None) -> ExecutionResult:
        """The memoised simulated execution of the plan on the worker's device.

        ``plan`` optionally seeds the pool's plan cache with an already
        lowered plan (e.g. from a :class:`~repro.engine.CompiledModel`), so
        the pool never re-lowers what the engine already produced.  The
        returned result is shared — treat it as immutable.  Its timeline is
        plan-local (starts at 0); dispatch tracing re-bases the stage/kernel
        events at each dispatch's start time.
        """
        key = self._plan_key(graph, schedule, worker)
        if key not in self._result_cache:
            if plan is not None:
                self._plan_cache.setdefault(key, plan)
            plan = self._plan(key, graph, schedule)
            self._result_cache[key] = worker.executor.run(plan)
        return self._result_cache[key]

    def plan_latency_ms(self, graph: Graph, schedule: Schedule, worker: Worker,
                        plan: ExecutionPlan | None = None) -> float:
        """Deterministic execution latency of the plan on the worker's device.

        Convenience over :meth:`execution_result` (same cache, same seeding).
        """
        return self.execution_result(graph, schedule, worker, plan=plan).latency_ms

    def plan_latency_for(self, graph: Graph, schedule: Schedule, device: DeviceSpec,
                         plan: ExecutionPlan | None = None) -> float:
        """Plan latency on whichever worker runs ``device`` (they are identical).

        Lets schedule selection share the pool's lowered-plan/latency caches
        instead of lowering and simulating the same plan a second time; an
        engine-lowered ``plan`` seeds the cache (see :meth:`plan_latency_ms`).
        """
        for worker in self.workers:
            if worker.device.name == device.name:
                return self.plan_latency_ms(graph, schedule, worker, plan=plan)
        raise ValueError(f"no worker in the pool runs device {device.name!r}")

    def dispatch(
        self,
        graph: Graph,
        schedule: Schedule,
        worker: Worker,
        ready_ms: float,
        num_samples: int | None = None,
        plan: ExecutionPlan | None = None,
    ) -> DispatchResult:
        """Execute ``schedule`` for ``graph`` on ``worker``, advancing its horizon.

        ``num_samples`` is the real demand carried by the batch; it defaults to
        the graph's (possibly padded) batch size.  ``plan`` optionally seeds
        the plan cache with an engine-lowered plan (see
        :meth:`plan_latency_ms`).
        """
        execution_ms = self.plan_latency_ms(graph, schedule, worker, plan=plan)
        start_ms = max(worker.busy_until_ms, ready_ms)
        end_ms = start_ms + execution_ms
        worker.busy_until_ms = end_ms
        worker.batches_executed += 1
        worker.samples_executed += graph.batch_size if num_samples is None else num_samples
        worker.busy_ms += execution_ms
        return DispatchResult(
            worker_id=worker.worker_id,
            device=worker.device.name,
            ready_ms=ready_ms,
            start_ms=start_ms,
            end_ms=end_ms,
            execution_ms=execution_ms,
        )

    # ----------------------------------------------------------------- helpers
    def _plan_key(self, graph: Graph, schedule: Schedule, worker: Worker) -> tuple[str, int, str, str]:
        return (graph.name, graph.batch_size, worker.device.name, schedule.origin)

    def _plan(self, key: tuple[str, int, str, str], graph: Graph, schedule: Schedule) -> ExecutionPlan:
        if key not in self._plan_cache:
            self._plan_cache[key] = lower_schedule(graph, schedule)
        return self._plan_cache[key]

    # ------------------------------------------------------------- elasticity
    def add_worker(self, device: DeviceSpec, now_ms: float = 0.0) -> Worker:
        """Grow the pool by one worker of ``device`` (autoscaler scale-up).

        The new worker shares the pool's plan/latency caches (they are keyed
        by device name, not worker), so a replica of an already-served device
        type starts warm.
        """
        worker = Worker(
            worker_id=self._next_worker_id,
            device=device,
            executor=Executor(device, self.profile),
            busy_until_ms=now_ms,
            spawned_ms=now_ms,
        )
        self._next_worker_id += 1
        self.workers.append(worker)
        return worker

    def remove_worker(self, worker: Worker, now_ms: float = 0.0) -> None:
        """Retire ``worker`` from the pool (autoscaler scale-down).

        Only an idle worker may retire — the loop never removes one with a
        batch still executing — and the last worker can never leave.  The
        retired worker keeps its accounting and stays in :meth:`summary`.
        """
        if worker not in self.workers:
            raise ValueError(f"worker {worker.worker_id} is not in the pool")
        if len(self.workers) == 1:
            raise ValueError("cannot retire the last worker of the pool")
        if worker.busy_until_ms > now_ms:
            raise ValueError(
                f"worker {worker.worker_id} is busy until "
                f"{worker.busy_until_ms}ms; cannot retire it at {now_ms}ms"
            )
        self.workers.remove(worker)
        worker.retired_ms = now_ms
        self.retired.append(worker)

    def all_workers(self) -> list[Worker]:
        """Active plus retired workers, in worker-id order (accounting view)."""
        return sorted(self.workers + self.retired, key=lambda w: w.worker_id)

    def makespan_ms(self) -> float:
        """Latest completion over all workers (retired ones included)."""
        return max(worker.busy_until_ms for worker in self.all_workers())

    #: Metric families holding the per-worker busy/lifetime series — the
    #: single source of truth both utilisation summaries compute from.
    BUSY_METRIC = "serve.worker.busy_ms"
    LIFETIME_METRIC = "serve.worker.lifetime_ms"

    def export_utilization(self, metrics: MetricsRegistry) -> None:
        """Write the per-worker busy/lifetime series into ``metrics``.

        One gauge series per worker (labelled by worker id and device), busy
        milliseconds and lifetime milliseconds (spawn to retirement, or to
        the makespan while active).  :meth:`summary` and
        :meth:`group_summary` both read *this* series back — per-worker and
        per-group utilisation can no longer drift apart, because there is
        only one busy/lifetime bookkeeping to disagree with.
        """
        makespan = self.makespan_ms()
        busy = metrics.gauge(self.BUSY_METRIC, "milliseconds each worker spent executing")
        lifetime = metrics.gauge(self.LIFETIME_METRIC, "milliseconds each worker existed")
        for worker in self.all_workers():
            end_ms = makespan if worker.retired_ms is None else worker.retired_ms
            labels = {"worker": str(worker.worker_id), "device": worker.device.name}
            busy.set(worker.busy_ms, **labels)
            lifetime.set(max(0.0, end_ms - worker.spawned_ms), **labels)

    @staticmethod
    def _utilization(busy_ms: float, lifetime_ms: float) -> float:
        """The one busy/lifetime ratio (capped at 1) every summary uses."""
        return min(1.0, busy_ms / lifetime_ms) if lifetime_ms > 0 else 0.0

    def summary(self, metrics: MetricsRegistry | None = None) -> list[dict[str, object]]:
        """Per-worker accounting rows for reports (retired workers included).

        Utilisation comes from the :meth:`export_utilization` series; pass
        the run's registry as ``metrics`` to land the series there (the
        service does), or omit it for a throwaway one.
        """
        if metrics is None:
            metrics = MetricsRegistry()
        self.export_utilization(metrics)
        busy = metrics.gauge(self.BUSY_METRIC)
        lifetime = metrics.gauge(self.LIFETIME_METRIC)
        rows: list[dict[str, object]] = []
        for worker in self.all_workers():
            labels = {"worker": str(worker.worker_id), "device": worker.device.name}
            busy_ms = busy.value(**labels)
            rows.append(
                {
                    "worker": worker.worker_id,
                    "device": worker.device.name,
                    "batches": worker.batches_executed,
                    "samples": worker.samples_executed,
                    "busy_ms": busy_ms,
                    "utilization": self._utilization(busy_ms, lifetime.value(**labels)),
                }
            )
        return rows

    def group_summary(self, metrics: MetricsRegistry | None = None) -> list[dict[str, object]]:
        """Per-device-group accounting rows (one row per device type).

        ``utilization`` is the group's busy time divided by the group's total
        available time, so a group of idle replicas dilutes its own
        utilisation, not another group's — and both numbers are sums over the
        *same* per-worker series :meth:`summary` reads
        (:meth:`export_utilization`), so the group ratio is exactly the
        lifetime-weighted aggregate of the worker ratios.  On a fixed pool a
        worker's lifetime is the whole makespan as before, while a worker the
        autoscaler ran for only a slice of the run contributes only that
        slice to the denominator.  ``workers`` counts every worker that ever
        served in the group (pool churn included).
        """
        if metrics is None:
            metrics = MetricsRegistry()
        self.export_utilization(metrics)
        busy = metrics.gauge(self.BUSY_METRIC)
        lifetime = metrics.gauge(self.LIFETIME_METRIC)
        groups: dict[str, dict[str, object]] = {}
        for worker in self.all_workers():
            row = groups.setdefault(
                worker.device.name,
                {"device": worker.device.name, "workers": 0, "batches": 0,
                 "samples": 0, "busy_ms": 0.0, "lifetime_ms": 0.0},
            )
            labels = {"worker": str(worker.worker_id), "device": worker.device.name}
            row["workers"] += 1
            row["batches"] += worker.batches_executed
            row["samples"] += worker.samples_executed
            row["busy_ms"] += busy.value(**labels)
            row["lifetime_ms"] += lifetime.value(**labels)
        for row in groups.values():
            row["utilization"] = self._utilization(row["busy_ms"], row.pop("lifetime_ms"))
        return list(groups.values())
