"""Heterogeneous fleets: mixed-device worker pools and routing policies.

The paper specialises a schedule per ``(model, batch size, device)``; a
production deployment rarely owns a single device generation.  This module
makes the *pool itself* heterogeneous:

* :class:`FleetSpec` declares worker groups — how many workers of each device
  preset the fleet runs (``FleetSpec.parse("k80:2,v100:4")``);
* :class:`Router` is the pluggable dispatch policy choosing a worker for each
  formed batch.  The default :class:`EarliestFinishRouter` minimises the
  *predicted completion time* — queueing delay **plus** the device's predicted
  execution latency from its registry-compiled model — so fast devices absorb
  more traffic without starving the slow ones.  :class:`EarliestStartRouter`
  (the old homogeneous tiebreak), :class:`RoundRobinRouter` and
  :class:`LeastLoadedRouter` are the baselines it is measured against.

A router never measures a device itself: it receives a lazy ``estimate``
callback from the service that resolves to the predicted execution latency of
the batch on a worker's device.  Only routers that need the estimate call it,
so e.g. round-robin routing never forces a compile for a device type that has
not been dispatched to yet.

Example::

    from repro.serve import FleetSpec, ServingConfig

    fleet = FleetSpec.parse("k80:2,v100:4")
    config = ServingConfig(model="squeezenet", fleet=fleet,
                           router="earliest-finish")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..hardware.device import get_device
from .workers import Worker, earliest_start_worker

__all__ = [
    "FleetSpec",
    "Router",
    "EarliestFinishRouter",
    "EarliestStartRouter",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "ROUTERS",
    "get_router",
    "list_routers",
]


@dataclass(frozen=True)
class FleetSpec:
    """Declaration of a worker fleet as ordered (device, count) groups.

    Parameters
    ----------
    groups:
        Ordered ``(device_name, count)`` pairs.  Device names are
        canonicalised through :func:`repro.hardware.get_device` (aliases like
        ``"2080ti"`` resolve to their preset name); counts must be positive.
        Repeating a device name (directly or through an alias) is rejected —
        a duplicate is almost always a typo'd count, and silently merging
        would hide it.
    min_workers, max_workers:
        Optional elastic bounds.  When set, a service built on this fleet
        autoscales between them (see :mod:`repro.serve.autoscale`): ``groups``
        declares the *initial* pool, the bounds declare how far the
        autoscaler may shrink or grow it.  ``None`` (the default) keeps the
        pool fixed at its declared size.
    """

    groups: tuple[tuple[str, int], ...]
    min_workers: int | None = None
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a fleet needs at least one worker group")
        canonicalised: dict[str, int] = {}
        for name, count in self.groups:
            if not isinstance(count, int) or isinstance(count, bool) or count <= 0:
                raise ValueError(
                    f"worker count for device {name!r} must be a positive "
                    f"integer, got {count!r}"
                )
            canonical = get_device(name).name  # raises KeyError on unknown names
            if canonical in canonicalised:
                raise ValueError(
                    f"duplicate device group {canonical!r} (declared again as "
                    f"{name!r}); declare each device once with its total count"
                )
            canonicalised[canonical] = count
        object.__setattr__(self, "groups", tuple(canonicalised.items()))
        if (self.min_workers is None) != (self.max_workers is None):
            raise ValueError(
                "set min_workers and max_workers together (or neither)"
            )
        if self.min_workers is not None:
            if self.min_workers <= 0:
                raise ValueError(
                    f"min_workers must be positive, got {self.min_workers}"
                )
            if not self.min_workers <= self.num_workers <= self.max_workers:
                raise ValueError(
                    f"declared fleet size {self.num_workers} must lie within "
                    f"[min_workers={self.min_workers}, "
                    f"max_workers={self.max_workers}]"
                )

    # ------------------------------------------------------------ constructors
    @classmethod
    def parse(cls, spec: str) -> "FleetSpec":
        """Parse the CLI spelling ``"k80:2,v100:4"`` into a fleet.

        A bare device name means one worker (``"v100"`` == ``"v100:1"``).
        Raises :class:`ValueError` on malformed entries and duplicate device
        groups, :class:`KeyError` (listing the available presets) on unknown
        device names; every message quotes the full ``spec`` verbatim so the
        offending CLI argument is identifiable in the error alone.
        """
        groups: list[tuple[str, int]] = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, sep, count = entry.partition(":")
            name, count = name.strip(), count.strip()
            if not name or (sep and not count):
                raise ValueError(f"malformed fleet entry {entry!r} in {spec!r}")
            if count:
                try:
                    workers = int(count)
                except ValueError:
                    raise ValueError(
                        f"worker count in fleet entry {entry!r} must be an "
                        f"integer, got {count!r} in {spec!r}"
                    ) from None
            else:
                workers = 1
            groups.append((name, workers))
        if not groups:
            raise ValueError(f"empty fleet spec {spec!r}")
        try:
            return cls(groups=tuple(groups))
        except KeyError as error:
            # get_device raises without the spec; re-raise so the offending
            # CLI argument survives into the message.
            detail = error.args[0] if error.args else error
            raise KeyError(f"{detail} (in fleet spec {spec!r})") from None
        except ValueError as error:
            raise ValueError(f"{error} (in fleet spec {spec!r})") from None

    @classmethod
    def homogeneous(cls, device: str, count: int) -> "FleetSpec":
        """A fleet of ``count`` identical workers (the pre-fleet pool shape)."""
        return cls(groups=((device, count),))

    def bounded(self, min_workers: int, max_workers: int) -> "FleetSpec":
        """A copy of this fleet with elastic ``[min, max]`` worker bounds."""
        return FleetSpec(
            groups=self.groups, min_workers=min_workers, max_workers=max_workers
        )

    @classmethod
    def of(cls, spec: "FleetSpec | str | Mapping[str, int]") -> "FleetSpec":
        """Coerce any accepted fleet spelling into a :class:`FleetSpec`."""
        if isinstance(spec, FleetSpec):
            return spec
        if isinstance(spec, str):
            return cls.parse(spec)
        if isinstance(spec, Mapping):
            return cls(groups=tuple(spec.items()))
        raise TypeError(
            f"cannot build a FleetSpec from {type(spec).__name__}; "
            "pass a FleetSpec, a 'dev:count,...' string, or a {device: count} mapping"
        )

    # -------------------------------------------------------------- inspection
    @property
    def num_workers(self) -> int:
        """Total worker count over all groups."""
        return sum(count for _, count in self.groups)

    @property
    def is_homogeneous(self) -> bool:
        """Whether the fleet runs a single device type."""
        return len(self.groups) == 1

    def device_names(self) -> tuple[str, ...]:
        """One entry per worker, expanded in group order (pool layout)."""
        return tuple(
            name for name, count in self.groups for _ in range(count)
        )

    def device_types(self) -> tuple[str, ...]:
        """The distinct device presets in the fleet, in group order."""
        return tuple(name for name, _ in self.groups)

    def primary_device(self) -> str:
        """The first declared device preset — what the autoscaler spawns."""
        return self.groups[0][0]

    @property
    def is_elastic(self) -> bool:
        """Whether this fleet declares autoscale bounds."""
        return self.min_workers is not None

    def describe(self) -> str:
        """The canonical ``"k80:2,v100:4"`` spelling of this fleet."""
        return ",".join(f"{name}:{count}" for name, count in self.groups)

    def __str__(self) -> str:
        return self.describe()


# --------------------------------------------------------------------------- #
# Routers                                                                      #
# --------------------------------------------------------------------------- #

#: Lazy predicted execution latency (ms) of the batch on a worker's device.
LatencyEstimate = Callable[[Worker], float]


class Router:
    """Dispatch policy: choose the worker a formed batch executes on.

    Subclasses implement :meth:`pick`.  ``estimate(worker)`` returns the
    predicted execution latency of the batch on that worker's device (derived
    from the registry-compiled model for the batch's ladder rung); routers
    that ignore it never trigger a compile for an untouched device type.
    Routers may keep state (round-robin does) — the service owns one router
    instance per run, so state never leaks between services.
    """

    #: Registry name; subclasses override.
    name = "router"

    def pick(self, workers: Sequence[Worker], ready_ms: float,
             estimate: LatencyEstimate) -> Worker:
        """Return the worker that should execute a batch ready at ``ready_ms``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class EarliestFinishRouter(Router):
    """Minimise predicted completion: start time + device execution latency.

    The device-aware policy: a fast device with a short queue wins over an
    idle slow one whenever its predicted finish is earlier, so mixed fleets
    put their fast silicon to work without letting slow workers idle under
    load.  Ties break by worker id for determinism.
    """

    name = "earliest-finish"

    def pick(self, workers: Sequence[Worker], ready_ms: float,
             estimate: LatencyEstimate) -> Worker:
        """The worker with the earliest ``start + estimate(worker)``."""
        # One estimate per device type, not per worker: replicas are identical.
        per_device: dict[str, float] = {}

        def finish(worker: Worker) -> float:
            latency = per_device.get(worker.device.name)
            if latency is None:
                latency = per_device[worker.device.name] = estimate(worker)
            return max(worker.busy_until_ms, ready_ms) + latency

        return min(workers, key=lambda worker: (finish(worker), worker.worker_id))


class EarliestStartRouter(Router):
    """Pick the worker that can *start* earliest (the legacy homogeneous rule).

    Ignores device speed entirely — correct when every worker runs the same
    device, a baseline to beat when they do not.
    """

    name = "earliest-start"

    def pick(self, workers: Sequence[Worker], ready_ms: float,
             estimate: LatencyEstimate) -> Worker:
        """The worker whose horizon clears first (``estimate`` unused)."""
        return earliest_start_worker(workers, ready_ms)


class RoundRobinRouter(Router):
    """Cycle through the workers in id order, ignoring load and speed."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, workers: Sequence[Worker], ready_ms: float,
             estimate: LatencyEstimate) -> Worker:
        """The next worker in the rotation (``estimate`` unused)."""
        worker = workers[self._next % len(workers)]
        self._next += 1
        return worker


class LeastLoadedRouter(Router):
    """Pick the worker with the least total work assigned so far (``busy_ms``).

    Balances cumulative load rather than instantaneous queue depth; on a
    mixed fleet it systematically under-uses fast devices (they finish their
    share early), which is exactly why it is a useful baseline.
    """

    name = "least-loaded"

    def pick(self, workers: Sequence[Worker], ready_ms: float,
             estimate: LatencyEstimate) -> Worker:
        """The worker with the smallest ``busy_ms`` (``estimate`` unused)."""
        return min(workers, key=lambda worker: (worker.busy_ms, worker.worker_id))


#: Router registry: name → zero-argument constructor.
ROUTERS: dict[str, Callable[[], Router]] = {
    EarliestFinishRouter.name: EarliestFinishRouter,
    EarliestStartRouter.name: EarliestStartRouter,
    RoundRobinRouter.name: RoundRobinRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
}


def get_router(name: "str | Router") -> Router:
    """A fresh router instance for ``name`` (case/underscore tolerant).

    Accepts an already-built :class:`Router` unchanged, so configs can carry
    either a name or an instance.  Raises :class:`ValueError` listing the
    registered policies on an unknown name.
    """
    if isinstance(name, Router):
        return name
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    factory = ROUTERS.get(key)
    if factory is None:
        raise ValueError(
            f"unknown router {name!r}; registered routers: {', '.join(sorted(ROUTERS))}"
        )
    return factory()


def list_routers() -> list[str]:
    """Names of all registered routing policies."""
    return sorted(ROUTERS)
