"""The inference service: batcher → router → registry → worker pool.

:class:`InferenceService` is the composition root of the serving subsystem.
One call to :meth:`InferenceService.run` replays a request stream through the
full pipeline on the virtual clock:

1. the :class:`~repro.serve.batcher.DynamicBatcher` groups arrivals under the
   max-batch/max-wait policy;
2. the :class:`~repro.serve.fleet.Router` picks the worker each formed batch
   executes on — by default :class:`~repro.serve.fleet.EarliestFinishRouter`,
   which ranks workers by queueing delay *plus* the device's predicted
   execution latency, so mixed-device fleets route device-aware;
3. the :class:`~repro.serve.batcher.BatchSizeSelector` picks the best
   batch-size-specialised :class:`~repro.engine.CompiledModel` for the chosen
   worker's device from the :class:`~repro.serve.registry.ScheduleRegistry`
   (compiling through :class:`repro.engine.Engine` on a cold miss, loading
   the persisted artifact — zero scheduler searches — on a warm one);
4. the :class:`~repro.serve.workers.WorkerPool` executes the compiled model's
   execution plan on the simulated device and the per-request timeline is
   recorded.

The result is a :class:`~repro.serve.metrics.ServingReport`, including
per-device-group utilisation and latency when the fleet is heterogeneous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.dp_scheduler import normalize_variant
from ..hardware.device import get_devices
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from .batcher import BatchPolicy, BatchSizeSelector, DynamicBatcher
from .fleet import FleetSpec, Router, get_router
from .metrics import ServingReport, build_report
from .registry import ScheduleRegistry
from .request import FormedBatch, InferenceRequest, RequestRecord
from .workers import Worker, WorkerPool

__all__ = ["ServingConfig", "InferenceService"]


#: Default ladder of batch sizes the registry specialises schedules for.
DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of one inference service instance.

    The worker pool may be declared either way:

    * ``devices`` — one worker per entry (repeat a name for replicas, mix
      names for a heterogeneous pool), the original spelling;
    * ``fleet`` — a :class:`~repro.serve.fleet.FleetSpec`, a
      ``"k80:2,v100:4"`` string, or a ``{device: count}`` mapping.  When
      given, it takes precedence and ``devices`` is rewritten to the fleet's
      expanded worker list, so downstream code sees one consistent view.
    """

    model: str = "inception_v3"
    #: One worker per entry; repeat a name for replicas, mix names for a
    #: heterogeneous pool.  Overwritten by ``fleet`` when that is set.
    devices: tuple[str, ...] = ("v100",)
    #: Optional fleet declaration (FleetSpec | "dev:count,..." | mapping).
    fleet: "FleetSpec | str | None" = None
    #: Routing policy dispatching formed batches to workers: any name in
    #: :func:`repro.serve.fleet.list_routers`, or a pre-built
    #: :class:`~repro.serve.fleet.Router` instance (used as-is — note that
    #: services sharing one config then share its state).
    router: "str | Router" = "earliest-finish"
    #: Batch-size ladder the registry specialises schedules for.
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES
    policy: BatchPolicy = BatchPolicy()
    #: IOS variant compiled on registry misses.
    variant: str = "ios-both"
    #: Directory for persisted schedules; ``None`` keeps the registry in memory.
    registry_root: str | None = None
    #: Run the :mod:`repro.passes` rewrite pipeline on served graphs; schedule
    #: keys fingerprint the rewritten graph, so flipping this never reuses
    #: schedules searched for the other form.
    passes: bool = False

    def __post_init__(self) -> None:
        # Normalise the fleet first: it is the authoritative pool declaration
        # when present (frozen dataclass, hence object.__setattr__).
        if self.fleet is not None:
            fleet = FleetSpec.of(self.fleet)
            object.__setattr__(self, "fleet", fleet)
            object.__setattr__(self, "devices", fleet.device_names())
        if not self.devices:
            raise ValueError("serving needs at least one device")
        if not self.batch_sizes:
            raise ValueError("batch_sizes ladder must not be empty")
        # Resolve router names eagerly so a typo fails at config time, not
        # mid-run; the service builds the instance.  A Router instance is
        # kept as-is (get_router passes it through).
        if not isinstance(self.router, Router):
            object.__setattr__(self, "router", get_router(self.router).name)
        # Canonicalise drifted variant spellings so the config, the registry
        # key and the CLI can never disagree.
        object.__setattr__(self, "variant", normalize_variant(self.variant))

    @classmethod
    def unbatched(cls, **overrides) -> "ServingConfig":
        """A no-batching baseline: every request executes by itself."""
        overrides.setdefault("policy", BatchPolicy(max_batch_size=1, max_wait_ms=0.0))
        return cls(**overrides)


class InferenceService:
    """End-to-end serving loop over the simulated runtime.

    Parameters
    ----------
    config:
        The service declaration (model, fleet/devices, ladder, policy, ...).
    registry:
        Share a :class:`~repro.serve.registry.ScheduleRegistry` across
        services (a long-lived deployment); defaults to a fresh one rooted at
        ``config.registry_root``.
    profile:
        Kernel-library profile used by the pool's executors and on compiles.
    router:
        Inject a pre-built :class:`~repro.serve.fleet.Router` instance
        (custom policies, tests); defaults to ``config.router`` by name.
    """

    def __init__(
        self,
        config: ServingConfig,
        registry: ScheduleRegistry | None = None,
        profile: KernelProfile = CUDNN_PROFILE,
        router: Router | None = None,
    ):
        self.config = config
        self.profile = profile
        self.registry = registry or ScheduleRegistry(
            root=config.registry_root, profile=profile, variant=config.variant,
            passes=config.passes,
        )
        self.pool = WorkerPool(get_devices(config.devices), profile=profile)
        self.router = router if router is not None else get_router(config.router)
        self.batcher = DynamicBatcher(config.policy)
        self.selector = BatchSizeSelector(
            self.registry, config.batch_sizes, profile=profile,
            measure=self.pool.plan_latency_for,
        )

    # ------------------------------------------------------------------ warmup
    def warmup(self) -> None:
        """Resolve every (ladder rung × device type) schedule before traffic.

        One :class:`~repro.engine.CompiledModel` per ladder rung per *device
        type* — replicas share their group's artifacts, so a ``k80:2,v100:4``
        fleet warms two compile fan-outs, not six.  On a cold registry this
        performs the scheduler searches up front; on a warm one it is pure
        artifact loading.  Serving without warmup is also fine — misses are
        compiled lazily on the first dispatch that needs them.
        """
        for device in self.pool.device_types:
            self.registry.warmup(self.config.model, self.config.batch_sizes, device)

    # --------------------------------------------------------------------- run
    def run(self, requests: Sequence[InferenceRequest]) -> ServingReport:
        """Serve ``requests`` and report per-request latency plus throughput."""
        if not requests:
            raise ValueError("cannot serve an empty request list")
        for request in requests:
            if request.model != self.config.model:
                raise ValueError(
                    f"request {request.request_id} is for model {request.model!r}; "
                    f"this service serves {self.config.model!r}"
                )
            if request.num_samples > self.selector.max_batch_size:
                raise ValueError(
                    f"request {request.request_id} carries {request.num_samples} "
                    f"samples but the largest specialised batch size is "
                    f"{self.selector.max_batch_size}"
                )
        ordered = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))

        records: list[RequestRecord] = []
        batch_size_counts: dict[int, int] = {}
        num_executions = 0
        for batch in self.batcher.iter_batches(ordered):
            for chunk in self._chunk(batch):
                num_executions += 1
                self._execute_chunk(batch, chunk, records, batch_size_counts)

        return build_report(
            records=records,
            num_batches=num_executions,
            batch_size_counts=batch_size_counts,
            registry_stats=self.registry.stats,
            worker_summary=self.pool.summary(),
            group_summary=self.pool.group_summary(),
            router=self.router.name,
        )

    # ----------------------------------------------------------------- helpers
    def _chunk(self, batch: FormedBatch) -> list[list[InferenceRequest]]:
        """Split a formed batch so each chunk fits the ladder maximum.

        The batcher may form a batch larger than the biggest specialised
        schedule (a single oversized request, or a policy whose
        ``max_batch_size`` exceeds the ladder).  Requests are packed
        first-come-first-served; a request never spans two executions.
        """
        limit = self.selector.max_batch_size
        chunks: list[list[InferenceRequest]] = []
        current: list[InferenceRequest] = []
        current_samples = 0
        for request in batch.requests:
            if current and current_samples + request.num_samples > limit:
                chunks.append(current)
                current, current_samples = [], 0
            current.append(request)
            current_samples += request.num_samples
        if current:
            chunks.append(current)
        return chunks

    def _estimate_for(self, num_samples: int) -> Callable[[Worker], float]:
        """Lazy per-worker latency estimate the router ranks candidates with.

        Resolves to the predicted execution latency of an ``num_samples``
        batch on the worker's device.  Estimating a device type with no
        registry entry yet triggers its cold compile — the same fan-out a
        dispatch would cause, just moved to routing time.
        """
        def estimate(worker: Worker) -> float:
            return self.selector.predicted_latency(
                self.config.model, num_samples, worker.device
            )

        return estimate

    def _execute_chunk(
        self,
        batch: FormedBatch,
        chunk: list[InferenceRequest],
        records: list[RequestRecord],
        batch_size_counts: dict[int, int],
    ) -> None:
        num_samples = sum(request.num_samples for request in chunk)
        worker = self.router.pick(
            self.pool.workers, batch.formed_ms, self._estimate_for(num_samples)
        )
        rung = self.selector.select(self.config.model, num_samples, worker.device)
        compiled = self.registry.get_compiled(self.config.model, rung, worker.device)
        dispatch = self.pool.dispatch(
            compiled.graph, compiled.schedule, worker,
            ready_ms=batch.formed_ms, num_samples=num_samples, plan=compiled.plan,
        )
        batch_size_counts[rung] = batch_size_counts.get(rung, 0) + 1
        for request in chunk:
            records.append(
                RequestRecord(
                    request=request,
                    batched_ms=batch.formed_ms,
                    dispatch_ms=dispatch.start_ms,
                    completion_ms=dispatch.end_ms,
                    executed_batch_size=rung,
                    worker_id=dispatch.worker_id,
                    device=dispatch.device,
                )
            )
