"""The inference service: admission → batcher → router → registry → worker pool.

:class:`InferenceService` is the composition root of the serving subsystem.
One call to :meth:`InferenceService.run` replays a request stream through the
full pipeline on the virtual clock, driven by the discrete-event
:class:`~repro.serve.loop.ServingLoop`:

1. the :class:`~repro.serve.admission.AdmissionPolicy` gates every arrival —
   admit-all by default, deadline-aware or priority-preemptive shedding when
   requests carry SLOs;
2. the loop forms batches under the max-batch/max-wait policy of
   :class:`~repro.serve.batcher.BatchPolicy` (exactly the batches the offline
   :class:`~repro.serve.batcher.DynamicBatcher` would form);
3. the :class:`~repro.serve.fleet.Router` picks the worker each formed batch
   executes on — by default :class:`~repro.serve.fleet.EarliestFinishRouter`,
   which ranks workers by queueing delay *plus* the device's predicted
   execution latency, so mixed-device fleets route device-aware;
4. the :class:`~repro.serve.batcher.BatchSizeSelector` picks the best
   batch-size-specialised :class:`~repro.engine.CompiledModel` for the chosen
   worker's device from the :class:`~repro.serve.registry.ScheduleRegistry`
   (compiling through :class:`repro.engine.Engine` on a cold miss, loading
   the persisted artifact — zero scheduler searches — on a warm one);
5. the :class:`~repro.serve.workers.WorkerPool` executes the compiled model's
   execution plan on the simulated device and the per-request timeline is
   recorded; an optional :class:`~repro.serve.autoscale.Autoscaler` grows and
   shrinks the pool as the loop's scale-check events fire.

The result is a :class:`~repro.serve.metrics.ServingReport`, including
per-device-group utilisation and latency when the fleet is heterogeneous,
and an :class:`~repro.serve.metrics.SloSummary` plus scale events when the
run is SLO-aware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.dp_scheduler import normalize_variant
from ..hardware.device import get_device, get_devices
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..obs.alerts import AlertManager, AlertRule
from ..obs.metrics import MetricsRegistry
from ..obs.timeseries import TimeSeriesRegistry, WatchRenderer
from ..obs.trace import NULL_TRACER, Tracer
from .admission import AdmissionPolicy, get_admission_policy
from .autoscale import AutoscaleConfig, Autoscaler
from .batcher import BatchPolicy, BatchSizeSelector
from .fleet import FleetSpec, Router, get_router
from .loop import ServingLoop
from .metrics import ServingReport, build_report
from .registry import ScheduleRegistry
from .request import InferenceRequest
from .workers import WorkerPool

__all__ = ["ServingConfig", "InferenceService"]


#: Default ladder of batch sizes the registry specialises schedules for.
DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of one inference service instance.

    The worker pool may be declared either way:

    * ``devices`` — one worker per entry (repeat a name for replicas, mix
      names for a heterogeneous pool), the original spelling;
    * ``fleet`` — a :class:`~repro.serve.fleet.FleetSpec`, a
      ``"k80:2,v100:4"`` string, or a ``{device: count}`` mapping.  When
      given, it takes precedence and ``devices`` is rewritten to the fleet's
      expanded worker list, so downstream code sees one consistent view.
    """

    model: str = "inception_v3"
    #: One worker per entry; repeat a name for replicas, mix names for a
    #: heterogeneous pool.  Overwritten by ``fleet`` when that is set.
    devices: tuple[str, ...] = ("v100",)
    #: Optional fleet declaration (FleetSpec | "dev:count,..." | mapping).
    fleet: "FleetSpec | str | None" = None
    #: Routing policy dispatching formed batches to workers: any name in
    #: :func:`repro.serve.fleet.list_routers`, or a pre-built
    #: :class:`~repro.serve.fleet.Router` instance (used as-is — note that
    #: services sharing one config then share its state).
    router: "str | Router" = "earliest-finish"
    #: Batch-size ladder the registry specialises schedules for.
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES
    policy: BatchPolicy = BatchPolicy()
    #: IOS variant compiled on registry misses.
    variant: str = "ios-both"
    #: Directory for persisted schedules; ``None`` keeps the registry in memory.
    registry_root: str | None = None
    #: Run the :mod:`repro.passes` rewrite pipeline on served graphs; schedule
    #: keys fingerprint the rewritten graph, so flipping this never reuses
    #: schedules searched for the other form.
    passes: bool = False
    #: Admission policy gating arrivals: any name in
    #: :func:`repro.serve.admission.list_admission_policies`, or a pre-built
    #: :class:`~repro.serve.admission.AdmissionPolicy` instance (used as-is).
    admission: "str | AdmissionPolicy" = "admit-all"
    #: Elastic pool bounds: an :class:`~repro.serve.autoscale.AutoscaleConfig`,
    #: a ``"min:max"`` string, or ``None`` for a fixed-size pool.  A ``fleet``
    #: declaring ``min_workers``/``max_workers`` enables autoscaling too.
    autoscale: "AutoscaleConfig | str | None" = None

    def __post_init__(self) -> None:
        # Normalise the fleet first: it is the authoritative pool declaration
        # when present (frozen dataclass, hence object.__setattr__).
        if self.fleet is not None:
            fleet = FleetSpec.of(self.fleet)
            object.__setattr__(self, "fleet", fleet)
            object.__setattr__(self, "devices", fleet.device_names())
            if fleet.is_elastic and self.autoscale is None:
                object.__setattr__(
                    self,
                    "autoscale",
                    AutoscaleConfig(
                        min_workers=fleet.min_workers,
                        max_workers=fleet.max_workers,
                    ),
                )
        if not self.devices:
            raise ValueError("serving needs at least one device")
        if not self.batch_sizes:
            raise ValueError("batch_sizes ladder must not be empty")
        # Resolve router names eagerly so a typo fails at config time, not
        # mid-run; the service builds the instance.  A Router instance is
        # kept as-is (get_router passes it through).
        if not isinstance(self.router, Router):
            object.__setattr__(self, "router", get_router(self.router).name)
        # The admission policy resolves the same way as the router.
        if not isinstance(self.admission, AdmissionPolicy):
            object.__setattr__(
                self, "admission", get_admission_policy(self.admission).name
            )
        if self.autoscale is not None:
            autoscale = AutoscaleConfig.of(self.autoscale)
            object.__setattr__(self, "autoscale", autoscale)
            # Same contract FleetSpec enforces for elastic fleets: the
            # declared pool is the starting point inside the bounds, never
            # already outside them.
            if not autoscale.min_workers <= len(self.devices) <= autoscale.max_workers:
                raise ValueError(
                    f"declared pool size {len(self.devices)} must lie within "
                    f"the autoscale bounds [{autoscale.min_workers}, "
                    f"{autoscale.max_workers}]"
                )
        # Canonicalise drifted variant spellings so the config, the registry
        # key and the CLI can never disagree.
        object.__setattr__(self, "variant", normalize_variant(self.variant))

    @classmethod
    def unbatched(cls, **overrides) -> "ServingConfig":
        """A no-batching baseline: every request executes by itself."""
        overrides.setdefault("policy", BatchPolicy(max_batch_size=1, max_wait_ms=0.0))
        return cls(**overrides)


class InferenceService:
    """End-to-end serving loop over the simulated runtime.

    Parameters
    ----------
    config:
        The service declaration (model, fleet/devices, ladder, policy, ...).
    registry:
        Share a :class:`~repro.serve.registry.ScheduleRegistry` across
        services (a long-lived deployment); defaults to a fresh one rooted at
        ``config.registry_root``.
    profile:
        Kernel-library profile used by the pool's executors and on compiles.
    router:
        Inject a pre-built :class:`~repro.serve.fleet.Router` instance
        (custom policies, tests); defaults to ``config.router`` by name.
    admission:
        Inject a pre-built :class:`~repro.serve.admission.AdmissionPolicy`
        instance; defaults to ``config.admission`` by name.
    tracer:
        Optional :class:`~repro.obs.Tracer`; the service threads it through
        the loop (request lifecycles, batch/worker activity) *and* the
        registry's compile engines (compile-stage spans), so one trace spans
        compile and serving.  The tracer takes over an injected shared
        registry's engines for as long as this service uses them.  Reports
        stay byte-identical whether tracing is on or off.
    metrics:
        Inject the loop's registry.  Pass a
        :class:`~repro.obs.TimeSeriesRegistry` for windowed live metrics;
        requesting ``alerts`` or ``watch`` builds one automatically
        (``window_ms`` wide) when this is not already windowed.
    alerts:
        Optional :class:`~repro.obs.AlertManager` or rule list, evaluated on
        every window close; events land in the report's ``alerts`` section.
    watch:
        Optional :class:`~repro.obs.WatchRenderer` (or ``True`` for the
        default stderr renderer) printing one dashboard line per window.
    window_ms:
        Window width used when the service builds its own windowed registry.
    """

    def __init__(
        self,
        config: ServingConfig,
        registry: ScheduleRegistry | None = None,
        profile: KernelProfile = CUDNN_PROFILE,
        router: Router | None = None,
        admission: AdmissionPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        alerts: "AlertManager | Sequence[AlertRule] | None" = None,
        watch: "WatchRenderer | bool | None" = None,
        window_ms: float = 50.0,
    ):
        self.config = config
        self.profile = profile
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry or ScheduleRegistry(
            root=config.registry_root, profile=profile, variant=config.variant,
            passes=config.passes,
        )
        if tracer is not None:
            self.registry.tracer = self.tracer
        self.pool = WorkerPool(get_devices(config.devices), profile=profile)
        self.router = router if router is not None else get_router(config.router)
        self.admission = (
            admission if admission is not None
            else get_admission_policy(config.admission)
        )
        self.autoscaler = (
            Autoscaler(config.autoscale, get_device(self._scale_device()))
            if config.autoscale is not None else None
        )
        self.selector = BatchSizeSelector(
            self.registry, config.batch_sizes, profile=profile,
            measure=self.pool.plan_latency_for,
        )
        if watch is True:
            watch = WatchRenderer()
        elif watch is False:
            watch = None
        # Alerts and the watch dashboard read windowed series; upgrade the
        # registry to a windowed one when the caller didn't bring their own.
        if (alerts is not None or watch is not None) and not isinstance(
            metrics, TimeSeriesRegistry
        ):
            metrics = TimeSeriesRegistry(window_ms=window_ms)
        self.loop = ServingLoop(
            model=config.model,
            policy=config.policy,
            pool=self.pool,
            router=self.router,
            selector=self.selector,
            registry=self.registry,
            admission=self.admission,
            autoscaler=self.autoscaler,
            tracer=self.tracer,
            metrics=metrics,
            alerts=alerts,
            watch=watch,
        )

    def _scale_device(self) -> str:
        """Device preset the autoscaler spawns: the fleet's primary device."""
        if self.config.fleet is not None:
            return self.config.fleet.primary_device()
        return self.config.devices[0]

    # ------------------------------------------------------------------ warmup
    def warmup(self) -> None:
        """Resolve every (ladder rung × device type) schedule before traffic.

        One :class:`~repro.engine.CompiledModel` per ladder rung per *device
        type* — replicas share their group's artifacts, so a ``k80:2,v100:4``
        fleet warms two compile fan-outs, not six.  On a cold registry this
        performs the scheduler searches up front; on a warm one it is pure
        artifact loading.  Serving without warmup is also fine — misses are
        compiled lazily on the first dispatch that needs them.
        """
        for device in self.pool.device_types:
            self.registry.warmup(self.config.model, self.config.batch_sizes, device)

    # --------------------------------------------------------------------- run
    def run(self, requests: Sequence[InferenceRequest]) -> ServingReport:
        """Serve ``requests`` and report per-request latency plus throughput."""
        if not requests:
            raise ValueError("cannot serve an empty request list")
        for request in requests:
            if request.model != self.config.model:
                raise ValueError(
                    f"request {request.request_id} is for model {request.model!r}; "
                    f"this service serves {self.config.model!r}"
                )
            if request.num_samples > self.selector.max_batch_size:
                raise ValueError(
                    f"request {request.request_id} carries {request.num_samples} "
                    f"samples but the largest specialised batch size is "
                    f"{self.selector.max_batch_size}"
                )
        ordered = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))

        outcome = self.loop.run(ordered)
        # Both summaries read the per-worker busy/lifetime series the loop
        # exported into the run's registry — one bookkeeping, two views.
        return build_report(
            records=outcome.records,
            num_batches=outcome.num_executions,
            batch_size_counts=outcome.batch_size_counts,
            registry_stats=self.registry.stats,
            worker_summary=self.pool.summary(metrics=outcome.metrics),
            group_summary=self.pool.group_summary(metrics=outcome.metrics),
            router=self.router.name,
            admission=self.admission.name,
            rejected=outcome.rejected,
            scale_events=outcome.scale_events,
            alerts=outcome.alerts,
            metrics=outcome.metrics,
        )
