"""Persistent compiled-model registry.

The IOS search is far too expensive to run on the request path (seconds per
network), while the artifacts it produces are small JSON documents.  The
registry bridges the two: misses are compiled through one
:class:`repro.engine.Engine` per device and the resulting
:class:`~repro.engine.CompiledModel` — graph, schedule, provenance
fingerprints, compile stats — is persisted to disk keyed by
``(model, batch_size, device, variant)``, loaded lazily, and rebuilt on a
warm start with **zero** scheduler searches (loading re-lowers the schedule;
it never re-searches).

A warm registry turns serving start-up into pure artifact loads: the second
run of any serving experiment performs **zero** scheduler searches (see
:class:`RegistryStats`, which the end-to-end tests assert on).

Layout on disk::

    <root>/<model>/<device>__<variant>__bs<batch_size>__<fingerprint>.json

where ``<model>`` is the registry key's model string passed through
:func:`model_dirname` (model-file paths like
``examples/transformer_block.json`` collapse to one directory level) and
``<fingerprint>`` is the canonical structural fingerprint
(:func:`repro.ir.graph_fingerprint`) of the exact graph the schedule was
searched for.  The fingerprint is part of the key: a schedule compiled for a
pass-optimised graph can never be served for the raw graph (or vice versa),
and entries persisted before a model definition changed simply miss instead of
silently replaying stale stages.  Legacy fingerprint-less files (the pre-
fingerprint layout) are treated as misses with a warning.

Each file is a full :meth:`CompiledModel.to_dict` artifact.  Files written by
older versions (bare ``Schedule.to_dict()`` documents) still load: the
registry falls back to the schedule form and lowers it against the served
graph.
"""

from __future__ import annotations

import json
import re
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from ..core.cost_model import SimulatedCostModel
from ..core.dp_scheduler import IOSScheduler, SchedulerConfig, normalize_variant
from ..core.schedule import Schedule
from ..engine import CompiledModel, Engine
from ..engine.compiled import ARTIFACT_VERSION
from ..hardware.device import DeviceSpec, get_device
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.fingerprint import graph_fingerprint
from ..ir.graph import Graph
from ..frontend import load
from ..obs.trace import NULL_TRACER, Tracer

__all__ = ["RegistryKey", "RegistryStats", "RegistryError", "ScheduleRegistry",
           "model_dirname", "reset_legacy_warnings"]

#: Legacy entries already warned about, shared across registry instances.  A
#: serving fleet builds one registry per worker over the same root; warning
#: once per file *per process* (not per instance, and certainly not per
#: lookup) keeps the log readable while still surfacing the stale file.
_WARNED_LEGACY_PATHS: set[Path] = set()


def reset_legacy_warnings() -> None:
    """Forget which legacy entries have already been warned about.

    Test helper: lets a fresh test observe the warning again without
    spawning a new process.
    """
    _WARNED_LEGACY_PATHS.clear()


def model_dirname(model: str) -> str:
    """Filesystem-safe directory name for a model source string.

    ``model`` may be a zoo name *or* a model-file path (the registry's
    default ``graph_builder`` is :func:`repro.frontend.load`, which accepts
    both).  A path such as ``examples/transformer_block.json`` must not turn
    the single ``<root>/<model>/`` directory level into a nested tree — or
    escape the root entirely via ``..`` — so every run of characters outside
    ``[A-Za-z0-9._-]`` collapses to one ``_`` and leading/trailing dots are
    stripped.  Zoo names are already safe and pass through unchanged.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", model).strip("._")
    return safe or "model"


@dataclass(frozen=True, order=True)
class RegistryKey:
    """Identity of one specialised schedule.

    ``fingerprint`` is the structural fingerprint of the graph the schedule
    belongs to; an empty string marks a legacy (pre-fingerprint) entry, which
    the registry never serves.
    """

    model: str
    batch_size: int
    device: str
    variant: str = "ios-both"
    fingerprint: str = ""

    def filename(self) -> str:
        """The on-disk artifact name: ``device__variant__bsN__fingerprint.json``."""
        stem = f"{self.device}__{self.variant}__bs{self.batch_size}"
        if self.fingerprint:
            stem += f"__{self.fingerprint}"
        return f"{stem}.json"

    @classmethod
    def from_path(cls, model: str, path: Path) -> "RegistryKey":
        """Parse a persisted :meth:`filename` back into a key (or raise)."""
        parts = path.stem.split("__")
        if len(parts) == 3:
            device, variant, batch = parts
            fingerprint = ""
        elif len(parts) == 4:
            device, variant, batch, fingerprint = parts
        else:
            raise ValueError(f"malformed registry filename: {path.name}")
        if not batch.startswith("bs"):
            raise ValueError(f"malformed registry filename: {path.name}")
        return cls(model=model, batch_size=int(batch[2:]), device=device,
                   variant=variant, fingerprint=fingerprint)


class RegistryError(RuntimeError):
    """Raised when a persisted registry entry cannot be used."""


@dataclass
class RegistryStats:
    """Where schedule lookups were satisfied.

    ``searches`` counts actual IOS scheduler runs — the expensive event the
    registry exists to avoid.  A warm second run must report ``searches == 0``.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    searches: int = 0
    corrupt_entries: int = 0
    legacy_entries: int = 0

    @property
    def lookups(self) -> int:
        """Total resolved lookups, however they were satisfied."""
        return self.memory_hits + self.disk_hits + self.searches

    def as_dict(self) -> dict[str, int]:
        """All counters as one flat dict (reports, CSV rows)."""
        return {
            "lookups": self.lookups,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "searches": self.searches,
            "corrupt_entries": self.corrupt_entries,
            "legacy_entries": self.legacy_entries,
        }


def _default_scheduler(device: DeviceSpec, profile: KernelProfile,
                       variant: str) -> IOSScheduler:
    return IOSScheduler(SimulatedCostModel(device, profile), SchedulerConfig.variant(variant))


class ScheduleRegistry:
    """Disk-backed cache of batch-size/device-specialised compiled models.

    Parameters
    ----------
    root:
        Directory for persisted artifacts.  ``None`` keeps the registry purely
        in-memory (useful for unit tests); lookups then never touch disk.
    profile:
        Kernel-library profile used when a miss forces a compile.
    variant:
        IOS variant compiled on a miss; any spelling accepted by
        :func:`repro.core.normalize_variant`.
    graph_builder:
        How to obtain the computation graph for ``(model, batch_size)``;
        defaults to :func:`repro.frontend.load`.  Override to serve
        graphs that are not in the model zoo.
    scheduler_factory:
        Override the scheduler the per-device engines compile with (tests
        inject counting or failing schedulers here).
    passes:
        Run the graph-rewriting pipeline of :mod:`repro.passes` on every
        built graph before scheduling/serving it.  ``True`` uses the default
        pipeline; a :class:`~repro.passes.PassManager` runs that one.  The
        persisted key fingerprints the *rewritten* graph, so optimised and
        raw schedules never collide.
    tracer:
        Optional :class:`~repro.obs.Tracer` handed to every per-device
        compile engine, so misses record their compile stages on the trace's
        ``compile/stages`` track.  The attribute is mutable and re-applied on
        each :meth:`engine_for` call — a service may point a long-lived
        registry at the current run's tracer.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        profile: KernelProfile = CUDNN_PROFILE,
        variant: str = "ios-both",
        graph_builder: Callable[[str, int], Graph] | None = None,
        scheduler_factory: Callable[[DeviceSpec, KernelProfile, str], IOSScheduler] | None = None,
        passes=False,
        tracer: Tracer | None = None,
    ):
        self.root = Path(root) if root is not None else None
        self.profile = profile
        self.variant = normalize_variant(variant)
        self.passes = passes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._graph_builder = graph_builder or (
            lambda model, batch_size: load(model, batch_size=batch_size)
        )
        self._scheduler_factory = scheduler_factory or _default_scheduler
        self._cache: dict[RegistryKey, CompiledModel] = {}
        self._engines: dict[str, Engine] = {}
        self._graphs: dict[tuple[str, int], Graph] = {}
        self._fingerprints: dict[tuple[str, int], str] = {}
        self.stats = RegistryStats()

    # ----------------------------------------------------------------- helpers
    def key(self, model: str, batch_size: int, device: DeviceSpec | str) -> RegistryKey:
        """The full registry key (variant + served-graph fingerprint included)."""
        device_name = device if isinstance(device, str) else device.name
        return RegistryKey(model=model, batch_size=batch_size, device=device_name,
                           variant=self.variant,
                           fingerprint=self.fingerprint_for(model, batch_size))

    def path_for(self, key: RegistryKey) -> Path | None:
        """Where ``key`` persists on disk (``None`` for in-memory registries)."""
        if self.root is None:
            return None
        return self.root / model_dirname(key.model) / key.filename()

    def engine_for(self, device: DeviceSpec) -> Engine:
        """The compile engine for ``device`` (one per device, shared cache).

        The engine wraps whatever scheduler ``scheduler_factory`` builds, so
        injected schedulers keep working; the served graphs are already
        pass-optimised by :meth:`graph_for`, hence ``passes`` stays off here.
        """
        if device.name not in self._engines:
            scheduler = self._scheduler_factory(device, self.profile, self.variant)
            self._engines[device.name] = Engine(
                device, profile=self.profile, scheduler=scheduler
            )
        engine = self._engines[device.name]
        # Re-point on every call: the registry may outlive a traced run, and
        # the service re-targets self.tracer per run.
        engine.tracer = self.tracer
        return engine

    def graph_for(self, model: str, batch_size: int) -> Graph:
        """The (optionally pass-optimised) graph served for ``(model, batch)``."""
        cache_key = (model, batch_size)
        if cache_key not in self._graphs:
            graph = self._graph_builder(model, batch_size)
            if self.passes:
                from ..engine.stages import apply_passes

                graph, _ = apply_passes(graph, self.passes, tracer=self.tracer)
            self._graphs[cache_key] = graph
        return self._graphs[cache_key]

    def fingerprint_for(self, model: str, batch_size: int) -> str:
        """Structural fingerprint of the graph served for ``(model, batch)``."""
        cache_key = (model, batch_size)
        if cache_key not in self._fingerprints:
            self._fingerprints[cache_key] = graph_fingerprint(
                self.graph_for(model, batch_size)
            )
        return self._fingerprints[cache_key]

    # ----------------------------------------------------------------- lookups
    def get_compiled(self, model: str, batch_size: int, device: DeviceSpec) -> CompiledModel:
        """Fetch the specialised compiled model, compiling/persisting on a miss.

        Resolution order: in-memory cache → persisted artifact (zero
        searches) → :meth:`engine_for` compile (the only path that searches).
        """
        key = self.key(model, batch_size, device)
        compiled = self._cache.get(key)
        if compiled is not None:
            self.stats.memory_hits += 1
            return compiled

        compiled = self._load(key, device)
        if compiled is not None:
            self.stats.disk_hits += 1
            self._cache[key] = compiled
            return compiled

        compiled = self._compile(key, device)
        self._cache[key] = compiled
        self._persist(key, compiled)
        return compiled

    def get(self, model: str, batch_size: int, device: DeviceSpec) -> Schedule:
        """Fetch the specialised schedule (see :meth:`get_compiled`)."""
        return self.get_compiled(model, batch_size, device).schedule

    def put(self, model: str, batch_size: int, device: DeviceSpec | str,
            schedule: Schedule) -> None:
        """Insert a schedule produced elsewhere (e.g. by an offline sweep).

        The schedule is lowered (and thereby validated) against the served
        graph so the registry still hands out full compiled models.
        """
        key = self.key(model, batch_size, device)
        spec = get_device(device) if isinstance(device, str) else device
        compiled = CompiledModel.from_schedule(
            self.graph_for(model, batch_size), schedule, spec,
            profile=self.profile, variant=self.variant,
        )
        self._cache[key] = compiled
        self._persist(key, compiled)

    def contains(self, model: str, batch_size: int, device: DeviceSpec | str) -> bool:
        """Whether a servable entry exists in memory or on disk (no compile)."""
        key = self.key(model, batch_size, device)
        if key in self._cache:
            return True
        path = self.path_for(key)
        return path is not None and path.exists()

    def warmup(self, model: str, batch_sizes: Iterable[int], device: DeviceSpec) -> None:
        """Eagerly resolve a set of batch sizes (start-up precompilation)."""
        for batch_size in batch_sizes:
            self.get_compiled(model, batch_size, device)

    def cached_batch_sizes(self, model: str, device: DeviceSpec | str) -> list[int]:
        """Batch sizes with a servable entry for ``(model, device)``.

        Disk entries only count when their fingerprint matches the graph this
        registry would serve today — legacy or stale files are not servable.
        """
        device_name = device if isinstance(device, str) else device.name
        sizes = {
            key.batch_size
            for key in self._cache
            if key.model == model and key.device == device_name and key.variant == self.variant
        }
        if self.root is not None:
            model_dir = self.root / model_dirname(model)
            if model_dir.is_dir():
                for path in model_dir.glob(f"{device_name}__{self.variant}__bs*.json"):
                    try:
                        key = RegistryKey.from_path(model, path)
                    except ValueError:
                        continue
                    if key.fingerprint and key.fingerprint == self.fingerprint_for(
                        model, key.batch_size
                    ):
                        sizes.add(key.batch_size)
        return sorted(sizes)

    def keys(self) -> list[RegistryKey]:
        """Every key present in memory or on disk — a raw inventory.

        Unlike :meth:`cached_batch_sizes`, this does *not* filter by the
        currently-served graph: legacy fingerprint-less entries and entries
        fingerprinted for an older model definition are listed too, even
        though :meth:`get` would treat them as misses and recompile.
        """
        found = set(self._cache)
        if self.root is not None and self.root.is_dir():
            for model_dir in self.root.iterdir():
                if not model_dir.is_dir():
                    continue
                for path in model_dir.glob("*.json"):
                    try:
                        found.add(RegistryKey.from_path(model_dir.name, path))
                    except ValueError:
                        continue
        return sorted(found)

    # ------------------------------------------------------------ persistence
    def _load(self, key: RegistryKey, device: DeviceSpec) -> CompiledModel | None:
        path = self.path_for(key)
        if path is None:
            return None
        if not path.exists():
            self._warn_if_legacy(key, path)
            return None
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            self._drop_corrupt(path)
            return None
        expected_graph = self.graph_for(key.model, key.batch_size)
        if CompiledModel.is_artifact(data):
            if data.get("format_version") != ARTIFACT_VERSION:
                # A different (likely newer) artifact format: miss without
                # deleting, so a rollback or mixed-version deployment sharing
                # a registry dir cannot destroy the other version's entries.
                return None
            try:
                compiled = CompiledModel.from_dict(data, device=device, profile=self.profile)
            except (KeyError, TypeError, ValueError):
                # A hand-edited or half-written artifact must not take the
                # service down: drop the entry and fall through to a compile.
                self._drop_corrupt(path)
                return None
        else:
            # Pre-engine layout: the file is a bare Schedule document.  Check
            # provenance before lowering it against today's served graph.
            try:
                schedule = Schedule.from_dict(data)
            except (KeyError, TypeError, ValueError):
                self._drop_corrupt(path)
                return None
            if schedule.graph_name != expected_graph.name:
                raise RegistryError(
                    f"registry entry {path} holds a schedule for graph "
                    f"{schedule.graph_name!r}, expected {expected_graph.name!r}"
                )
            try:
                compiled = CompiledModel.from_schedule(
                    expected_graph, schedule, device,
                    profile=self.profile, variant=self.variant,
                )
            except (KeyError, TypeError, ValueError):
                # Right graph name but stages that no longer validate against
                # today's graph (e.g. renamed operators behind an unchanged
                # rename-invariant fingerprint): drop and recompile.
                self._drop_corrupt(path)
                return None
        if compiled.schedule.graph_name != expected_graph.name:
            raise RegistryError(
                f"registry entry {path} holds a schedule for graph "
                f"{compiled.schedule.graph_name!r}, expected {expected_graph.name!r}"
            )
        return compiled

    def _drop_corrupt(self, path: Path) -> None:
        self.stats.corrupt_entries += 1
        path.unlink(missing_ok=True)

    def _warn_if_legacy(self, key: RegistryKey, path: Path) -> None:
        """Warn (once per file per process) when only a fingerprint-less entry
        exists.

        A legacy file may have been searched for a different graph than the
        one this registry serves today, so reusing it silently could replay a
        stale schedule; it is treated as a miss and left on disk untouched.
        The warned-set is shared across registry instances — fleets create
        one registry per worker over the same root, and each worker probing
        the same stale file must not multiply the warning.
        """
        legacy_path = path.with_name(
            RegistryKey(key.model, key.batch_size, key.device, key.variant).filename()
        )
        if not legacy_path.exists():
            return
        self.stats.legacy_entries += 1
        if legacy_path not in _WARNED_LEGACY_PATHS:
            _WARNED_LEGACY_PATHS.add(legacy_path)
            warnings.warn(
                f"ignoring legacy schedule entry {legacy_path} (no graph "
                f"fingerprint in its key; expected {key.fingerprint!r}): "
                "recompiling instead of risking a stale schedule",
                stacklevel=3,
            )

    def _persist(self, key: RegistryKey, compiled: CompiledModel) -> None:
        path = self.path_for(key)
        if path is not None:
            compiled.save(path)

    def _compile(self, key: RegistryKey, device: DeviceSpec) -> CompiledModel:
        graph = self.graph_for(key.model, key.batch_size)
        engine = self.engine_for(device)
        searches_before = engine.stats.searches
        compiled = engine.compile(graph)
        # Only count compiles that actually ran the DP search; the engine's
        # own fingerprint cache may have satisfied this miss for free.
        self.stats.searches += engine.stats.searches - searches_before
        return compiled
