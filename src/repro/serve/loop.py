"""The discrete-event serving loop: the execution model behind the service.

:class:`ServingLoop` replays a request stream on the virtual clock as a
classic discrete-event simulation.  One event heap orders everything that can
happen to the service:

* **arrivals** — a request enters; the admission policy decides whether it
  may queue, then the max-batch/max-wait rules decide whether the forming
  batch closes;
* **batch-close timeouts** — the oldest queued request has waited
  ``max_wait_ms``; the batch flushes even though it is not full;
* **worker completions** — a dispatched batch finishes executing; the
  in-flight accounting drops and the autoscaler gets a chance to react;
* **scale checks** — every ``interval_ms`` the autoscaler compares the
  pool's backlog against its watermarks and may add or retire a worker.

Events at the same instant process deterministically: arrivals first (a
request arriving exactly at a batch's close deadline still joins it — the
same tie-break the offline :class:`~repro.serve.batcher.DynamicBatcher`
applies), then completions, then timeouts, then scale checks; ties within a
kind break by insertion order.  Given the same requests and config the loop
is therefore a pure function — same report, down to the last timestamp.

With the default admit-all policy and no autoscaler the loop reproduces the
offline batcher's batches exactly; the loop exists so that *policies that
react to time* — deadline-aware admission, priority preemption, elastic
pools — have a place to act.

Admission policies and the autoscaler observe the loop through
:class:`LoopState`, a read-only view exposing the clock, queue depth, worker
horizons, and the engine-backed latency estimates the device-aware router
already uses.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..obs.alerts import AlertEvent, AlertManager, AlertRule
from ..obs.metrics import MetricsRegistry
from ..obs.timeseries import TimeSeriesRegistry, WatchRenderer, WindowSpan
from ..obs.trace import NULL_TRACER, Tracer
from ..runtime.events import add_execution_spans
from .admission import AdmissionPolicy, AdmitAll
from .batcher import BatchPolicy
from .request import FormedBatch, InferenceRequest, RejectedRequest, RequestRecord

if TYPE_CHECKING:  # pragma: no cover - types only
    from .autoscale import Autoscaler, ScaleEvent
    from .batcher import BatchSizeSelector
    from .fleet import Router
    from .registry import ScheduleRegistry
    from .workers import Worker, WorkerPool

__all__ = ["LoopResult", "LoopState", "ServingLoop"]

#: Event kinds, in tie-break order at equal virtual time.
_ARRIVAL, _COMPLETION, _TIMEOUT, _SCALE = 0, 1, 2, 3


@dataclass
class LoopResult:
    """Everything one loop run produced, ready for report building.

    ``num_executions`` and ``batch_size_counts`` are assembled from the
    run's metrics registry at the end of :meth:`ServingLoop.run` — the loop
    counts into ``metrics`` (the ``serve.executions`` counter), not into
    parallel bookkeeping.
    """

    records: list[RequestRecord] = field(default_factory=list)
    rejected: list[RejectedRequest] = field(default_factory=list)
    #: Device executions performed (a formed batch may chunk into several).
    num_executions: int = 0
    #: Executions per specialised batch size.
    batch_size_counts: dict[int, int] = field(default_factory=dict)
    #: Autoscaler resizes, in event order.
    scale_events: list["ScaleEvent"] = field(default_factory=list)
    #: Alert transitions (firing/resolved), in window order; only populated
    #: when the loop runs with a :class:`~repro.obs.AlertManager`.
    alerts: list[AlertEvent] = field(default_factory=list)
    #: The run's full metrics registry (queue depth, admission outcomes,
    #: latency/queue-delay distributions, worker utilisation series, ...).
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


class LoopState:
    """Read-only view of the loop that admission and autoscaling see.

    Policies never touch the heap or the forming batch directly; they read
    the clock, the queue, the worker horizons, and the same engine-backed
    latency estimates the device-aware router ranks workers with.
    """

    def __init__(self, loop: "ServingLoop"):
        self._loop = loop

    @property
    def now_ms(self) -> float:
        """Current virtual time."""
        return self._loop._now_ms

    @property
    def pool(self) -> "WorkerPool":
        """The worker pool (autoscalers resize it through this handle)."""
        return self._loop.pool

    @property
    def pending_requests(self) -> int:
        """Requests in the forming batch."""
        return len(self._loop._pending)

    @property
    def pending_samples(self) -> int:
        """Samples in the forming batch."""
        return self._loop._pending_samples

    def batch_wait_bound_ms(self, request: InferenceRequest) -> float:
        """Worst-case batching wait for ``request`` arriving now.

        Joining a forming batch inherits its remaining close deadline; a
        request opening a fresh batch may wait the full ``max_wait_ms``.
        """
        loop = self._loop
        if loop._pending and (
            loop._pending_samples + request.num_samples
            <= loop.policy.max_batch_size
        ):
            return max(0.0, loop._batch_deadline_ms - self.now_ms)
        return loop.policy.max_wait_ms

    def predicted_execution_ms(self, num_samples: int, worker: "Worker") -> float:
        """Engine-estimated execution latency of the batch on ``worker``."""
        return self._loop.selector.predicted_latency(
            self._loop.model, num_samples, worker.device
        )

    def predicted_completion_ms(self, request: InferenceRequest,
                                immediate: bool = False) -> float:
        """Earliest predicted completion of ``request`` across the pool.

        The same arithmetic the earliest-finish router applies — batching
        wait bound, then per worker ``max(horizon, ready) + execution
        estimate``, minimised over the pool — extended with the work already
        *queued but not dispatched*: samples in the forming batch chunk into
        ladder-sized executions ahead of this request (spread across the
        pool), and the request's own chunk rides last.  Without that term a
        whole burst would be admitted against the same idle horizon.

        ``immediate`` predicts a dispatch *now* (no batching wait) — what a
        preempting arrival experiences.  The worker horizons still apply, so
        skipping the wait only helps when the wait was the binding term.
        """
        loop = self._loop
        wait_ms = 0.0 if immediate else self.batch_wait_bound_ms(request)
        ready_ms = self.now_ms + wait_ms
        ladder_max = loop.selector.max_batch_size
        # Only pending work the queue discipline serves *before* this request
        # delays it — priority-preemptive policies jump their high classes
        # over queued low-priority samples.  The request's own chunk, though,
        # packs up to ladder_max samples from the *whole* ordered queue: a
        # queue-jumping request still executes at the rung its riders fill.
        key = loop.admission.order_key(request)
        ahead_samples = sum(
            pending.num_samples
            for pending in loop._pending
            if loop.admission.order_key(pending) <= key
        )
        total_samples = loop._pending_samples + request.num_samples
        chunks_ahead = ahead_samples // ladder_max
        own_chunk = max(
            request.num_samples,
            min(ladder_max, total_samples - chunks_ahead * ladder_max),
        )
        workers = loop.pool.workers
        best = float("inf")
        for worker in workers:
            own_ms = self.predicted_execution_ms(own_chunk, worker)
            ahead_ms = (
                chunks_ahead
                * self.predicted_execution_ms(ladder_max, worker)
                / len(workers)
            )
            start_ms = max(worker.busy_until_ms, ready_ms)
            best = min(best, start_ms + ahead_ms + own_ms)
        return best


class ServingLoop:
    """Drive requests through batcher → admission → router → pool, in time order.

    Parameters
    ----------
    model:
        The model every request targets (the service validates this).
    policy:
        Max-batch/max-wait batching policy.
    pool, router, selector, registry:
        The service's collaborators; the loop is their conductor, not their
        owner — it never builds its own.
    admission:
        Gate consulted on every arrival; defaults to :class:`AdmitAll`.
    autoscaler:
        Optional elastic sizing; when present, scale checks join the heap.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When truthy, the loop records
        every request's lifecycle (arrival → queued → dispatch-wait →
        execute → completion) as async spans on ``serving/requests``, batch
        closes / rejections / scale events as instants, queue-depth counter
        samples, and each dispatch — with its stage and kernel child events —
        on per-worker tracks.  All timestamps are virtual-clock, so a traced
        run is exactly reproducible.  The default
        :data:`~repro.obs.trace.NULL_TRACER` records nothing and keeps the
        untraced event path byte-identical to pre-tracing behaviour.
    metrics:
        The run's :class:`~repro.obs.MetricsRegistry`; defaults to a fresh
        one.  :meth:`run` clears it at the start of every run, so one loop
        reused across runs reports each run separately.  Pass a
        :class:`~repro.obs.TimeSeriesRegistry` and every ``serve.*`` family
        additionally buckets into virtual-time windows — the loop advances
        the registry's clock as the event heap drains, so windows close in
        event order.
    alerts:
        Optional :class:`~repro.obs.AlertManager` (or a rule list) evaluated
        on every window close; requires a windowed ``metrics`` registry.
        Transitions land in the result, the metrics
        (``serve.alerts.events``), the trace (``alert`` instants), and —
        for firing events — the autoscaler's ``on_alert`` hook.
    watch:
        Optional :class:`~repro.obs.WatchRenderer` printing one in-run
        dashboard line per closed window; requires a windowed ``metrics``
        registry.
    """

    def __init__(
        self,
        model: str,
        policy: BatchPolicy,
        pool: "WorkerPool",
        router: "Router",
        selector: "BatchSizeSelector",
        registry: "ScheduleRegistry",
        admission: AdmissionPolicy | None = None,
        autoscaler: "Autoscaler | None" = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        alerts: "AlertManager | Sequence[AlertRule] | None" = None,
        watch: WatchRenderer | None = None,
    ):
        self.model = model
        self.policy = policy
        self.pool = pool
        self.router = router
        self.selector = selector
        self.registry = registry
        self.admission = admission or AdmitAll()
        self.autoscaler = autoscaler
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if alerts is not None and not isinstance(alerts, AlertManager):
            alerts = AlertManager(alerts)
        self.alerts = alerts
        self.watch = watch
        self._timeseries = (
            self.metrics if isinstance(self.metrics, TimeSeriesRegistry) else None
        )
        if (alerts is not None or watch is not None) and self._timeseries is None:
            raise ValueError(
                "alerts/watch evaluate on window close; pass a "
                "TimeSeriesRegistry as the loop's metrics"
            )
        self.state = LoopState(self)
        # Mutable run state (reset per run).
        self._now_ms = 0.0
        self._pending: list[InferenceRequest] = []
        self._pending_samples = 0
        self._batch_deadline_ms = 0.0
        self._batch_id = 0
        self._arrivals_left = 0
        self._inflight = 0
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        self._result = LoopResult()
        self._scale_armed = True
        #: Optional hook fired after each completion event with the chunk's
        #: finished records (a cluster driver schedules stage handoffs from
        #: it).  ``None`` — the default — keeps the loop byte-identical to
        #: pre-hook behaviour.
        self.completion_listener: Callable[[Sequence[RequestRecord]], None] | None = (
            None
        )

    # ----------------------------------------------------------------- driving
    def run(self, requests: Sequence[InferenceRequest]) -> LoopResult:
        """Replay ``requests`` (sorted by arrival) and return what happened."""
        self._reset()
        for index, request in enumerate(requests):
            heapq.heappush(self._heap, (request.arrival_ms, _ARRIVAL, index, request))
        self._seq = itertools.count(len(requests))
        self._arrivals_left = len(requests)
        if self.autoscaler is not None and requests:
            first = requests[0].arrival_ms
            self._push(first + self.autoscaler.config.interval_ms, _SCALE, None)

        while self._heap:
            self._step()
        return self._finalize()

    # ----------------------------------------------------- incremental driving
    # An external driver (the cluster co-simulation) replays arrivals itself:
    # ``begin()`` → interleaved ``advance_to()`` / ``inject()`` / ``step()``
    # → ``finish()``.  Driven this way with the arrivals of a single stream,
    # the loop pops the *same events in the same order* as :meth:`run` —
    # arrivals still beat same-time completions/timeouts/scale checks because
    # the driver injects before stepping equal-time internal events — so the
    # result is byte-identical.

    def begin(self) -> None:
        """Start an externally driven run; arrivals come via :meth:`inject`."""
        self._reset()
        self._seq = itertools.count()
        self._scale_armed = self.autoscaler is None

    @property
    def next_event_ms(self) -> float:
        """Virtual time of the earliest queued internal event (``inf`` if none)."""
        return self._heap[0][0] if self._heap else float("inf")

    def has_events(self) -> bool:
        """Whether any internal event (completion/timeout/scale) is queued."""
        return bool(self._heap)

    def step(self) -> None:
        """Process exactly one queued internal event."""
        self._step()

    def advance_to(self, time_ms: float) -> None:
        """Drain every internal event strictly earlier than ``time_ms``.

        Strictly earlier: an arrival injected at ``time_ms`` afterwards still
        wins the tie against same-time internal events, exactly as the heap's
        kind ordering resolves it inside :meth:`run`.
        """
        while self._heap and self._heap[0][0] < time_ms:
            self._step()

    def inject(self, request: InferenceRequest, arrivals_left: int) -> None:
        """Process one arrival now; ``arrivals_left`` arrivals are still due.

        The driver must have drained internal events earlier than the arrival
        (:meth:`advance_to`) and must inject arrivals in
        ``(arrival_ms, request_id)`` order.  ``arrivals_left`` counts arrivals
        the *whole stream* still owes (cluster-wide for a cluster driver) so
        the drain-versus-timeout close reason keeps its meaning.
        """
        self._arrivals_left = arrivals_left + 1
        if not self._scale_armed:
            self._scale_armed = True
            self._push(
                request.arrival_ms + self.autoscaler.config.interval_ms, _SCALE, None
            )
        self._advance_clock(request.arrival_ms)
        self._on_arrival(request)

    def finish(self) -> LoopResult:
        """Drain the remaining internal events and assemble the result."""
        while self._heap:
            self._step()
        return self._finalize()

    def _step(self) -> None:
        time_ms, kind, _, payload = heapq.heappop(self._heap)
        self._advance_clock(time_ms)
        if kind == _ARRIVAL:
            self._on_arrival(payload)
        elif kind == _COMPLETION:
            self._on_completion(payload)
        elif kind == _TIMEOUT:
            self._on_timeout(payload)
        else:
            self._on_scale_check()

    def _advance_clock(self, time_ms: float) -> None:
        self._now_ms = time_ms
        # Windows close *before* the event at time_ms processes — that
        # event's observations belong to the window containing time_ms.
        if self._timeseries is not None:
            for window in self._timeseries.advance(time_ms):
                self._close_window(window)

    def _reset(self) -> None:
        self.admission.reset()
        if self.alerts is not None:
            self.alerts.reset()
        self._now_ms = 0.0
        self._pending = []
        self._pending_samples = 0
        self._batch_deadline_ms = 0.0
        self._batch_id = 0
        self._arrivals_left = 0
        self._inflight = 0
        self._heap = []
        self.metrics.clear()
        self._result = LoopResult(metrics=self.metrics)
        self.metrics.gauge(
            "serve.pool.size", "active workers in the pool"
        ).set(len(self.pool.workers))

    def _finalize(self) -> LoopResult:
        """Assemble the derived tallies of the result from the run's metrics.

        The execution count and batch-size mix the report prints come from
        the ``serve.executions`` counter — the registry is the bookkeeping,
        not a copy of it — and the pool's busy/lifetime utilisation series
        lands in the registry alongside (the single series both report
        summaries read).  Registry-of-schedules counters are exported too so
        the metrics dump carries the compile-cache hit rate.
        """
        # The last (partial) window never sees a later event; close it
        # explicitly so trailing activity still reaches alerts and --watch.
        if self._timeseries is not None:
            self._close_window(self._timeseries.flush())
        result = self._result
        executions = self.metrics.counter(
            "serve.executions", "device executions per specialised batch size"
        )
        result.num_executions = int(executions.total())
        result.batch_size_counts = {
            int(size): int(count)
            for size, count in executions.by_label("batch_size").items()
        }
        self.pool.export_utilization(self.metrics)
        lookups = self.metrics.gauge(
            "serve.registry.lookups", "schedule-registry counters (cumulative)"
        )
        for name, value in self.registry.stats.as_dict().items():
            lookups.set(value, kind=name)
        return result

    def _push(self, time_ms: float, kind: int, payload) -> None:
        heapq.heappush(self._heap, (time_ms, kind, next(self._seq), payload))

    # ----------------------------------------------------------------- windows
    def _close_window(self, window: WindowSpan) -> None:
        """One closed time window: evaluate alerts, render the watch line."""
        firing: list[str] = []
        if self.alerts is not None:
            transitions = self.alerts.evaluate(self._timeseries, window)
            if transitions:
                self._record_alert_events(transitions)
            firing = self.alerts.firing()
        if self.watch is not None:
            self.watch.emit(self._timeseries, window, firing)

    def _record_alert_events(self, events: Sequence[AlertEvent]) -> None:
        """Land alert transitions in the result, metrics, trace and scaler."""
        counter = self.metrics.counter(
            "serve.alerts.events", "alert transitions, by rule and state"
        )
        for event in events:
            self._result.alerts.append(event)
            counter.inc(rule=event.rule, state=event.state)
            if self.tracer:
                self.tracer.instant(
                    f"alert {event.rule}", "serving/alerts", event.time_ms,
                    category="alert",
                    args={
                        "state": event.state,
                        "value": round(event.value, 6),
                        "threshold": event.threshold,
                        "severity": event.severity,
                        "message": event.message,
                    },
                )
            if event.state == "firing" and self.autoscaler is not None:
                self._record_scale_events(
                    self.autoscaler.on_alert(self.state, event)
                )

    # ------------------------------------------------------------------ events
    def _on_arrival(self, request: InferenceRequest) -> None:
        self._arrivals_left -= 1
        tracer = self.tracer
        self.metrics.counter(
            "serve.requests.offered", "requests submitted to the service"
        ).inc()
        if tracer:
            tracer.async_begin(
                f"request {request.request_id}", "serving/requests",
                request.request_id, self._now_ms, category="request",
                args={
                    "model": request.model,
                    "samples": request.num_samples,
                    "priority": request.priority,
                    "deadline_ms": request.deadline_ms,
                },
            )
        decision = self.admission.admit(request, self.state)
        if not decision.admitted:
            reason = decision.reason or "rejected"
            self.metrics.counter(
                "serve.admission.rejected", "arrivals shed, by policy reason"
            ).inc(reason=reason)
            # A shed request is a spent error budget too: the burn-rate
            # alert must see rejections, not just deadline overruns.
            self.metrics.counter(
                "serve.slo.missed", "requests that missed their SLO, by outcome"
            ).inc(outcome="rejected")
            if tracer:
                tracer.instant(
                    "reject", "serving/admission", self._now_ms,
                    category="admission",
                    args={"request": request.request_id, "reason": reason},
                )
                tracer.async_end(
                    f"request {request.request_id}", "serving/requests",
                    request.request_id, self._now_ms, category="request",
                    args={"outcome": "rejected", "reason": reason},
                )
            self._result.rejected.append(
                RejectedRequest(
                    request=request,
                    rejected_ms=self._now_ms,
                    reason=reason,
                )
            )
            return
        self.metrics.counter(
            "serve.admission.admitted", "arrivals allowed to queue"
        ).inc()
        policy = self.policy
        # A priority-preemptive policy expedites this arrival: the batch
        # closes *with the request inside* the moment it joins — whatever
        # queued rides along, and an empty queue means it dispatches alone —
        # instead of waiting out the max-wait window.
        preempt = self.admission.preempts(request, self.state)
        if (
            self._pending
            and self._pending_samples + request.num_samples > policy.max_batch_size
        ):
            self._close_batch(self._now_ms, "full")
        if not self._pending:
            self._batch_deadline_ms = policy.close_deadline_ms(self._now_ms)
            self._push(self._batch_deadline_ms, _TIMEOUT, self._batch_id)
        self._pending.append(request)
        self._pending_samples += request.num_samples
        self._observe_queue()
        self._sample_queue()
        if self._pending_samples >= policy.max_batch_size:
            self._close_batch(self._now_ms, "full")
        elif preempt:
            self._close_batch(self._now_ms, "priority")

    def _on_completion(self, records: "Sequence[RequestRecord] | None") -> None:
        self._inflight -= 1
        # SLO outcomes count at *completion* time, so the attainment series
        # lands in the window the client actually observed the result in.
        met = self.metrics.counter("serve.slo.met", "requests that met their SLO")
        missed = self.metrics.counter(
            "serve.slo.missed", "requests that missed their SLO, by outcome"
        )
        for record in records or ():
            if record.deadline_met:
                met.inc()
            else:
                missed.inc(outcome="deadline")
        if self.autoscaler is not None:
            self._record_scale_events(self.autoscaler.evaluate(self.state))
        if self.completion_listener is not None:
            self.completion_listener(records or ())

    def _on_timeout(self, batch_id: int) -> None:
        if batch_id != self._batch_id or not self._pending:
            return  # the batch already closed (full/priority); stale deadline
        reason = "timeout" if self._arrivals_left else "drain"
        self._close_batch(self._now_ms, reason)

    def _on_scale_check(self) -> None:
        assert self.autoscaler is not None
        self._record_scale_events(self.autoscaler.evaluate(self.state))
        if self._arrivals_left or self._pending or self._inflight:
            self._push(self._now_ms + self.autoscaler.config.interval_ms, _SCALE, None)

    def _record_scale_events(self, events) -> None:
        """Append autoscaler resizes, counting and tracing each one."""
        if not events:
            return
        self._result.scale_events.extend(events)
        counter = self.metrics.counter(
            "serve.autoscale.events", "autoscaler resizes, by direction"
        )
        pool_size = self.metrics.gauge("serve.pool.size", "active workers in the pool")
        for event in events:
            counter.inc(action=event.action)
            pool_size.set(event.num_workers)
            if self.tracer:
                self.tracer.instant(
                    f"scale-{event.action}", "serving/autoscale", event.time_ms,
                    category="autoscale",
                    args={
                        "reason": event.reason,
                        "worker": event.worker_id,
                        "device": event.device,
                        "pool": event.num_workers,
                    },
                )

    # ---------------------------------------------------------------- batching
    def _observe_queue(self) -> None:
        """Tell priority-aware policies what the forming batch holds."""
        observe = getattr(self.admission, "observe_queue", None)
        if observe is not None:
            highest = max((request.priority for request in self._pending), default=None)
            observe(highest)

    def _sample_queue(self) -> None:
        """Sample the forming batch's depth into the gauge and the trace."""
        self.metrics.gauge(
            "serve.queue.depth", "requests in the forming batch"
        ).set(len(self._pending))
        self.metrics.gauge(
            "serve.queue.samples", "samples in the forming batch"
        ).set(self._pending_samples)
        if self.tracer:
            self.tracer.counter(
                "queue depth", "serving/loop", self._now_ms,
                {"requests": len(self._pending), "samples": self._pending_samples},
            )

    def _close_batch(self, formed_ms: float, reason: str) -> None:
        ordered = sorted(self._pending, key=self.admission.order_key)
        batch = FormedBatch(requests=ordered, formed_ms=formed_ms, close_reason=reason)
        self._pending = []
        self._pending_samples = 0
        self._batch_id += 1
        self._observe_queue()
        self._sample_queue()
        self.metrics.counter(
            "serve.batch.closes", "formed batches, by close reason"
        ).inc(reason=reason)
        self.metrics.histogram(
            "serve.batch.occupancy", "samples per formed batch"
        ).observe(batch.num_samples)
        if self.tracer:
            self.tracer.instant(
                "batch-close", "serving/loop", formed_ms, category="batch",
                args={
                    "reason": reason,
                    "requests": len(batch),
                    "samples": batch.num_samples,
                },
            )
        for chunk in self._chunk(batch):
            self._execute_chunk(batch, chunk)

    def _chunk(self, batch: FormedBatch) -> list[list[InferenceRequest]]:
        """Split a formed batch so each chunk fits the ladder maximum.

        The batcher may form a batch larger than the biggest specialised
        schedule (a single oversized request, or a policy whose
        ``max_batch_size`` exceeds the ladder).  Requests are packed in
        dispatch order; a request never spans two executions.
        """
        limit = self.selector.max_batch_size
        chunks: list[list[InferenceRequest]] = []
        current: list[InferenceRequest] = []
        current_samples = 0
        for request in batch.requests:
            if current and current_samples + request.num_samples > limit:
                chunks.append(current)
                current, current_samples = [], 0
            current.append(request)
            current_samples += request.num_samples
        if current:
            chunks.append(current)
        return chunks

    # ---------------------------------------------------------------- dispatch
    def _estimate_for(self, num_samples: int):
        """Lazy per-worker latency estimate the router ranks candidates with.

        Resolves to the predicted execution latency of an ``num_samples``
        batch on the worker's device.  Estimating a device type with no
        registry entry yet triggers its cold compile — the same fan-out a
        dispatch would cause, just moved to routing time.
        """
        def estimate(worker: "Worker") -> float:
            return self.selector.predicted_latency(
                self.model, num_samples, worker.device
            )

        return estimate

    def _execute_chunk(self, batch: FormedBatch, chunk: list[InferenceRequest]) -> None:
        num_samples = sum(request.num_samples for request in chunk)
        worker = self.router.pick(
            self.pool.workers, batch.formed_ms, self._estimate_for(num_samples)
        )
        rung = self.selector.select(self.model, num_samples, worker.device)
        compiled = self.registry.get_compiled(self.model, rung, worker.device)
        dispatch = self.pool.dispatch(
            compiled.graph,
            compiled.schedule,
            worker,
            ready_ms=batch.formed_ms,
            num_samples=num_samples,
            plan=compiled.plan,
        )
        self.metrics.counter(
            "serve.executions", "device executions per specialised batch size"
        ).inc(batch_size=rung)
        latency = self.metrics.histogram(
            "serve.latency_ms", "end-to-end request latency"
        )
        queue_delay = self.metrics.histogram(
            "serve.queue_delay_ms", "arrival-to-dispatch request delay"
        )
        chunk_records: list[RequestRecord] = []
        for request in chunk:
            record = RequestRecord(
                request=request,
                batched_ms=batch.formed_ms,
                dispatch_ms=dispatch.start_ms,
                completion_ms=dispatch.end_ms,
                executed_batch_size=rung,
                worker_id=dispatch.worker_id,
                device=dispatch.device,
            )
            self._result.records.append(record)
            chunk_records.append(record)
            latency.observe(record.latency_ms, device=dispatch.device)
            queue_delay.observe(record.queue_delay_ms, device=dispatch.device)
        self._inflight += 1
        self._push(dispatch.end_ms, _COMPLETION, chunk_records)
        if self.tracer:
            self._trace_dispatch(batch, chunk, rung, compiled, worker, dispatch)

    def _trace_dispatch(self, batch, chunk, rung, compiled, worker, dispatch) -> None:
        """Record one dispatch: request phases, the batch span, kernel children.

        Every timestamp is virtual-clock, so the spans are exactly as
        reproducible as the loop itself.  Request lifecycles are async spans
        correlated by request id — queued (arrival → batch close),
        dispatch-wait (close → worker start) and execute (start → end) nest
        inside the ``request N`` span opened at arrival.  The batch itself
        lands on the executing worker's ``batches`` row, with the memoised
        execution's stage/kernel events replayed underneath at the dispatch's
        start time (see
        :meth:`~repro.serve.workers.WorkerPool.execution_result`).
        """
        tracer = self.tracer
        for request in chunk:
            correlation = request.request_id
            name = f"request {correlation}"
            tracer.async_begin(
                "queued", "serving/requests", correlation,
                request.arrival_ms, category="request",
            )
            tracer.async_end(
                "queued", "serving/requests", correlation,
                batch.formed_ms, category="request",
            )
            if dispatch.start_ms > batch.formed_ms:
                tracer.async_begin(
                    "dispatch-wait", "serving/requests", correlation,
                    batch.formed_ms, category="request",
                )
                tracer.async_end(
                    "dispatch-wait", "serving/requests", correlation,
                    dispatch.start_ms, category="request",
                )
            tracer.async_begin(
                "execute", "serving/requests", correlation,
                dispatch.start_ms, category="request",
                args={"worker": dispatch.worker_id, "device": dispatch.device,
                      "batch_size": rung},
            )
            tracer.async_end(
                "execute", "serving/requests", correlation,
                dispatch.end_ms, category="request",
            )
            tracer.async_end(
                name, "serving/requests", correlation,
                dispatch.end_ms, category="request",
                args={"outcome": "completed"},
            )
        track = f"worker {dispatch.worker_id} ({dispatch.device})"
        tracer.add_span(
            f"batch bs{rung}", f"{track}/batches",
            dispatch.start_ms, dispatch.end_ms, category="batch",
            args={
                "requests": len(chunk),
                "samples": sum(request.num_samples for request in chunk),
                "batch_size": rung,
                "close_reason": batch.close_reason,
                "wait_for_worker_ms": dispatch.wait_for_worker_ms,
            },
        )
        result = self.pool.execution_result(
            compiled.graph, compiled.schedule, worker, plan=compiled.plan
        )
        add_execution_spans(tracer, result, track, dispatch.start_ms)
