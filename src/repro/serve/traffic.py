"""Synthetic traffic generation.

Serving experiments need reproducible load.  Two arrival processes cover the
regimes the paper's specialisation study cares about:

* **Poisson** — independent arrivals at a target rate, the standard model of
  aggregate user traffic; inter-arrival gaps are exponential.
* **Bursty** — arrivals clumped into bursts separated by idle gaps, the worst
  case for a fixed schedule and the best case for batching.  Every bursty
  request is labelled with its ``burst_id`` so SLO attainment can be broken
  out per burst after the run.

Per-request sample counts are drawn from a weighted mix (e.g. mostly single
images with occasional multi-image requests), which is what exercises
batch-size-specialised schedules.  SLO-aware workloads attach a latency
budget (``slo_ms`` → ``InferenceRequest.deadline_ms``) and optionally draw a
priority class per request from a weighted mix.  Everything is driven by one
``random.Random(seed)`` so a seed fully determines the workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from .request import InferenceRequest

__all__ = ["TrafficConfig", "TrafficGenerator", "poisson_arrivals", "bursty_arrivals",
           "bursty_arrival_bursts", "uniform_arrivals"]


def poisson_arrivals(num_requests: int, rate_rps: float, rng: random.Random) -> list[float]:
    """Arrival times (ms) of a Poisson process at ``rate_rps`` requests/second."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    now = 0.0
    arrivals = []
    for _ in range(num_requests):
        now += rng.expovariate(rate_rps) * 1e3
        arrivals.append(now)
    return arrivals


def bursty_arrival_bursts(
    num_requests: int,
    burst_size: int,
    burst_gap_ms: float,
    rng: random.Random,
    intra_burst_ms: float = 0.2,
) -> list[tuple[float, int]]:
    """``(arrival_ms, burst_id)`` pairs of bursts of back-to-back requests.

    Requests within a burst are ``intra_burst_ms`` apart (jittered ±50%);
    bursts start ``burst_gap_ms`` apart (also jittered) — think periodic
    batch jobs or synchronised clients.  When a burst's own span outlasts the
    gap, the next burst starts right where the previous one ended, keeping
    the arrival sequence monotonic (the batcher's input contract).  The
    burst id labels which burst each request belongs to — the boundary
    information that is unrecoverable from the flat arrival list once jitter
    blurs the gaps.
    """
    if burst_size <= 0:
        raise ValueError(f"burst_size must be positive, got {burst_size}")
    if burst_gap_ms <= 0:
        raise ValueError(f"burst_gap_ms must be positive, got {burst_gap_ms}")
    pairs: list[tuple[float, int]] = []
    burst_start = 0.0
    burst_id = 0
    while len(pairs) < num_requests:
        now = burst_start
        for _ in range(min(burst_size, num_requests - len(pairs))):
            pairs.append((now, burst_id))
            now += intra_burst_ms * (0.5 + rng.random())
        burst_start = max(burst_start + burst_gap_ms * (0.5 + rng.random()), now)
        burst_id += 1
    return pairs


def bursty_arrivals(
    num_requests: int,
    burst_size: int,
    burst_gap_ms: float,
    rng: random.Random,
    intra_burst_ms: float = 0.2,
) -> list[float]:
    """Arrival times (ms) only — see :func:`bursty_arrival_bursts`."""
    return [
        arrival
        for arrival, _ in bursty_arrival_bursts(
            num_requests, burst_size, burst_gap_ms, rng, intra_burst_ms
        )
    ]


def uniform_arrivals(num_requests: int, rate_rps: float, rng: random.Random) -> list[float]:
    """Evenly spaced arrivals at ``rate_rps`` (a deterministic control pattern)."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    gap_ms = 1e3 / rate_rps
    return [index * gap_ms for index in range(num_requests)]


@dataclass(frozen=True)
class TrafficConfig:
    """One reproducible synthetic workload."""

    model: str = "inception_v3"
    pattern: str = "poisson"
    num_requests: int = 200
    #: Target arrival rate for poisson/uniform patterns, requests per second.
    rate_rps: float = 200.0
    #: Burst shape for the bursty pattern.
    burst_size: int = 16
    burst_gap_ms: float = 50.0
    #: Candidate per-request sample counts and their weights (mixed demand).
    sample_sizes: tuple[int, ...] = (1, 2, 4)
    sample_weights: tuple[float, ...] = (0.6, 0.25, 0.15)
    #: Latency budget attached to every request (``deadline_ms``); ``None``
    #: generates SLO-free traffic.
    slo_ms: float | None = None
    #: Candidate priority classes and their weights; the default single
    #: class 0 draws no randomness, keeping pre-SLO workloads bit-identical.
    priorities: tuple[int, ...] = (0,)
    priority_weights: tuple[float, ...] = (1.0,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.pattern not in ("poisson", "bursty", "uniform"):
            raise ValueError(
                f"unknown traffic pattern {self.pattern!r}; "
                "choose from poisson, bursty, uniform"
            )
        if self.num_requests <= 0:
            raise ValueError(f"num_requests must be positive, got {self.num_requests}")
        if len(self.sample_sizes) != len(self.sample_weights):
            raise ValueError("sample_sizes and sample_weights must have equal length")
        if not self.sample_sizes:
            raise ValueError("sample_sizes must not be empty")
        if self.slo_ms is not None and self.slo_ms < 0:
            raise ValueError(f"slo_ms must be non-negative, got {self.slo_ms}")
        if len(self.priorities) != len(self.priority_weights):
            raise ValueError("priorities and priority_weights must have equal length")
        if not self.priorities:
            raise ValueError("priorities must not be empty")

    def capped_to(self, max_samples: int) -> "TrafficConfig":
        """A copy whose per-request sample counts all fit ``max_samples``.

        Use this to fit a workload to a service whose batch-size ladder tops
        out below the default sample mix (a request larger than the ladder
        maximum cannot be served).  Oversized entries are dropped from the
        mix; the remaining weights keep their relative proportions.
        """
        pairs = [
            (size, weight)
            for size, weight in zip(self.sample_sizes, self.sample_weights)
            if size <= max_samples
        ]
        if not pairs:
            raise ValueError(
                f"no sample size in {self.sample_sizes} fits max_samples={max_samples}"
            )
        if len(pairs) == len(self.sample_sizes):
            return self
        sizes, weights = zip(*pairs)
        return replace(self, sample_sizes=sizes, sample_weights=weights)

    def with_slo(self, slo_ms: float) -> "TrafficConfig":
        """A copy whose requests all carry an ``slo_ms`` latency budget."""
        return replace(self, slo_ms=slo_ms)


class TrafficGenerator:
    """Turns a :class:`TrafficConfig` into a sorted request list."""

    def __init__(self, config: TrafficConfig):
        self.config = config

    def generate(self) -> list[InferenceRequest]:
        """The full request list (sorted by arrival) for this config's seed."""
        config = self.config
        rng = random.Random(config.seed)
        burst_ids: list[int | None] = [None] * config.num_requests
        if config.pattern == "poisson":
            arrivals = poisson_arrivals(config.num_requests, config.rate_rps, rng)
        elif config.pattern == "bursty":
            pairs = bursty_arrival_bursts(
                config.num_requests, config.burst_size, config.burst_gap_ms, rng
            )
            arrivals = [arrival for arrival, _ in pairs]
            burst_ids = [burst_id for _, burst_id in pairs]
        else:
            arrivals = uniform_arrivals(config.num_requests, config.rate_rps, rng)

        sizes = rng.choices(
            list(config.sample_sizes), weights=list(config.sample_weights),
            k=config.num_requests,
        )
        # A single priority class draws no randomness so that pre-SLO configs
        # keep producing bit-identical workloads for a given seed.
        if len(config.priorities) == 1:
            priorities = [config.priorities[0]] * config.num_requests
        else:
            priorities = rng.choices(
                list(config.priorities), weights=list(config.priority_weights),
                k=config.num_requests,
            )
        return [
            InferenceRequest(
                request_id=index,
                model=config.model,
                arrival_ms=arrival,
                num_samples=size,
                deadline_ms=config.slo_ms,
                priority=priority,
                burst_id=burst_id,
            )
            for index, (arrival, size, priority, burst_id) in enumerate(
                zip(arrivals, sizes, priorities, burst_ids)
            )
        ]
