"""IOS packaged with the same interface as the baseline frameworks.

Experiments that compare frameworks (Figures 7, 11, 12, 15) treat IOS as "one
more execution engine": optimise the graph with the DP scheduler, lower the
schedule and run it on the simulated device with the cuDNN kernel profile —
exactly the paper's setup, where the IOS execution engine is built on cuDNN
and only the *schedule* differs from the baselines.
"""

from __future__ import annotations

from ..core.cost_model import SimulatedCostModel
from ..core.dp_scheduler import IOSScheduler, SchedulerConfig
from ..core.lowering import lower_schedule
from ..core.schedule import Schedule
from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from ..runtime.executor import Executor
from ..runtime.memory import MemoryPlanner
from .base import FrameworkResult

__all__ = ["IOSEngine"]


class IOSEngine:
    """IOS scheduler + execution engine behind the framework interface.

    Unlike :class:`~repro.frameworks.base.FrameworkModel` subclasses, the IOS
    engine is stateful: it caches the schedule it found for a given
    (graph name, batch size, device) so that repeated executions (e.g. the
    batch-size sweep of Figure 11) do not re-run the search.
    """

    name = "ios"

    def __init__(
        self,
        config: SchedulerConfig | None = None,
        profile: KernelProfile = CUDNN_PROFILE,
    ):
        self.config = config or SchedulerConfig()
        self.profile = profile
        self.memory_planner = MemoryPlanner(
            activation_reuse=True, workspace_factor=1.2, framework_overhead_bytes=600 * 1024**2
        )
        self._schedules: dict[tuple[str, int, str], Schedule] = {}
        #: Simulated GPU time spent profiling candidate stages, per optimise() call.
        self.total_profiling_ms = 0.0
        self.total_measurements = 0

    # ------------------------------------------------------------------ search
    def optimize(self, graph: Graph, device: DeviceSpec) -> Schedule:
        """Run (or reuse) the IOS search for ``graph`` on ``device``."""
        key = (graph.name, graph.batch_size, device.name)
        if key in self._schedules:
            return self._schedules[key]
        cost_model = SimulatedCostModel(device, self.profile)
        scheduler = IOSScheduler(cost_model, self.config)
        result = scheduler.optimize_graph(graph)
        self.total_profiling_ms += cost_model.profiler.total_profiling_ms
        self.total_measurements += cost_model.num_measurements
        self._schedules[key] = result.schedule
        return result.schedule

    def optimization_cost_gpu_hours(self, graph: Graph) -> float:
        """Simulated GPU hours spent profiling so far (Figure 12's cost axis)."""
        return self.total_profiling_ms / 3.6e6

    # ----------------------------------------------------------------- running
    def run(self, graph: Graph, device: DeviceSpec) -> FrameworkResult:
        """Optimise (if needed) and execute one inference of ``graph``."""
        memory_plan = self.memory_planner.plan(graph)
        if not memory_plan.fits(device):
            return FrameworkResult(
                framework=self.name,
                network=graph.name,
                batch_size=graph.batch_size,
                latency_ms=float("inf"),
                throughput=0.0,
                out_of_memory=True,
                peak_memory_gib=memory_plan.total_gib,
            )
        schedule = self.optimize(graph, device)
        plan = lower_schedule(graph, schedule)
        result = Executor(device, self.profile).run(plan)
        throughput = graph.batch_size / (result.latency_ms / 1e3) if result.latency_ms else 0.0
        return FrameworkResult(
            framework=self.name,
            network=graph.name,
            batch_size=graph.batch_size,
            latency_ms=result.latency_ms,
            throughput=throughput,
            out_of_memory=False,
            peak_memory_gib=memory_plan.total_gib,
        )

    def latency_ms(self, graph: Graph, device: DeviceSpec) -> float:
        return self.run(graph, device).latency_ms
