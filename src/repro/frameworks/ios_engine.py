"""IOS packaged with the same interface as the baseline frameworks.

Experiments that compare frameworks (Figures 7, 11, 12, 15) treat IOS as "one
more execution engine".  Since the engine redesign this class is a thin
adapter over :class:`repro.engine.Engine`: one engine per device, compiled
models cached per graph fingerprint, so repeated executions (e.g. the
batch-size sweep of Figure 11) never re-run the search — exactly the paper's
setup, where the IOS execution engine is built on cuDNN and only the
*schedule* differs from the baselines.
"""

from __future__ import annotations

from ..core.dp_scheduler import SchedulerConfig
from ..core.schedule import Schedule
from ..engine import Engine
from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from ..runtime.memory import MemoryPlanner
from .base import FrameworkResult

__all__ = ["IOSEngine"]


class IOSEngine:
    """IOS compile pipeline behind the framework interface.

    Unlike :class:`~repro.frameworks.base.FrameworkModel` subclasses, the IOS
    engine is stateful: it keeps one :class:`repro.engine.Engine` per device,
    whose compile cache guarantees a given (graph structure, device) is
    searched at most once.
    """

    name = "ios"

    def __init__(
        self,
        config: SchedulerConfig | None = None,
        profile: KernelProfile = CUDNN_PROFILE,
    ):
        self.config = config or SchedulerConfig()
        self.profile = profile
        self.memory_planner = MemoryPlanner(
            activation_reuse=True, workspace_factor=1.2, framework_overhead_bytes=600 * 1024**2
        )
        self._engines: dict[str, Engine] = {}

    # ------------------------------------------------------------------ engine
    def engine_for(self, device: DeviceSpec) -> Engine:
        """The compile engine bound to ``device`` (created on first use)."""
        if device.name not in self._engines:
            self._engines[device.name] = Engine(
                device, config=self.config, profile=self.profile
            )
        return self._engines[device.name]

    @property
    def total_profiling_ms(self) -> float:
        """Simulated GPU time spent profiling candidate stages, all devices."""
        return sum(
            engine.cost_model.profiler.total_profiling_ms
            for engine in self._engines.values()
        )

    @property
    def total_measurements(self) -> int:
        return sum(
            engine.cost_model.num_measurements for engine in self._engines.values()
        )

    # ------------------------------------------------------------------ search
    def optimize(self, graph: Graph, device: DeviceSpec) -> Schedule:
        """Run (or reuse) the IOS compile for ``graph`` on ``device``."""
        return self.engine_for(device).compile(graph).schedule

    def optimization_cost_gpu_hours(self, graph: Graph) -> float:
        """Simulated GPU hours spent profiling so far (Figure 12's cost axis)."""
        return self.total_profiling_ms / 3.6e6

    # ----------------------------------------------------------------- running
    def run(self, graph: Graph, device: DeviceSpec) -> FrameworkResult:
        """Compile (cached) and execute one inference of ``graph``."""
        memory_plan = self.memory_planner.plan(graph)
        if not memory_plan.fits(device):
            return FrameworkResult(
                framework=self.name,
                network=graph.name,
                batch_size=graph.batch_size,
                latency_ms=float("inf"),
                throughput=0.0,
                out_of_memory=True,
                peak_memory_gib=memory_plan.total_gib,
            )
        compiled = self.engine_for(device).compile(graph)
        return FrameworkResult(
            framework=self.name,
            network=graph.name,
            batch_size=graph.batch_size,
            latency_ms=compiled.latency_ms(),
            throughput=compiled.throughput(),
            out_of_memory=False,
            peak_memory_gib=memory_plan.total_gib,
        )

    def latency_ms(self, graph: Graph, device: DeviceSpec) -> float:
        return self.run(graph, device).latency_ms
