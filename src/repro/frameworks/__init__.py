"""Simulated baseline frameworks (TensorFlow, XLA, TASO, TVM, TensorRT) and the
IOS engine packaged behind the same interface."""

from .base import FrameworkModel, FrameworkResult
from .transforms import (
    apply_elementwise_fusion_discount,
    count_fusable_elementwise,
    find_same_input_merge_sets,
    sequential_plan_with_merges,
)
from .baselines import (
    FRAMEWORK_REGISTRY,
    TASOModel,
    TensorFlowModel,
    TensorFlowXLAModel,
    TensorRTModel,
    TVMAutoTuneModel,
    TVMCudnnModel,
    get_framework,
    list_frameworks,
)
from .ios_engine import IOSEngine

__all__ = [
    "FrameworkModel",
    "FrameworkResult",
    "find_same_input_merge_sets",
    "sequential_plan_with_merges",
    "count_fusable_elementwise",
    "apply_elementwise_fusion_discount",
    "TensorFlowModel",
    "TensorFlowXLAModel",
    "TASOModel",
    "TVMCudnnModel",
    "TVMAutoTuneModel",
    "TensorRTModel",
    "FRAMEWORK_REGISTRY",
    "get_framework",
    "list_frameworks",
    "IOSEngine",
]
