"""Framework-model base class.

The paper compares IOS against five cuDNN-based frameworks (TensorFlow,
TensorFlow-XLA, TASO, TVM-cuDNN, TensorRT) plus TVM with auto-tuned kernels.
None of these can be run in this environment, so each baseline is modelled by
the three properties that actually determine its inference latency in the
paper's setting:

1. **graph transformations** it applies before execution (operator fusion,
   same-type merges, ...);
2. the **kernel library** it executes with (a
   :class:`~repro.hardware.kernel.KernelProfile` describing per-operator-type
   efficiency);
3. **runtime overheads**: how expensive its kernel launches are and how much
   fixed per-inference framework time it adds;

plus a **memory policy** used by the planner to decide whether an inference
fits on the device at all (this is how the TASO out-of-memory result at batch
size 128 is reproduced).

All baselines execute *sequentially* — none of them exploits inter-operator
parallelism, which is precisely the gap IOS fills.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.device import DeviceSpec
from ..hardware.kernel import KernelProfile
from ..ir.graph import Graph
from ..runtime.executor import ExecutionPlan, ExecutionResult, ExecutionStage, Executor
from ..runtime.memory import MemoryPlanner, OutOfMemoryError

__all__ = ["FrameworkModel", "FrameworkResult"]


@dataclass(frozen=True)
class FrameworkResult:
    """Outcome of running one network in one simulated framework."""

    framework: str
    network: str
    batch_size: int
    latency_ms: float
    throughput: float
    out_of_memory: bool = False
    peak_memory_gib: float = 0.0

    @property
    def succeeded(self) -> bool:
        return not self.out_of_memory


class FrameworkModel:
    """A simulated deep-learning inference framework.

    Subclasses override :meth:`transform` (graph rewriting) and provide the
    kernel profile / overheads via the constructor.
    """

    #: Human-readable framework name (used in figures).
    name: str = "framework"

    def __init__(
        self,
        profile: KernelProfile,
        per_inference_overhead_ms: float = 0.0,
        activation_reuse: bool = True,
        activation_copies: int = 1,
        workspace_factor: float = 1.0,
        framework_overhead_bytes: int = 600 * 1024 * 1024,
    ):
        self.profile = profile
        self.per_inference_overhead_ms = per_inference_overhead_ms
        self.memory_planner = MemoryPlanner(
            activation_reuse=activation_reuse,
            activation_copies=activation_copies,
            workspace_factor=workspace_factor,
            framework_overhead_bytes=framework_overhead_bytes,
        )

    # ------------------------------------------------------------ graph rewriting
    def transform(self, graph: Graph) -> ExecutionPlan:
        """Lower a graph to this framework's execution plan.

        The default is plain sequential execution of the graph's operators;
        frameworks with graph optimisations override this.
        """
        return self._sequential_plan(graph)

    def _sequential_plan(self, graph: Graph) -> ExecutionPlan:
        plan = ExecutionPlan(name=f"{graph.name}:{self.name}", batch_size=graph.batch_size)
        for op_name in graph.topological_order():
            op = graph.nodes[op_name]
            if op.kind == "placeholder":
                continue
            plan.stages.append(
                ExecutionStage(groups=[[op]], strategy="sequential", label=op_name)
            )
        return plan

    # ------------------------------------------------------------------ running
    def run(self, graph: Graph, device: DeviceSpec) -> FrameworkResult:
        """Simulate one inference of ``graph`` on ``device`` with this framework."""
        memory_plan = self.memory_planner.plan(graph)
        if not memory_plan.fits(device):
            return FrameworkResult(
                framework=self.name,
                network=graph.name,
                batch_size=graph.batch_size,
                latency_ms=float("inf"),
                throughput=0.0,
                out_of_memory=True,
                peak_memory_gib=memory_plan.total_gib,
            )
        plan = self.transform(graph)
        executor = Executor(device, self.profile)
        result: ExecutionResult = executor.run(plan)
        latency = result.latency_ms + self.per_inference_overhead_ms
        throughput = graph.batch_size / (latency / 1e3) if latency > 0 else 0.0
        return FrameworkResult(
            framework=self.name,
            network=graph.name,
            batch_size=graph.batch_size,
            latency_ms=latency,
            throughput=throughput,
            out_of_memory=False,
            peak_memory_gib=memory_plan.total_gib,
        )

    def latency_ms(self, graph: Graph, device: DeviceSpec) -> float:
        """Latency of one inference; raises if the network does not fit."""
        result = self.run(graph, device)
        if result.out_of_memory:
            raise OutOfMemoryError(
                f"{self.name} ran out of memory on {graph.name} "
                f"(needs {result.peak_memory_gib:.1f} GiB)"
            )
        return result.latency_ms

    #: Optimisation cost in GPU hours charged by the framework's auto-tuner
    #: for a whole network (zero for everything except TVM-AutoTune; IOS's own
    #: cost is reported by the scheduler).  Used by Figure 12.
    def optimization_cost_gpu_hours(self, graph: Graph) -> float:
        return 0.0
