"""The six simulated baseline frameworks of Figures 7, 11, 12, 15.

Each framework is a :class:`~repro.frameworks.base.FrameworkModel` configured
with the graph rewrites, kernel efficiencies, launch overheads and memory
policy that characterise the real system.  The constants below are not fitted
to the paper's numbers; they encode qualitative, publicly documented facts
(e.g. "TensorFlow's per-operator dispatch is much heavier than TensorRT's",
"cuDNN's depthwise convolutions are far from peak", "TASO retains intermediate
activations while verifying substitutions").  The resulting *ordering* of the
frameworks matches the paper; absolute gaps differ.
"""

from __future__ import annotations

from dataclasses import replace

from ..hardware.kernel import (
    CUDNN_PROFILE,
    TENSORRT_PROFILE,
    TVM_AUTOTUNE_PROFILE,
    KernelProfile,
)
from ..ir.graph import Graph
from ..runtime.executor import ExecutionPlan
from .base import FrameworkModel
from .transforms import apply_elementwise_fusion_discount, sequential_plan_with_merges

__all__ = [
    "TensorFlowModel",
    "TensorFlowXLAModel",
    "TASOModel",
    "TVMCudnnModel",
    "TVMAutoTuneModel",
    "TensorRTModel",
    "FRAMEWORK_REGISTRY",
    "get_framework",
    "list_frameworks",
]


class TensorFlowModel(FrameworkModel):
    """TensorFlow 1.x/2.x with cuDNN kernels and a heavy per-op runtime."""

    name = "tensorflow"

    def __init__(self) -> None:
        super().__init__(
            profile=replace(CUDNN_PROFILE, name="cudnn-tf", launch_overhead_scale=3.0),
            per_inference_overhead_ms=0.9,
            activation_reuse=True,
            workspace_factor=1.5,
            framework_overhead_bytes=900 * 1024 * 1024,
        )


class TensorFlowXLAModel(FrameworkModel):
    """TensorFlow with XLA: pointwise fusion and a leaner dispatch path."""

    name = "tensorflow-xla"

    def __init__(self) -> None:
        super().__init__(
            profile=replace(CUDNN_PROFILE, name="cudnn-xla", launch_overhead_scale=1.8),
            per_inference_overhead_ms=0.45,
            activation_reuse=True,
            workspace_factor=1.5,
            framework_overhead_bytes=900 * 1024 * 1024,
        )

    def transform(self, graph: Graph) -> ExecutionPlan:
        plan = self._sequential_plan(graph)
        return apply_elementwise_fusion_discount(plan, graph)


class TASOModel(FrameworkModel):
    """TASO: automatically generated graph substitutions on cuDNN.

    TASO merges same-type convolutions that share an input (a substitution it
    discovers automatically) and fuses pointwise epilogues, then executes the
    optimised graph sequentially.  Verifying and holding the substituted graph
    keeps every intermediate activation resident, which is what makes it run
    out of memory on Inception V3 at batch size 128 on a 16 GiB V100
    (Figure 11) and on the 11 GiB RTX 2080Ti for larger models (Appendix B).
    """

    name = "taso"

    def __init__(self) -> None:
        super().__init__(
            profile=replace(CUDNN_PROFILE, name="cudnn-taso", launch_overhead_scale=1.1),
            per_inference_overhead_ms=0.15,
            activation_reuse=False,
            activation_copies=2,
            workspace_factor=2.0,
            framework_overhead_bytes=900 * 1024 * 1024,
        )

    def transform(self, graph: Graph) -> ExecutionPlan:
        plan = sequential_plan_with_merges(graph, self.name)
        return apply_elementwise_fusion_discount(plan, graph)


class TVMCudnnModel(FrameworkModel):
    """TVM compiling the network but calling cuDNN for convolutions."""

    name = "tvm-cudnn"

    def __init__(self) -> None:
        super().__init__(
            profile=replace(CUDNN_PROFILE, name="cudnn-tvm", launch_overhead_scale=1.3),
            per_inference_overhead_ms=0.2,
            activation_reuse=True,
            workspace_factor=1.2,
        )


class TVMAutoTuneModel(FrameworkModel):
    """TVM with auto-tuned kernels (AutoTVM / Ansor).

    Auto-tuning produces much better separable-convolution kernels than cuDNN
    (the reason it beats IOS on RandWire / NasNet in Figure 12) at the price of
    a very large search cost — the paper reports 208 GPU hours to tune the four
    benchmark networks versus 3 GPU hours for IOS.
    """

    name = "tvm-autotune"

    #: Simulated auto-tuning cost per operator in GPU hours; with the four
    #: benchmark networks (~480 operators) this lands near the paper's
    #: 208 GPU hours total.
    TUNING_COST_PER_OPERATOR_GPU_HOURS = 0.43

    def __init__(self) -> None:
        super().__init__(
            profile=TVM_AUTOTUNE_PROFILE,
            per_inference_overhead_ms=0.15,
            activation_reuse=True,
            workspace_factor=1.0,
        )

    def optimization_cost_gpu_hours(self, graph: Graph) -> float:
        tunable = sum(
            1 for op in graph.operators() if op.kind in ("conv2d", "sep_conv2d", "linear", "matmul")
        )
        return tunable * self.TUNING_COST_PER_OPERATOR_GPU_HOURS


class TensorRTModel(FrameworkModel):
    """NVIDIA TensorRT: aggressive fusion and the best single-kernel library."""

    name = "tensorrt"

    def __init__(self) -> None:
        super().__init__(
            profile=TENSORRT_PROFILE,
            per_inference_overhead_ms=0.08,
            activation_reuse=True,
            workspace_factor=1.5,
        )

    def transform(self, graph: Graph) -> ExecutionPlan:
        plan = self._sequential_plan(graph)
        return apply_elementwise_fusion_discount(plan, graph)


#: Factories for every simulated framework, keyed by the name used in figures.
FRAMEWORK_REGISTRY: dict[str, type[FrameworkModel]] = {
    cls.name: cls
    for cls in (
        TensorFlowModel,
        TensorFlowXLAModel,
        TASOModel,
        TVMCudnnModel,
        TVMAutoTuneModel,
        TensorRTModel,
    )
}


def get_framework(name: str) -> FrameworkModel:
    """Instantiate a simulated framework by name."""
    key = name.lower()
    aliases = {
        "tf": "tensorflow",
        "tf-xla": "tensorflow-xla",
        "xla": "tensorflow-xla",
        "tvm": "tvm-cudnn",
        "trt": "tensorrt",
    }
    key = aliases.get(key, key)
    if key not in FRAMEWORK_REGISTRY:
        raise KeyError(f"unknown framework {name!r}; available: {sorted(FRAMEWORK_REGISTRY)}")
    return FRAMEWORK_REGISTRY[key]()


def list_frameworks() -> list[str]:
    """Names of all registered simulated frameworks."""
    return sorted(FRAMEWORK_REGISTRY)
