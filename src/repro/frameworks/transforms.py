"""Graph transformations used by the simulated frameworks.

Two rewrites cover what the paper's baselines do to a CNN graph before
sequential execution:

* **same-input merge** (TASO / MetaFlow style): convolutions of the same type
  that consume exactly the same input are merged into one larger convolution —
  the "operator merge" of Section 3, discovered automatically by TASO's
  substitution rules.  Only operators of the same type can be merged, which is
  the limitation of TASO/MetaFlow that IOS lifts with concurrent execution of
  *different* operator types.
* **elementwise fusion** (XLA / TensorRT style): stand-alone ReLU/Add operators
  following a convolution are folded into the producer kernel, saving a kernel
  launch and a round-trip of the activation through DRAM.  (Our IR already
  represents Conv-ReLU as one unit, so this mainly affects explicit ``Relu`` /
  ``Add`` nodes such as ResNet's residual additions.)

Transforms operate on execution plans (lists of operator stages), never on the
original :class:`~repro.ir.graph.Graph`, so framework models stay side-effect
free.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir.graph import Graph
from ..ir.ops import Add, Conv2d, Relu
from ..runtime.executor import ExecutionPlan, ExecutionStage
from ..core.merge import build_merged_operator, can_merge

__all__ = ["find_same_input_merge_sets", "sequential_plan_with_merges",
           "count_fusable_elementwise", "apply_elementwise_fusion_discount"]


def find_same_input_merge_sets(graph: Graph) -> list[list[str]]:
    """Find maximal sets of same-type, same-input, mergeable convolutions.

    Returns a list of operator-name groups (each of size >= 2) that
    :func:`repro.core.merge.build_merged_operator` accepts.
    """
    candidates: dict[tuple, list[str]] = defaultdict(list)
    for op in graph.operators():
        if not isinstance(op, Conv2d):
            continue
        key = op.merge_key()
        if key is None:
            continue
        candidates[(op.inputs, key)].append(op.name)
    merge_sets = []
    for names in candidates.values():
        if len(names) < 2:
            continue
        if can_merge(graph, names):
            merge_sets.append(sorted(names))
    return sorted(merge_sets)


def sequential_plan_with_merges(graph: Graph, framework_name: str) -> ExecutionPlan:
    """Sequential execution plan in which mergeable convolution sets are fused.

    Merged operators replace their sources at the position of the earliest
    source in the topological order; every other operator keeps its own stage.
    """
    merge_sets = find_same_input_merge_sets(graph)
    member_of: dict[str, int] = {}
    for index, names in enumerate(merge_sets):
        for name in names:
            member_of[name] = index
    emitted: set[int] = set()

    plan = ExecutionPlan(name=f"{graph.name}:{framework_name}", batch_size=graph.batch_size)
    for op_name in graph.topological_order():
        op = graph.nodes[op_name]
        if op.kind == "placeholder":
            continue
        merge_index = member_of.get(op_name)
        if merge_index is None:
            plan.stages.append(
                ExecutionStage(groups=[[op]], strategy="sequential", label=op_name)
            )
            continue
        if merge_index in emitted:
            continue
        emitted.add(merge_index)
        merged = build_merged_operator(graph, merge_sets[merge_index])
        plan.stages.append(
            ExecutionStage(
                groups=[[merged.merged]],
                strategy="operator merge",
                label=merged.merged.name,
            )
        )
    return plan


def count_fusable_elementwise(graph: Graph) -> int:
    """Number of stand-alone elementwise operators that a fusing compiler removes.

    A ``Relu`` or ``Add`` whose (first) producer is a convolution can be folded
    into that convolution's epilogue.
    """
    count = 0
    for op in graph.operators():
        if isinstance(op, (Relu, Add)):
            producer = graph.nodes[op.inputs[0]]
            if isinstance(producer, Conv2d):
                count += 1
    return count


def apply_elementwise_fusion_discount(plan: ExecutionPlan, graph: Graph) -> ExecutionPlan:
    """Drop stand-alone fusable elementwise stages from a sequential plan.

    This models XLA/TensorRT pointwise fusion: the arithmetic of the fused
    operator is negligible next to the convolution it joins, but the saved
    kernel launch and activation round-trip are not.
    """
    fusable: set[str] = set()
    for op in graph.operators():
        if isinstance(op, (Relu, Add)) and isinstance(graph.nodes[op.inputs[0]], Conv2d):
            fusable.add(op.name)
    if not fusable:
        return plan
    kept = [
        stage
        for stage in plan.stages
        if not (len(stage.groups) == 1 and len(stage.groups[0]) == 1
                and stage.groups[0][0].name in fusable)
    ]
    return ExecutionPlan(name=plan.name, stages=kept, batch_size=plan.batch_size)
