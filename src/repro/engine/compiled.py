"""Compiled-model artifacts: what an :class:`~repro.engine.Engine` produces.

A :class:`CompiledModel` bundles every artifact of one staged compilation —
the (possibly pass-optimised) graph, the schedule the DP search found for it,
the lowered :class:`~repro.runtime.executor.ExecutionPlan`, and the per-stage
:class:`CompileStats` — bound to the device and kernel profile it was compiled
for.  It is the unit of reuse across the system: the engine caches them per
graph fingerprint, the serve registry persists them to disk, and experiments
measure them.

Serialisation (:meth:`CompiledModel.save` / :meth:`CompiledModel.load`) writes
a single JSON document containing the *full* artifact set — graph structure,
schedule, provenance fingerprints and compile stats — so a warm start rebuilds
an executable model with **zero** scheduler searches: loading re-lowers the
schedule (cheap, deterministic) instead of re-searching it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.dp_scheduler import ScheduleResult
from ..core.lowering import lower_schedule
from ..core.schedule import Schedule
from ..hardware.device import DeviceSpec, get_device
from ..hardware.kernel import CUDNN_PROFILE, KERNEL_PROFILES, KernelProfile
from ..ir.fingerprint import graph_fingerprint
from ..ir.graph import Graph
from ..ir.serialization import graph_from_dict, graph_to_dict
from ..runtime.executor import ExecutionPlan, ExecutionResult, Executor
from .stages import node_digest

__all__ = ["StageTiming", "CompileStats", "BlockRecord", "CompiledModel", "ARTIFACT_FORMAT"]

#: Marker identifying a persisted compiled-model artifact (vs. a bare
#: schedule document, which has no ``format`` key).
ARTIFACT_FORMAT = "repro/compiled-model"
ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class BlockRecord:
    """Where one block's stages live inside a compiled schedule.

    ``digest`` is the name-sensitive :func:`repro.engine.stages.block_digest`
    of the block at compile time; ``start``/``count`` delimit the block's
    slice of the schedule's stage list.  The engine's incremental path matches
    these records against a changed graph's blocks to splice unchanged stages
    instead of re-searching them.  Absent from pre-existing artifacts (the
    field was added without a version bump); loaders treat a missing list as
    "no incremental reuse possible", never as an error.
    """

    name: str
    digest: str
    start: int
    count: int
    latency_ms: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "digest": self.digest,
            "start": self.start,
            "count": self.count,
            "latency_ms": self.latency_ms,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BlockRecord":
        return cls(
            name=data["name"],
            digest=data["digest"],
            start=int(data["start"]),
            count=int(data["count"]),
            latency_ms=float(data.get("latency_ms", 0.0)),
        )


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock time and summary detail of one compile stage."""

    stage: str
    elapsed_s: float
    detail: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-clean dict form (artifact serialisation)."""
        return {"stage": self.stage, "elapsed_s": self.elapsed_s, "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StageTiming":
        """Rebuild from :meth:`as_dict` output."""
        return cls(
            stage=data["stage"],
            elapsed_s=float(data["elapsed_s"]),
            detail=dict(data.get("detail", {})),
        )


@dataclass
class CompileStats:
    """Per-stage statistics of one staged compilation.

    ``searched`` distinguishes a compile that actually ran the DP search from
    an artifact loaded off disk (where the recorded stages describe the
    *original* compile, not the load).
    """

    stages: list[StageTiming] = field(default_factory=list)
    source_fingerprint: str = ""
    optimized_fingerprint: str = ""
    operators_in: int = 0
    operators_out: int = 0
    num_measurements: int = 0
    profiling_gpu_ms: float = 0.0
    searched: bool = True

    @property
    def elapsed_s(self) -> float:
        """Total wall-clock time over all recorded stages."""
        return sum(stage.elapsed_s for stage in self.stages)

    def stage(self, name: str) -> StageTiming | None:
        """The recorded timing of the named stage, if present."""
        for stage in self.stages:
            if stage.stage == name:
                return stage
        return None

    def stage_elapsed_s(self, name: str) -> float:
        """Wall-clock seconds of the named stage (0.0 when not recorded)."""
        timing = self.stage(name)
        return timing.elapsed_s if timing is not None else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-clean dict form (artifact serialisation)."""
        return {
            "stages": [stage.as_dict() for stage in self.stages],
            "source_fingerprint": self.source_fingerprint,
            "optimized_fingerprint": self.optimized_fingerprint,
            "operators_in": self.operators_in,
            "operators_out": self.operators_out,
            "num_measurements": self.num_measurements,
            "profiling_gpu_ms": self.profiling_gpu_ms,
            "searched": self.searched,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "CompileStats":
        """Rebuild from :meth:`as_dict` output (tolerates missing fields)."""
        if not data:
            return cls(searched=False)
        return cls(
            stages=[StageTiming.from_dict(s) for s in data.get("stages", [])],
            source_fingerprint=data.get("source_fingerprint", ""),
            optimized_fingerprint=data.get("optimized_fingerprint", ""),
            operators_in=int(data.get("operators_in", 0)),
            operators_out=int(data.get("operators_out", 0)),
            num_measurements=int(data.get("num_measurements", 0)),
            profiling_gpu_ms=float(data.get("profiling_gpu_ms", 0.0)),
            searched=bool(data.get("searched", True)),
        )

    def describe(self) -> str:
        """Human-readable per-stage timing breakdown."""
        lines = [
            f"compile: {self.operators_in} -> {self.operators_out} operators, "
            f"{self.elapsed_s * 1e3:.2f} ms total"
            + ("" if self.searched else " (loaded from artifact)")
        ]
        for stage in self.stages:
            detail = ", ".join(f"{k}={v}" for k, v in stage.detail.items())
            lines.append(f"  {stage.stage:>8s}: {stage.elapsed_s * 1e3:8.2f} ms  {detail}")
        return "\n".join(lines)


@dataclass(eq=False)
class CompiledModel:
    """Every artifact of one compilation, ready to execute or persist.

    ``graph`` is the graph the schedule refers to — the *optimized* graph when
    the engine's pass stage ran, otherwise the input graph itself.  The
    ``source_*`` fields identify the graph that went *into* the pipeline, so
    caches and registries can look artifacts up by what the caller has in
    hand.
    """

    graph: Graph
    schedule: Schedule
    plan: ExecutionPlan
    device: DeviceSpec
    profile: KernelProfile
    variant: str
    stats: CompileStats
    source_graph_name: str
    source_node_digest: str
    source_fingerprint: str
    #: Structural fingerprint of ``graph`` (the compiled form).
    fingerprint: str
    #: Full DP-search result when this model was compiled in-process;
    #: ``None`` after :meth:`load` (searches are exactly what loading avoids).
    search: ScheduleResult | None = field(default=None, repr=False)
    #: Per-block digests + schedule spans, for incremental recompilation.
    #: Empty when unknown (pre-existing artifacts, :meth:`from_schedule`).
    blocks: list[BlockRecord] = field(default_factory=list)
    _execution: ExecutionResult | None = field(default=None, init=False, repr=False)

    # ------------------------------------------------------------- identity
    @property
    def model(self) -> str:
        """Name of the compiled graph (the registry's model key)."""
        return self.graph.name

    @property
    def batch_size(self) -> int:
        """Batch size the graph (and hence the schedule) is specialised for."""
        return self.graph.batch_size

    # ------------------------------------------------------------ execution
    def execute(self, profile: bool = False) -> ExecutionResult:
        """Run one inference of the plan on the compiled-for device.

        With ``profile=True`` the executor records the per-interval occupancy
        timeline (kernel events, active warps) and a *fresh* result is
        returned each call; the default is the cached, trace-free execution —
        the simulation is deterministic, so it runs at most once.
        """
        if profile:
            return Executor(self.device, self.profile, record_trace=True).run(self.plan)
        if self._execution is None:
            self._execution = Executor(self.device, self.profile).run(self.plan)
        return self._execution

    def schedule_result(self) -> ScheduleResult:
        """The DP-search result, tolerant of warm-started artifacts.

        An artifact loaded off disk carries no in-process search
        (``self.search is None``); this returns an empty stand-in (zero
        block stats / transitions / elapsed time — exactly what the load
        cost) so result-consuming code works on both compile paths.
        """
        if self.search is None:
            return ScheduleResult(schedule=self.schedule, graph=self.graph)
        return self.search

    def latency_ms(self) -> float:
        """End-to-end latency (ms) of one inference (cached measurement)."""
        return self.execute().latency_ms

    def throughput(self) -> float:
        """Throughput in samples/s of one inference (cached measurement)."""
        return self.execute().throughput()

    # -------------------------------------------------------- serialisation
    @staticmethod
    def is_artifact(data: Any) -> bool:
        """Whether a decoded JSON document is a compiled-model artifact."""
        return isinstance(data, dict) and data.get("format") == ARTIFACT_FORMAT

    def to_dict(self) -> dict[str, Any]:
        """The full artifact as one JSON-clean dict."""
        return {
            "format": ARTIFACT_FORMAT,
            "format_version": ARTIFACT_VERSION,
            "device": self.device.name,
            "profile": self.profile.name,
            "variant": self.variant,
            "source": {
                "graph_name": self.source_graph_name,
                "node_digest": self.source_node_digest,
                "fingerprint": self.source_fingerprint,
            },
            "fingerprint": self.fingerprint,
            "graph": graph_to_dict(self.graph),
            "schedule": self.schedule.to_dict(),
            "stats": self.stats.as_dict(),
            "blocks": [record.as_dict() for record in self.blocks],
        }

    @classmethod
    def from_dict(
        cls,
        data: dict[str, Any],
        device: DeviceSpec | None = None,
        profile: KernelProfile | None = None,
    ) -> "CompiledModel":
        """Rebuild a compiled model from :meth:`to_dict` output.

        The graph is re-validated and the schedule re-lowered (deterministic,
        no searches).  ``device`` / ``profile`` override the persisted names —
        needed when the artifact was compiled for a device or kernel profile
        that is not in the built-in registries.
        """
        if not cls.is_artifact(data):
            raise ValueError("not a compiled-model artifact (missing format marker)")
        version = data.get("format_version")
        if version != ARTIFACT_VERSION:
            raise ValueError(f"unsupported compiled-model artifact version {version!r}")
        if device is None:
            device = get_device(data["device"])
        if profile is None:
            name = data.get("profile", "")
            if name not in KERNEL_PROFILES:
                raise ValueError(
                    f"artifact uses unknown kernel profile {name!r}; pass profile= "
                    f"explicitly (known: {sorted(KERNEL_PROFILES)})"
                )
            profile = KERNEL_PROFILES[name]
        graph = graph_from_dict(data["graph"])
        schedule = Schedule.from_dict(data["schedule"])
        plan = lower_schedule(graph, schedule)
        source = data.get("source", {})
        stats = CompileStats.from_dict(data.get("stats"))
        # The recorded stage timings describe the original compile, but *this*
        # object was loaded, not searched — keep the flag honest per process.
        stats.searched = False
        return cls(
            graph=graph,
            schedule=schedule,
            plan=plan,
            device=device,
            profile=profile,
            variant=data.get("variant", "ios-both"),
            stats=stats,
            source_graph_name=source.get("graph_name", graph.name),
            source_node_digest=source.get("node_digest", node_digest(graph)),
            source_fingerprint=source.get("fingerprint", ""),
            fingerprint=data.get("fingerprint", graph_fingerprint(graph)),
            blocks=[BlockRecord.from_dict(b) for b in data.get("blocks", [])],
        )

    def save(self, path: str | Path) -> Path:
        """Persist the full artifact set as one JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(
        cls,
        path: str | Path,
        device: DeviceSpec | None = None,
        profile: KernelProfile | None = None,
    ) -> "CompiledModel":
        """Load a persisted artifact; zero scheduler searches are performed."""
        return cls.from_dict(json.loads(Path(path).read_text()), device=device, profile=profile)

    # --------------------------------------------------------- construction
    @classmethod
    def from_schedule(
        cls,
        graph: Graph,
        schedule: Schedule,
        device: DeviceSpec,
        profile: KernelProfile = CUDNN_PROFILE,
        variant: str = "ios-both",
        search: ScheduleResult | None = None,
    ) -> "CompiledModel":
        """Wrap an existing schedule (e.g. handed to ``ScheduleRegistry.put``).

        Lowers (and thereby validates) the schedule against ``graph``; the
        graph is treated as both source and compiled form.
        """
        start = time.perf_counter()
        plan = lower_schedule(graph, schedule)
        fingerprint = graph_fingerprint(graph)
        num_ops = len(graph.schedulable_names())
        stats = CompileStats(
            stages=[
                StageTiming(
                    "lower",
                    time.perf_counter() - start,
                    {"stages": plan.num_stages(), "kernel_operators": plan.num_kernel_operators()},
                )
            ],
            source_fingerprint=fingerprint,
            optimized_fingerprint=fingerprint,
            operators_in=num_ops,
            operators_out=num_ops,
            searched=False,
        )
        return cls(
            graph=graph,
            schedule=schedule,
            plan=plan,
            device=device,
            profile=profile,
            variant=variant,
            stats=stats,
            source_graph_name=graph.name,
            source_node_digest=node_digest(graph),
            source_fingerprint=fingerprint,
            fingerprint=fingerprint,
            search=search,
        )

    # -------------------------------------------------------------- display
    def describe(self) -> str:
        """Human-readable summary of the artifact set."""
        header = (
            f"CompiledModel({self.model!r}, batch {self.batch_size}, "
            f"{self.device.name}, {self.variant}): "
            f"{len(self.schedule)} stages, fingerprint {self.fingerprint}"
        )
        return "\n".join([header, self.stats.describe()])
