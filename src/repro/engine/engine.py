"""The Engine: one staged compile pipeline behind every entry point.

``Engine(device, ...)`` fixes the compilation environment — device, kernel
profile, IOS variant / pruning, optional pass pipeline — and
``engine.compile(graph)`` runs the explicit staged pipeline

    Graph --[passes]--> optimized Graph --[schedule]--> Schedule
          --[lower]--> ExecutionPlan

returning a :class:`~repro.engine.compiled.CompiledModel` that carries every
artifact plus per-stage timing.  Compiles are memoised per graph identity
(name + node names + structural fingerprint), so repeated compiles of the
same structure — every figure run, every serve-ladder rung, every framework
comparison — pay for the DP search once per engine.

:func:`get_engine` maintains a process-wide pool of engines keyed by
``(device, variant, pruning, profile, passes)``; the experiment harness and
the CLI fetch engines from it so the compile cache is shared across figure
runs in one process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from ..core.cost_model import SimulatedCostModel
from ..core.dp_scheduler import (
    BlockStats,
    IOSScheduler,
    SchedulerConfig,
    normalize_variant,
    resolve_compile_jobs,
    variant_label,
)
from ..core.endings import PruningStrategy
from ..core.lowering import lower_schedule
from ..core.width import maximum_antichain_size
from ..hardware.device import DeviceSpec, get_device
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from ..obs.trace import NULL_TRACER, Tracer
from .compiled import BlockRecord, CompiledModel, CompileStats, StageTiming
from .stages import apply_passes, block_digest, graph_identity

__all__ = ["Engine", "EngineStats", "get_engine", "get_engines", "clear_engine_pool"]


@dataclass
class EngineStats:
    """Where an engine's compile requests were satisfied.

    ``searches`` counts compiles that actually ran the DP search — the
    expensive event the cache and artifact loading exist to avoid.  The
    block-level counters break one such compile down: ``block_searches``
    blocks were searched (inline or in a worker process), ``block_memo_hits``
    came from the process-wide schedule memo, and ``blocks_spliced`` were
    carried over unchanged from this engine's previous compile of the same
    graph (incremental recompilation).
    """

    compiles: int = 0
    cache_hits: int = 0
    searches: int = 0
    loads: int = 0
    block_searches: int = 0
    block_memo_hits: int = 0
    blocks_spliced: int = 0

    def as_dict(self) -> dict[str, int]:
        """All counters as one flat dict (reports, benchmarks)."""
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "searches": self.searches,
            "loads": self.loads,
            "block_searches": self.block_searches,
            "block_memo_hits": self.block_memo_hits,
            "blocks_spliced": self.blocks_spliced,
        }


class Engine:
    """Staged compile pipeline for one (device, variant, profile) environment.

    Parameters
    ----------
    device:
        Device preset name or a :class:`~repro.hardware.device.DeviceSpec`.
    passes:
        Pass stage configuration: ``False`` (default) compiles graphs as
        given, ``True`` runs :func:`repro.passes.default_pipeline` first, a
        :class:`~repro.passes.PassManager` (or list of pass names) runs that
        pipeline.
    variant:
        IOS variant (any spelling :func:`~repro.core.normalize_variant`
        accepts); default ``ios-both``.
    pruning:
        Optional :class:`~repro.core.endings.PruningStrategy` override.
    config:
        Full :class:`~repro.core.SchedulerConfig`; mutually exclusive with
        ``variant``/``pruning``.
    profile:
        Kernel-library profile for both the search cost model and execution.
    scheduler:
        Inject a pre-built :class:`~repro.core.IOSScheduler` (tests and the
        serve registry's ``scheduler_factory`` use this); its config becomes
        the engine's config.
    jobs:
        Worker processes for cold multi-block searches: ``1`` is serial,
        ``N > 1`` searches independent blocks in ``N`` processes, ``0`` /
        ``"auto"`` uses every CPU.  ``None`` (default) reads the
        ``REPRO_COMPILE_JOBS`` environment variable at each compile.
        Schedules are identical either way.
    tracer:
        Optional :class:`~repro.obs.Tracer`; each compile then records its
        Graph → Schedule → Plan stages as wall-clock spans on the
        ``compile/stages`` track (pass iterations land on ``compile/passes``).
        The default :data:`~repro.obs.trace.NULL_TRACER` records nothing and
        costs one truth test per compile.  The attribute is mutable — the
        serving registry re-points pooled engines at the run's tracer.

    Example::

        from repro.engine import Engine
        from repro.frontend import load

        engine = Engine("v100", passes=True)
        compiled = engine.compile(load("inception_v3"))
        print(compiled.latency_ms(), compiled.stats.describe())
        compiled.save("inception.compiled.json")   # warm-start artifact
    """

    def __init__(
        self,
        device: str | DeviceSpec,
        *,
        passes=False,
        variant: str | None = None,
        pruning: PruningStrategy | None = None,
        config: SchedulerConfig | None = None,
        profile: KernelProfile = CUDNN_PROFILE,
        scheduler: IOSScheduler | None = None,
        tracer: Tracer | None = None,
        jobs: int | str | None = None,
    ):
        self.device = get_device(device) if isinstance(device, str) else device
        self.profile = profile
        self.passes = passes
        self.jobs = jobs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if scheduler is not None:
            if config is not None or variant is not None or pruning is not None:
                raise ValueError("pass either scheduler= or config=/variant=/pruning=, not both")
            self.scheduler = scheduler
            self.config = scheduler.config
            self.variant = variant_label(self.config)
        else:
            if config is not None:
                if variant is not None or pruning is not None:
                    raise ValueError("pass either config= or variant=/pruning=, not both")
                self.config = config
                self.variant = variant_label(config)
            else:
                self.variant = normalize_variant(variant or "ios-both")
                self.config = SchedulerConfig.variant(self.variant, pruning=pruning)
            self.scheduler = IOSScheduler(
                SimulatedCostModel(self.device, profile), self.config
            )
        self.stats = EngineStats()
        self._cache: dict[tuple[str, str, str], CompiledModel] = {}
        #: Latest compiled model per *optimized* graph name, for incremental
        #: recompilation: a changed graph re-searches only the blocks whose
        #: digests differ and splices the rest from here.
        self._prior: dict[str, CompiledModel] = {}

    # ------------------------------------------------------------ properties
    @property
    def cost_model(self):
        """The scheduler's cost model (cumulative measurement accounting)."""
        return self.scheduler.cost_model

    # --------------------------------------------------------------- compile
    def compile(self, graph: Graph, *, use_cache: bool = True) -> CompiledModel:
        """Run the staged pipeline on ``graph`` and return the compiled model.

        Cache hits return the previously compiled model object — treat it as
        immutable, exactly like a built model graph.
        """
        tracer = self.tracer
        key = graph_identity(graph)
        if use_cache:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                if tracer:
                    tracer.instant(
                        "compile-cache-hit", "compile/stages", category="compile",
                        args={"graph": graph.name, "device": self.device.name},
                    )
                return cached

        timings: list[StageTiming] = []
        operators_in = len(graph.schedulable_names())

        # Stage 1: Graph -> optimized Graph.
        span_start = tracer.now_ms() if tracer else 0.0
        start = time.perf_counter()
        optimized, pass_stats = apply_passes(graph, self.passes, tracer=tracer)
        operators_out = (
            len(optimized.schedulable_names()) if optimized is not graph else operators_in
        )
        details = {
            "enabled": bool(self.passes),
            "operators_in": operators_in,
            "operators_out": operators_out,
            "rewrites": sum(s.rewrites for s in pass_stats) if pass_stats else 0,
        }
        timings.append(StageTiming("passes", time.perf_counter() - start, details))
        if tracer:
            tracer.add_span(
                "passes", "compile/stages", span_start, tracer.now_ms(),
                category="compile", args={"graph": graph.name, **details},
            )

        # Stage 2: optimized Graph -> Schedule (the DP search).
        cost_model = self.cost_model
        measurements_before = getattr(cost_model, "num_measurements", 0)
        profiler = getattr(cost_model, "profiler", None)
        gpu_ms_before = getattr(profiler, "total_profiling_ms", 0.0)
        span_start = tracer.now_ms() if tracer else 0.0
        start = time.perf_counter()
        digests = {block.name: block_digest(optimized, block) for block in optimized.blocks}
        precomputed = self._spliceable_blocks(optimized, digests) if use_cache else {}
        jobs = resolve_compile_jobs(self.jobs)
        result = self.scheduler.optimize_graph(
            optimized, jobs=jobs, precomputed=precomputed, use_memo=use_cache
        )
        if pass_stats is not None:
            result.pass_stats = pass_stats
        num_measurements = getattr(cost_model, "num_measurements", 0) - measurements_before
        profiling_gpu_ms = getattr(profiler, "total_profiling_ms", 0.0) - gpu_ms_before
        sources = [stats.source for stats in result.block_stats]
        block_searches = sum(1 for s in sources if s in ("search", "parallel"))
        block_memo_hits = sum(1 for s in sources if s == "memo")
        blocks_spliced = sum(1 for s in sources if s == "spliced")
        self.stats.block_searches += block_searches
        self.stats.block_memo_hits += block_memo_hits
        self.stats.blocks_spliced += blocks_spliced
        details = {
            "blocks": len(result.block_stats),
            "transitions": result.total_transitions,
            "measurements": num_measurements,
            "predicted_latency_ms": result.predicted_latency_ms,
            "block_searches": block_searches,
            "block_memo_hits": block_memo_hits,
            "blocks_spliced": blocks_spliced,
            "jobs": jobs,
        }
        timings.append(StageTiming("schedule", time.perf_counter() - start, details))
        if tracer:
            tracer.add_span(
                "schedule", "compile/stages", span_start, tracer.now_ms(),
                category="compile",
                args={"graph": graph.name, "device": self.device.name, **details},
            )

        # Stage 3: Schedule -> ExecutionPlan.
        span_start = tracer.now_ms() if tracer else 0.0
        start = time.perf_counter()
        plan = lower_schedule(optimized, result.schedule)
        details = {"stages": plan.num_stages(), "kernel_operators": plan.num_kernel_operators()}
        timings.append(StageTiming("lower", time.perf_counter() - start, details))
        if tracer:
            tracer.add_span(
                "lower", "compile/stages", span_start, tracer.now_ms(),
                category="compile", args={"graph": graph.name, **details},
            )

        source_fingerprint = key[2]
        stats = CompileStats(
            stages=timings,
            source_fingerprint=source_fingerprint,
            optimized_fingerprint=(
                optimized.fingerprint() if optimized is not graph else source_fingerprint
            ),
            operators_in=operators_in,
            operators_out=operators_out,
            num_measurements=num_measurements,
            profiling_gpu_ms=profiling_gpu_ms,
        )
        block_records: list[BlockRecord] = []
        cursor = 0
        for block_stats in result.block_stats:
            block_records.append(
                BlockRecord(
                    name=block_stats.block_name,
                    digest=digests.get(block_stats.block_name, ""),
                    start=cursor,
                    count=block_stats.num_stages,
                    latency_ms=block_stats.optimized_latency_ms,
                )
            )
            cursor += block_stats.num_stages

        compiled = CompiledModel(
            graph=optimized,
            schedule=result.schedule,
            plan=plan,
            device=self.device,
            profile=self.profile,
            variant=self.variant,
            stats=stats,
            source_graph_name=key[0],
            source_node_digest=key[1],
            source_fingerprint=source_fingerprint,
            fingerprint=stats.optimized_fingerprint,
            search=result,
            blocks=block_records,
        )
        self.stats.compiles += 1
        self.stats.searches += 1
        if use_cache:
            self._cache[key] = compiled
            self._prior[optimized.name] = compiled
        return compiled

    def _spliceable_blocks(
        self, optimized: Graph, digests: dict[str, str]
    ) -> dict[str, tuple[list, BlockStats]]:
        """Stages reusable verbatim from the prior compile of this graph name.

        Matches the new graph's block digests against the prior compiled
        model's :class:`~repro.engine.compiled.BlockRecord` entries — by
        digest, not name, so renamed or reordered blocks still match.  The
        digest covers operator names, attributes, wiring and boundary shapes,
        so a matching block's prior stage slice is valid verbatim; only dirty
        blocks reach the scheduler.
        """
        prior = self._prior.get(optimized.name)
        if prior is None or not prior.blocks:
            return {}
        by_digest = {record.digest: record for record in prior.blocks if record.digest}
        precomputed: dict[str, tuple[list, BlockStats]] = {}
        for block in optimized.blocks:
            record = by_digest.get(digests.get(block.name, ""))
            if record is None:
                continue
            stages = prior.schedule.stages[record.start : record.start + record.count]
            op_names = optimized.schedulable_names(block)
            if record.count and not stages:
                continue
            stats = BlockStats(
                block_name=block.name,
                num_operators=len(op_names),
                width=maximum_antichain_size(optimized, op_names),
                optimized_latency_ms=record.latency_ms,
                reused_from=f"prior:{record.name}",
                num_stages=len(stages),
                source="spliced",
            )
            precomputed[block.name] = (list(stages), stats)
        return precomputed

    def compile_model(self, name: str, batch_size: int = 1, **kwargs) -> CompiledModel:
        """Build a zoo model and compile it (convenience wrapper)."""
        from ..frontend import load

        return self.compile(load(name, batch_size=batch_size, **kwargs))

    # ------------------------------------------------------------ warm start
    def load(self, path: str | Path) -> CompiledModel:
        """Warm-start: load a persisted artifact into this engine's cache.

        The artifact must have been compiled for this engine's device and
        variant — reusing a schedule searched for different hardware or a
        different strategy set would silently serve the wrong plan.
        """
        import json

        data = json.loads(Path(path).read_text())
        saved_device = data.get("device") if isinstance(data, dict) else None
        if saved_device != self.device.name:
            raise ValueError(
                f"artifact {path} was compiled for device {saved_device!r}; "
                f"this engine compiles for {self.device.name!r}"
            )
        saved_profile = data.get("profile") if isinstance(data, dict) else None
        if saved_profile != self.profile.name:
            raise ValueError(
                f"artifact {path} was compiled with kernel profile "
                f"{saved_profile!r}; this engine compiles with {self.profile.name!r}"
            )
        compiled = CompiledModel.from_dict(data, device=self.device, profile=self.profile)
        if compiled.variant != self.variant:
            raise ValueError(
                f"artifact {path} was compiled for variant {compiled.variant!r}; "
                f"this engine compiles {self.variant!r}"
            )
        self.stats.loads += 1
        self._cache[
            (compiled.source_graph_name, compiled.source_node_digest, compiled.source_fingerprint)
        ] = compiled
        if compiled.blocks:
            # A loaded artifact with block records seeds the incremental path:
            # compiling a near-identical graph re-searches only changed blocks.
            self._prior[compiled.graph.name] = compiled
        return compiled

    # ----------------------------------------------------------------- cache
    def cached(self, graph: Graph) -> CompiledModel | None:
        """The cached compiled model for ``graph``, if any (no compilation)."""
        return self._cache.get(graph_identity(graph))

    def clear_cache(self) -> None:
        """Drop every cached compiled model (the stats counters remain)."""
        self._cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Engine(device={self.device.name!r}, variant={self.variant!r}, "
            f"passes={bool(self.passes)}, cached={len(self._cache)})"
        )


# --------------------------------------------------------------------------- #
# Process-wide engine pool                                                     #
# --------------------------------------------------------------------------- #
_ENGINE_POOL: dict[tuple, Engine] = {}


def _passes_pool_key(passes):
    if isinstance(passes, bool):
        return passes
    if isinstance(passes, (list, tuple)) and all(isinstance(p, str) for p in passes):
        return tuple(passes)
    signature = getattr(passes, "signature", None)
    if callable(signature):
        return ("manager", signature())
    raise TypeError(
        "get_engine() pools engines only for passes given as a bool, a list of "
        "pass names, or a PassManager; construct Engine(...) directly instead"
    )


def get_engine(
    device: str | DeviceSpec,
    *,
    passes=False,
    variant: str | None = None,
    pruning: PruningStrategy | None = None,
    profile: KernelProfile = CUDNN_PROFILE,
) -> Engine:
    """One engine per (device, variant, pruning, profile, passes), pooled.

    Experiments, the CLI and the one-call conveniences fetch engines here so
    that every figure run in a process shares one compile cache per
    environment.  Engines are stateful but deterministic; sharing is safe.
    """
    spec = get_device(device) if isinstance(device, str) else device
    label = normalize_variant(variant or "ios-both")
    prune = pruning if pruning is not None else PruningStrategy(3, 8)
    # Key on the frozen DeviceSpec itself, not its name: a tweaked preset
    # (e.g. get_device("v100").scaled(num_sms=40)) must never alias the real
    # one.  KernelProfile holds a dict (unhashable), so it is keyed by name
    # plus object identity — the pooled engine keeps the profile alive, so
    # the id cannot be recycled while the entry exists.
    key = (spec, label, prune, (profile.name, id(profile)), _passes_pool_key(passes))
    engine = _ENGINE_POOL.get(key)
    if engine is None:
        engine = Engine(spec, passes=passes, variant=label, pruning=prune, profile=profile)
        _ENGINE_POOL[key] = engine
    return engine


def get_engines(
    devices,
    *,
    passes=False,
    variant: str | None = None,
    pruning: PruningStrategy | None = None,
    profile: KernelProfile = CUDNN_PROFILE,
) -> dict[str, Engine]:
    """Pooled engines for several devices at once (fleet compile fan-out).

    The multi-device companion of :func:`get_engine`: resolves each entry of
    ``devices`` (names, :class:`~repro.hardware.device.DeviceSpec` objects,
    or a :class:`~repro.serve.fleet.FleetSpec` — anything with
    ``device_types()``) and returns ``{device_name: Engine}`` in a stable
    order, deduplicating replicas.  Compiling one graph through every engine
    of a mixed fleet yields the per-device
    :class:`~repro.engine.compiled.CompiledModel` set that device-aware
    routing predicts latencies from.

    Parameters
    ----------
    devices:
        Iterable of device names/specs, or an object exposing
        ``device_types()`` (e.g. ``FleetSpec.parse("k80:2,v100:4")``).
    passes, variant, pruning, profile:
        Shared compile environment, exactly as :func:`get_engine`.
    """
    device_types = getattr(devices, "device_types", None)
    if callable(device_types):
        devices = device_types()
    engines: dict[str, Engine] = {}
    for device in devices:
        spec = get_device(device) if isinstance(device, str) else device
        if spec.name not in engines:
            engines[spec.name] = get_engine(
                spec, passes=passes, variant=variant, pruning=pruning, profile=profile
            )
    return engines


def clear_engine_pool() -> None:
    """Drop every pooled engine (tests and benchmarks)."""
    _ENGINE_POOL.clear()
