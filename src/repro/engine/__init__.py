"""repro.engine — one compile pipeline (Engine → CompiledModel) behind every entry point.

Historically the system had four independent ways to turn a graph into a
measured schedule (``core.schedule_graph``, ``IOSScheduler.optimize_graph``
with inline passes, the frameworks' IOS engine, and the serve registry's
compile-on-miss), each wiring passes, scheduling, lowering and measurement
slightly differently.  This package replaces them with one explicit staged
pipeline::

    Graph --[passes]--> optimized Graph --[schedule]--> Schedule
          --[lower]--> ExecutionPlan

* :mod:`repro.engine.engine` — :class:`Engine` (the pipeline driver with a
  fingerprint-keyed compile cache) and :func:`get_engine` (a process-wide
  engine pool shared by the experiments and the CLI);
* :mod:`repro.engine.compiled` — :class:`CompiledModel` (all artifacts of one
  compilation: graph, schedule, execution plan, per-stage
  :class:`CompileStats`) with full-artifact ``save()``/``load()`` so warm
  starts perform **zero** scheduler searches;
* :mod:`repro.engine.stages` — the individual stage helpers
  (:func:`apply_passes` is also what ``load(..., optimize=True)`` runs).

Quick start::

    from repro.engine import Engine
    from repro.frontend import load

    engine = Engine("v100", passes=True)            # fix the environment once
    compiled = engine.compile(load("inception_v3"))
    print(compiled.latency_ms(), compiled.throughput())
    print(compiled.stats.describe())                # per-stage timing
    compiled.save("inception.compiled.json")        # warm-start artifact

    warm = Engine("v100", passes=True)
    warm.load("inception.compiled.json")            # zero scheduler searches

Every runtime path — CLI figure runs, ``ios-bench serve``, the frameworks
comparison, the registry's compile-on-miss — goes through
:meth:`Engine.compile`; the legacy one-call entry points
(``repro.core.schedule_graph`` and ``IOSScheduler.optimize_graph(passes=)``)
are deprecated shims over it.
"""

from ..core.dp_scheduler import (
    UnknownVariantError,
    VALID_VARIANTS,
    normalize_variant,
    variant_label,
)
from .compiled import ARTIFACT_FORMAT, BlockRecord, CompiledModel, CompileStats, StageTiming
from .engine import Engine, EngineStats, clear_engine_pool, get_engine, get_engines
from .stages import apply_passes, block_digest, graph_identity, node_digest

__all__ = [
    "Engine",
    "EngineStats",
    "BlockRecord",
    "CompiledModel",
    "CompileStats",
    "StageTiming",
    "ARTIFACT_FORMAT",
    "get_engine",
    "get_engines",
    "clear_engine_pool",
    "apply_passes",
    "block_digest",
    "graph_identity",
    "node_digest",
    "normalize_variant",
    "variant_label",
    "UnknownVariantError",
    "VALID_VARIANTS",
]
