"""Individual stages of the compile pipeline.

The engine turns a graph into a running model in explicit stages::

    Graph --[passes]--> optimized Graph --[schedule]--> Schedule
          --[lower]--> ExecutionPlan

Each helper here implements one stage as a plain function so the stages are
individually reusable: :func:`repro.frontend.load` runs the pass stage on
its own (``load(..., optimize=True)``), and :class:`repro.engine.Engine`
chains all of them with per-stage timing.
"""

from __future__ import annotations

import hashlib

from ..ir.graph import Block, Graph

__all__ = ["apply_passes", "node_digest", "block_digest", "graph_identity"]


def apply_passes(graph: Graph, passes, *, tracer=None) -> tuple[Graph, list | None]:
    """The pass stage: optionally rewrite ``graph`` before scheduling.

    ``passes`` follows the convention used everywhere in the system: ``False``
    / ``None`` skips rewriting (the graph is returned unchanged), ``True``
    runs :func:`repro.passes.default_pipeline`, and a
    :class:`~repro.passes.PassManager` (or list of pass names) runs that
    pipeline instead.  Returns ``(graph, pass_stats)`` where ``pass_stats`` is
    ``None`` when no pipeline ran.  A truthy ``tracer`` records one span per
    pipeline iteration on the ``compile/passes`` track.

    Results are memoised per graph fingerprint by
    :func:`repro.passes.optimize_graph`, so repeated calls on the same
    structure are cheap.
    """
    if passes is None or passes is False:
        return graph, None
    # Imported lazily so the engine stays importable without repro.passes.
    from ..passes import optimize_graph

    result = optimize_graph(graph, None if passes is True else passes, tracer=tracer)
    return result.graph, result.stats


def node_digest(graph: Graph) -> str:
    """Stable short digest of the graph's node names (insertion order).

    :func:`repro.ir.graph_fingerprint` is deliberately rename-invariant, but
    schedules reference operators *by name* — so a compile cache (or a
    persisted artifact) must also key on the names.  This digest is stable
    across processes, unlike ``hash()``.
    """
    payload = "\n".join(graph.nodes)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def block_digest(graph: Graph, block: Block) -> str:
    """Stable, *name-sensitive* digest of one block of a graph.

    Covers everything a block's stage schedule can depend on: the schedulable
    operator names (schedules reference operators by name), their kinds and
    attributes, local wiring, the shapes of inputs arriving from outside the
    block, and output shapes.  Two blocks with equal digests are guaranteed to
    have identical optimal schedules *verbatim* — which is what lets the
    engine's incremental path splice a prior compile's stages for unchanged
    blocks without renaming anything.
    """
    op_names = graph.schedulable_names(block)
    block_set = set(op_names)
    lines = []
    for name in graph.topological_order(list(op_names)):
        op = graph.nodes[name]
        inputs = ",".join(
            p if p in block_set else f"ext:{graph.nodes[p].output_shape}"
            for p in op.inputs
        )
        attrs = ";".join(f"{k}={v}" for k, v in sorted(op.attrs().items()))
        lines.append(f"{name}|{op.kind}|{attrs}|{inputs}|{op.output_shape}")
    payload = "\n".join(lines)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def graph_identity(graph: Graph) -> tuple[str, str, str]:
    """Cache identity of a graph: ``(name, node digest, structural fingerprint)``.

    Two graphs with equal identity have the same name, the same operator
    names in the same order, and isomorphic structure — a compiled model for
    one is valid verbatim for the other.
    """
    return (graph.name, node_digest(graph), graph.fingerprint())
