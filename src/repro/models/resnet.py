"""ResNet family (He et al., 2016).

The paper notes (Section 5) that ResNet-34 / ResNet-50 offer very limited
inter-operator parallelism — only the downsample (projection) convolution of
the first block of each stage can run concurrently with the residual branch —
so IOS obtains merely 2-5 % speedup and ResNet is excluded from the main
benchmark suite.  We include the models to reproduce exactly that observation
(`benchmarks/bench_resnet_note.py`).
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.tensor import TensorShape
from .common import ModelSpec, register_model

__all__ = ["resnet_18", "resnet_34", "resnet_50", "basic_block", "bottleneck_block"]


def basic_block(
    builder: GraphBuilder,
    x: str,
    name: str,
    channels: int,
    stride: int = 1,
    downsample: bool = False,
) -> str:
    """ResNet basic block: two 3x3 convolutions and a residual addition."""
    with builder.block(name):
        out = builder.conv2d(f"{name}_conv1", x, out_channels=channels, kernel=3, stride=stride)
        out = builder.conv2d(f"{name}_conv2", out, out_channels=channels, kernel=3, activation=None)
        if downsample:
            shortcut = builder.conv2d(
                f"{name}_downsample", x, out_channels=channels, kernel=1, stride=stride,
                activation=None,
            )
        else:
            shortcut = x
        out = builder.add(f"{name}_add", [out, shortcut])
        return builder.relu(f"{name}_relu", out)


def bottleneck_block(
    builder: GraphBuilder,
    x: str,
    name: str,
    channels: int,
    stride: int = 1,
    downsample: bool = False,
    expansion: int = 4,
) -> str:
    """ResNet bottleneck block: 1x1 -> 3x3 -> 1x1 convolutions plus residual."""
    with builder.block(name):
        out = builder.conv2d(f"{name}_conv1", x, out_channels=channels, kernel=1)
        out = builder.conv2d(f"{name}_conv2", out, out_channels=channels, kernel=3, stride=stride)
        out = builder.conv2d(
            f"{name}_conv3", out, out_channels=channels * expansion, kernel=1, activation=None
        )
        if downsample:
            shortcut = builder.conv2d(
                f"{name}_downsample", x, out_channels=channels * expansion, kernel=1,
                stride=stride, activation=None,
            )
        else:
            shortcut = x
        out = builder.add(f"{name}_add", [out, shortcut])
        return builder.relu(f"{name}_relu", out)


def _resnet(
    name: str,
    layers: list[int],
    bottleneck: bool,
    batch_size: int,
    image_size: int,
    num_classes: int,
) -> Graph:
    builder = GraphBuilder(name, TensorShape(batch_size, 3, image_size, image_size))
    x = builder.input_name

    with builder.block("stem"):
        x = builder.conv2d("stem_conv", x, out_channels=64, kernel=7, stride=2, padding=3)
        x = builder.max_pool("stem_pool", x, kernel=3, stride=2, padding=1)

    block_fn = bottleneck_block if bottleneck else basic_block
    channels = 64
    for stage_index, num_blocks in enumerate(layers):
        for block_index in range(num_blocks):
            stride = 2 if stage_index > 0 and block_index == 0 else 1
            downsample = block_index == 0 and (bottleneck or stage_index > 0)
            x = block_fn(
                builder,
                x,
                f"stage{stage_index + 1}_block{block_index + 1}",
                channels,
                stride=stride,
                downsample=downsample,
            )
        channels *= 2

    with builder.block("head"):
        x = builder.global_avg_pool("head_pool", x)
        x = builder.flatten("head_flatten", x)
        builder.linear("head_fc", x, out_features=num_classes)

    return builder.build()


def resnet_18(batch_size: int = 1, image_size: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet-18 (basic blocks, layer plan 2-2-2-2)."""
    return _resnet("resnet_18", [2, 2, 2, 2], False, batch_size, image_size, num_classes)


def resnet_34(batch_size: int = 1, image_size: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet-34 (basic blocks, layer plan 3-4-6-3)."""
    return _resnet("resnet_34", [3, 4, 6, 3], False, batch_size, image_size, num_classes)


def resnet_50(batch_size: int = 1, image_size: int = 224, num_classes: int = 1000) -> Graph:
    """ResNet-50 (bottleneck blocks, layer plan 3-4-6-3)."""
    return _resnet("resnet_50", [3, 4, 6, 3], True, batch_size, image_size, num_classes)


for _name, _builder, _desc in [
    ("resnet_18", resnet_18, "ResNet-18 (He et al. 2016)"),
    ("resnet_34", resnet_34, "ResNet-34 (He et al. 2016)"),
    ("resnet_50", resnet_50, "ResNet-50 (He et al. 2016)"),
]:
    register_model(
        ModelSpec(
            name=_name,
            builder=_builder,
            description=_desc,
            default_image_size=224,
            operator_type="Conv-Relu",
        )
    )
