"""VGG-16 and AlexNet: the single-branch CNNs of the Figure 1 trend study.

These early networks consist of a handful of very large convolutions executed
strictly sequentially; their average FLOPs per convolution is two orders of
magnitude above NasNet's, which is the paper's evidence (Figure 1) that the
per-operator work shrank while devices grew — the utilisation gap IOS closes.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.tensor import TensorShape
from .common import ModelSpec, register_model

__all__ = ["vgg_16", "alexnet"]


def vgg_16(batch_size: int = 1, image_size: int = 224, num_classes: int = 1000) -> Graph:
    """VGG-16: 13 convolutions in five stages plus three fully-connected layers."""
    plan = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)]
    builder = GraphBuilder("vgg_16", TensorShape(batch_size, 3, image_size, image_size))
    x = builder.input_name
    for stage_index, (num_convs, channels) in enumerate(plan, start=1):
        with builder.block(f"stage{stage_index}"):
            for conv_index in range(1, num_convs + 1):
                x = builder.conv2d(
                    f"stage{stage_index}_conv{conv_index}", x, out_channels=channels, kernel=3
                )
            x = builder.max_pool(f"stage{stage_index}_pool", x, kernel=2, stride=2)
    with builder.block("classifier"):
        x = builder.flatten("flatten", x)
        x = builder.linear("fc1", x, out_features=4096, activation="relu")
        x = builder.linear("fc2", x, out_features=4096, activation="relu")
        builder.linear("fc3", x, out_features=num_classes)
    return builder.build()


def alexnet(batch_size: int = 1, image_size: int = 227, num_classes: int = 1000) -> Graph:
    """AlexNet: five convolutions and three fully-connected layers."""
    builder = GraphBuilder("alexnet", TensorShape(batch_size, 3, image_size, image_size))
    x = builder.input_name
    with builder.block("features"):
        x = builder.conv2d("conv1", x, out_channels=96, kernel=11, stride=4, padding=0)
        x = builder.max_pool("pool1", x, kernel=3, stride=2)
        x = builder.conv2d("conv2", x, out_channels=256, kernel=5, padding=2)
        x = builder.max_pool("pool2", x, kernel=3, stride=2)
        x = builder.conv2d("conv3", x, out_channels=384, kernel=3)
        x = builder.conv2d("conv4", x, out_channels=384, kernel=3)
        x = builder.conv2d("conv5", x, out_channels=256, kernel=3)
        x = builder.max_pool("pool5", x, kernel=3, stride=2)
    with builder.block("classifier"):
        x = builder.flatten("flatten", x)
        x = builder.linear("fc1", x, out_features=4096, activation="relu")
        x = builder.linear("fc2", x, out_features=4096, activation="relu")
        builder.linear("fc3", x, out_features=num_classes)
    return builder.build()


register_model(
    ModelSpec(
        name="vgg_16",
        builder=vgg_16,
        description="VGG-16 (Simonyan & Zisserman 2014), single-branch baseline",
        default_image_size=224,
        operator_type="Conv-Relu",
    )
)
register_model(
    ModelSpec(
        name="alexnet",
        builder=alexnet,
        description="AlexNet (Krizhevsky et al. 2012), single-branch baseline",
        default_image_size=227,
        operator_type="Conv-Relu",
    )
)
