"""SqueezeNet v1.0 (Iandola et al., 2016).

SqueezeNet is the smallest network in the paper's benchmark suite (Table 2:
10 blocks, "Conv-Relu" operators).  Its fire modules offer only modest
inter-operator parallelism (two expand convolutions per module), which is why
the greedy schedule — whose extra synchronisation is not amortised — actually
*hurts* SqueezeNet in Figure 6 while IOS still helps.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.tensor import TensorShape
from .common import ModelSpec, register_model

__all__ = ["squeezenet", "fire_module"]


def fire_module(
    builder: GraphBuilder,
    x: str,
    name: str,
    squeeze_channels: int,
    expand1x1_channels: int,
    expand3x3_channels: int,
    pool_after: bool = False,
) -> str:
    """A fire module: squeeze 1x1 -> (expand 1x1 || expand 3x3) -> concat.

    The two expand convolutions consume the same squeeze output, so they can
    either run concurrently (different streams) or be merged into one
    convolution whose 1x1 kernels are zero-padded to 3x3 — both options the
    IOS GENERATE STAGE procedure weighs against each other.
    """
    with builder.block(name):
        squeeze = builder.conv2d(f"{name}_squeeze1x1", x, out_channels=squeeze_channels, kernel=1)
        expand1 = builder.conv2d(
            f"{name}_expand1x1", squeeze, out_channels=expand1x1_channels, kernel=1
        )
        expand3 = builder.conv2d(
            f"{name}_expand3x3", squeeze, out_channels=expand3x3_channels, kernel=3
        )
        out = builder.concat(f"{name}_concat", [expand1, expand3])
        if pool_after:
            out = builder.max_pool(f"{name}_pool", out, kernel=3, stride=2, padding=0, )
        return out


def squeezenet(
    batch_size: int = 1,
    image_size: int = 224,
    num_classes: int = 1000,
) -> Graph:
    """Build SqueezeNet v1.0: conv1, eight fire modules, conv10 classifier."""
    builder = GraphBuilder("squeezenet", TensorShape(batch_size, 3, image_size, image_size))
    x = builder.input_name

    with builder.block("conv1"):
        x = builder.conv2d("conv1", x, out_channels=96, kernel=7, stride=2, padding=3)
        x = builder.max_pool("pool1", x, kernel=3, stride=2, padding=0)

    x = fire_module(builder, x, "fire2", 16, 64, 64)
    x = fire_module(builder, x, "fire3", 16, 64, 64)
    x = fire_module(builder, x, "fire4", 32, 128, 128, pool_after=True)
    x = fire_module(builder, x, "fire5", 32, 128, 128)
    x = fire_module(builder, x, "fire6", 48, 192, 192)
    x = fire_module(builder, x, "fire7", 48, 192, 192)
    x = fire_module(builder, x, "fire8", 64, 256, 256, pool_after=True)
    x = fire_module(builder, x, "fire9", 64, 256, 256)

    with builder.block("conv10"):
        x = builder.conv2d("conv10", x, out_channels=num_classes, kernel=1)
        x = builder.global_avg_pool("pool10", x)

    return builder.build()


register_model(
    ModelSpec(
        name="squeezenet",
        builder=squeezenet,
        description="SqueezeNet v1.0 (Iandola et al. 2016), 8 fire modules",
        default_image_size=224,
        paper_blocks=10,
        paper_operators=50,
        operator_type="Conv-Relu",
    )
)
