"""NasNet-A (Zoph et al., 2018).

NasNet-A stacks two searched cell types — *normal cells* (stride 1) and
*reduction cells* (stride 2).  Each cell combines five pairs of operations
(separable convolutions, poolings and identities) applied to the cell's two
inputs (the outputs of the two previous cells), sums each pair, and
concatenates the results.  All separable convolutions are "Relu-SepConv"
schedule units (Table 2), which cannot be merged, so IOS only uses the
"concurrent execution" strategy on this network — the reason IOS-Merge
degenerates to the sequential schedule in Figure 6.

The cell layout below follows the published NasNet-A cell; the network has 13
cells (the paper's "#Blocks = 13"): four normal cells, a reduction cell, four
normal cells, a reduction cell and three normal cells.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.tensor import TensorShape
from .common import ModelSpec, register_model

__all__ = ["nasnet_a", "normal_cell", "reduction_cell"]


def _fit(builder: GraphBuilder, x: str, name: str, channels: int, stride: int = 1) -> str:
    """1x1 convolution adjusting channel count (and optionally stride)."""
    return builder.conv2d(name, x, out_channels=channels, kernel=1, stride=stride)


def normal_cell(
    builder: GraphBuilder,
    h: str,
    h_prev: str,
    name: str,
    channels: int,
) -> str:
    """NasNet-A normal cell (stride 1).

    ``h`` is the previous cell's output, ``h_prev`` the one before it.  The
    five combinations below mirror the searched NasNet-A cell: each pairs two
    of {separable conv 3x3/5x5, average pool, identity} and adds them.
    """
    with builder.block(name):
        x = _fit(builder, h, f"{name}_fit_h", channels)
        x_prev = _fit(builder, h_prev, f"{name}_fit_hprev", channels)

        # Combination 1: sep3x3(h) + identity(h)
        c1a = builder.sep_conv2d(f"{name}_c1_sep3x3", x, out_channels=channels, kernel=3)
        c1 = builder.add(f"{name}_c1_add", [c1a, x])

        # Combination 2: sep3x3(h') + sep5x5(h)
        c2a = builder.sep_conv2d(f"{name}_c2_sep3x3", x_prev, out_channels=channels, kernel=3)
        c2b = builder.sep_conv2d(f"{name}_c2_sep5x5", x, out_channels=channels, kernel=5)
        c2 = builder.add(f"{name}_c2_add", [c2a, c2b])

        # Combination 3: avgpool3x3(h) + identity(h')
        c3a = builder.avg_pool(f"{name}_c3_pool", x, kernel=3, stride=1, padding=1)
        c3 = builder.add(f"{name}_c3_add", [c3a, x_prev])

        # Combination 4: avgpool3x3(h') + avgpool3x3(h')
        c4a = builder.avg_pool(f"{name}_c4_poola", x_prev, kernel=3, stride=1, padding=1)
        c4b = builder.avg_pool(f"{name}_c4_poolb", x_prev, kernel=3, stride=1, padding=1)
        c4 = builder.add(f"{name}_c4_add", [c4a, c4b])

        # Combination 5: sep5x5(h') + sep3x3(h')
        c5a = builder.sep_conv2d(f"{name}_c5_sep5x5", x_prev, out_channels=channels, kernel=5)
        c5b = builder.sep_conv2d(f"{name}_c5_sep3x3", x_prev, out_channels=channels, kernel=3)
        c5 = builder.add(f"{name}_c5_add", [c5a, c5b])

        return builder.concat(f"{name}_concat", [c1, c2, c3, c4, c5])


def reduction_cell(
    builder: GraphBuilder,
    h: str,
    h_prev: str,
    name: str,
    channels: int,
) -> str:
    """NasNet-A reduction cell (stride 2)."""
    with builder.block(name):
        x = _fit(builder, h, f"{name}_fit_h", channels)
        x_prev = _fit(builder, h_prev, f"{name}_fit_hprev", channels, stride=2)

        # Combination 1: sep5x5(h, stride 2) + sep7x7(h', stride 2... applied to
        # the already strided fit) -> add
        c1a = builder.sep_conv2d(f"{name}_c1_sep5x5", x, out_channels=channels, kernel=5, stride=2)
        c1b = builder.sep_conv2d(f"{name}_c1_sep7x7", x_prev, out_channels=channels, kernel=7)
        c1 = builder.add(f"{name}_c1_add", [c1a, c1b])

        # Combination 2: maxpool3x3(h, stride 2) + sep7x7(h')
        c2a = builder.max_pool(f"{name}_c2_pool", x, kernel=3, stride=2, padding=1)
        c2b = builder.sep_conv2d(f"{name}_c2_sep7x7", x_prev, out_channels=channels, kernel=7)
        c2 = builder.add(f"{name}_c2_add", [c2a, c2b])

        # Combination 3: avgpool3x3(h, stride 2) + sep5x5(h')
        c3a = builder.avg_pool(f"{name}_c3_pool", x, kernel=3, stride=2, padding=1)
        c3b = builder.sep_conv2d(f"{name}_c3_sep5x5", x_prev, out_channels=channels, kernel=5)
        c3 = builder.add(f"{name}_c3_add", [c3a, c3b])

        # Combination 4: maxpool3x3(h, stride 2) + sep3x3(on combination 1)
        c4a = builder.max_pool(f"{name}_c4_pool", x, kernel=3, stride=2, padding=1)
        c4b = builder.sep_conv2d(f"{name}_c4_sep3x3", c1, out_channels=channels, kernel=3)
        c4 = builder.add(f"{name}_c4_add", [c4a, c4b])

        # Combination 5: avgpool3x3(on combination 1) + identity(combination 2)
        c5a = builder.avg_pool(f"{name}_c5_pool", c1, kernel=3, stride=1, padding=1)
        c5 = builder.add(f"{name}_c5_add", [c5a, c2])

        return builder.concat(f"{name}_concat", [c3, c4, c5, c1])


def nasnet_a(
    batch_size: int = 1,
    image_size: int = 224,
    num_classes: int = 1000,
    base_channels: int = 168,
    cells_per_stage: int = 4,
) -> Graph:
    """Build NasNet-A with 13 cells (4 normal, reduction, 4 normal, reduction, 3 normal)."""
    builder = GraphBuilder("nasnet_a", TensorShape(batch_size, 3, image_size, image_size))
    x = builder.input_name

    with builder.block("stem"):
        x = builder.conv2d("stem_conv", x, out_channels=96, kernel=3, stride=2, padding=1)
        x = builder.conv2d("stem_reduce1", x, out_channels=base_channels // 2, kernel=3, stride=2)
        x = builder.conv2d("stem_reduce2", x, out_channels=base_channels, kernel=3, stride=2)

    h_prev = x
    h = x
    channels = base_channels
    cell_index = 0

    # Stage 1: normal cells at 28x28.
    for _ in range(cells_per_stage):
        cell_index += 1
        out = normal_cell(builder, h, h_prev, f"cell_{cell_index}_normal", channels)
        h_prev, h = h, out

    # Reduction to 14x14 and doubled channels.
    cell_index += 1
    channels *= 2
    out = reduction_cell(builder, h, h, f"cell_{cell_index}_reduction", channels)
    h_prev, h = out, out

    # Stage 2: normal cells at 14x14.
    for _ in range(cells_per_stage):
        cell_index += 1
        out = normal_cell(builder, h, h_prev, f"cell_{cell_index}_normal", channels)
        h_prev, h = h, out

    # Reduction to 7x7 and doubled channels.
    cell_index += 1
    channels *= 2
    out = reduction_cell(builder, h, h, f"cell_{cell_index}_reduction", channels)
    h_prev, h = out, out

    # Stage 3: normal cells at 7x7.
    for _ in range(cells_per_stage - 1):
        cell_index += 1
        out = normal_cell(builder, h, h_prev, f"cell_{cell_index}_normal", channels)
        h_prev, h = h, out

    with builder.block("head"):
        x = builder.relu("head_relu", h)
        x = builder.global_avg_pool("head_pool", x)
        x = builder.flatten("head_flatten", x)
        builder.linear("head_fc", x, out_features=num_classes)

    return builder.build()


register_model(
    ModelSpec(
        name="nasnet_a",
        builder=nasnet_a,
        description="NasNet-A (Zoph et al. 2018) with 13 searched cells",
        default_image_size=224,
        paper_blocks=13,
        paper_operators=374,
        operator_type="Relu-SepConv",
    )
)
