"""Inception V3 (Szegedy et al., 2016).

Inception V3 is the paper's primary case-study network (Figures 9-11, 16 and
Table 3).  The architecture below follows the standard torchvision structure:
a convolutional stem, three Inception-A modules at 35x35, a grid-reduction
module, four Inception-B modules at 17x17, a second grid-reduction module and
two Inception-C modules at 8x8, followed by global pooling and a classifier.

Each of the 11 Inception modules is one *block* for the scheduler (matching
"#Blocks = 11" in Table 2); the stem and classifier live in two extra blocks
that offer no inter-operator parallelism.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.tensor import TensorShape
from .common import ModelSpec, register_model

__all__ = ["inception_v3", "inception_a", "inception_b", "inception_c",
           "reduction_a", "reduction_b"]


def inception_a(builder: GraphBuilder, x: str, name: str, pool_channels: int) -> str:
    """Inception-A module (35x35 grid): 1x1, 5x5, double-3x3 and pool branches."""
    with builder.block(name):
        b1 = builder.conv2d(f"{name}_b1_1x1", x, out_channels=64, kernel=1)

        b5 = builder.conv2d(f"{name}_b5_1x1", x, out_channels=48, kernel=1)
        b5 = builder.conv2d(f"{name}_b5_5x5", b5, out_channels=64, kernel=5)

        b3 = builder.conv2d(f"{name}_b3_1x1", x, out_channels=64, kernel=1)
        b3 = builder.conv2d(f"{name}_b3_3x3a", b3, out_channels=96, kernel=3)
        b3 = builder.conv2d(f"{name}_b3_3x3b", b3, out_channels=96, kernel=3)

        bp = builder.avg_pool(f"{name}_pool", x, kernel=3, stride=1, padding=1)
        bp = builder.conv2d(f"{name}_pool_1x1", bp, out_channels=pool_channels, kernel=1)

        return builder.concat(f"{name}_concat", [b1, b5, b3, bp])


def reduction_a(builder: GraphBuilder, x: str, name: str) -> str:
    """Grid-reduction module from 35x35 to 17x17."""
    with builder.block(name):
        b3 = builder.conv2d(f"{name}_b3_3x3", x, out_channels=384, kernel=3, stride=2, padding=0)

        bd = builder.conv2d(f"{name}_bd_1x1", x, out_channels=64, kernel=1)
        bd = builder.conv2d(f"{name}_bd_3x3a", bd, out_channels=96, kernel=3)
        bd = builder.conv2d(f"{name}_bd_3x3b", bd, out_channels=96, kernel=3, stride=2, padding=0)

        bp = builder.max_pool(f"{name}_pool", x, kernel=3, stride=2, padding=0)

        return builder.concat(f"{name}_concat", [b3, bd, bp])


def inception_b(builder: GraphBuilder, x: str, name: str, c7: int) -> str:
    """Inception-B module (17x17 grid) with factorised 7x7 convolutions."""
    with builder.block(name):
        b1 = builder.conv2d(f"{name}_b1_1x1", x, out_channels=192, kernel=1)

        b7 = builder.conv2d(f"{name}_b7_1x1", x, out_channels=c7, kernel=1)
        b7 = builder.conv2d(f"{name}_b7_1x7", b7, out_channels=c7, kernel=(1, 7))
        b7 = builder.conv2d(f"{name}_b7_7x1", b7, out_channels=192, kernel=(7, 1))

        bd = builder.conv2d(f"{name}_bd_1x1", x, out_channels=c7, kernel=1)
        bd = builder.conv2d(f"{name}_bd_7x1a", bd, out_channels=c7, kernel=(7, 1))
        bd = builder.conv2d(f"{name}_bd_1x7a", bd, out_channels=c7, kernel=(1, 7))
        bd = builder.conv2d(f"{name}_bd_7x1b", bd, out_channels=c7, kernel=(7, 1))
        bd = builder.conv2d(f"{name}_bd_1x7b", bd, out_channels=192, kernel=(1, 7))

        bp = builder.avg_pool(f"{name}_pool", x, kernel=3, stride=1, padding=1)
        bp = builder.conv2d(f"{name}_pool_1x1", bp, out_channels=192, kernel=1)

        return builder.concat(f"{name}_concat", [b1, b7, bd, bp])


def reduction_b(builder: GraphBuilder, x: str, name: str) -> str:
    """Grid-reduction module from 17x17 to 8x8."""
    with builder.block(name):
        b3 = builder.conv2d(f"{name}_b3_1x1", x, out_channels=192, kernel=1)
        b3 = builder.conv2d(f"{name}_b3_3x3", b3, out_channels=320, kernel=3, stride=2, padding=0)

        b7 = builder.conv2d(f"{name}_b7_1x1", x, out_channels=192, kernel=1)
        b7 = builder.conv2d(f"{name}_b7_1x7", b7, out_channels=192, kernel=(1, 7))
        b7 = builder.conv2d(f"{name}_b7_7x1", b7, out_channels=192, kernel=(7, 1))
        b7 = builder.conv2d(f"{name}_b7_3x3", b7, out_channels=192, kernel=3, stride=2, padding=0)

        bp = builder.max_pool(f"{name}_pool", x, kernel=3, stride=2, padding=0)

        return builder.concat(f"{name}_concat", [b3, b7, bp])


def inception_c(builder: GraphBuilder, x: str, name: str) -> str:
    """Inception-C module (8x8 grid).

    This is the block shown in Figure 10 of the paper: the 3x3 branch forks
    into parallel 1x3 / 3x1 convolutions, as does the double-3x3 branch, and
    the 1x3 / 3x1 pairs share an input which makes them candidates for the
    "operator merge" strategy.
    """
    with builder.block(name):
        b1 = builder.conv2d(f"{name}_b1_1x1", x, out_channels=320, kernel=1)

        b3 = builder.conv2d(f"{name}_b3_1x1", x, out_channels=384, kernel=1)
        b3a = builder.conv2d(f"{name}_b3_1x3", b3, out_channels=384, kernel=(1, 3))
        b3b = builder.conv2d(f"{name}_b3_3x1", b3, out_channels=384, kernel=(3, 1))

        bd = builder.conv2d(f"{name}_bd_1x1", x, out_channels=448, kernel=1)
        bd = builder.conv2d(f"{name}_bd_3x3", bd, out_channels=384, kernel=3)
        bda = builder.conv2d(f"{name}_bd_1x3", bd, out_channels=384, kernel=(1, 3))
        bdb = builder.conv2d(f"{name}_bd_3x1", bd, out_channels=384, kernel=(3, 1))

        bp = builder.avg_pool(f"{name}_pool", x, kernel=3, stride=1, padding=1)
        bp = builder.conv2d(f"{name}_pool_1x1", bp, out_channels=192, kernel=1)

        return builder.concat(f"{name}_concat", [b1, b3a, b3b, bda, bdb, bp])


def inception_v3(
    batch_size: int = 1,
    image_size: int = 299,
    num_classes: int = 1000,
    include_stem: bool = True,
    include_head: bool = True,
) -> Graph:
    """Build the Inception V3 computation graph.

    Parameters
    ----------
    batch_size, image_size, num_classes:
        Standard network hyper-parameters (the paper uses 299x299 inputs).
    include_stem, include_head:
        Allow experiments that only study the 11 Inception modules (e.g. the
        block-wise speedups of Figure 16) to drop the single-branch stem and
        classifier.
    """
    builder = GraphBuilder("inception_v3", TensorShape(batch_size, 3, image_size, image_size))
    x = builder.input_name

    if include_stem:
        with builder.block("stem"):
            x = builder.conv2d("stem_conv1", x, out_channels=32, kernel=3, stride=2, padding=0)
            x = builder.conv2d("stem_conv2", x, out_channels=32, kernel=3, padding=0)
            x = builder.conv2d("stem_conv3", x, out_channels=64, kernel=3, padding=1)
            x = builder.max_pool("stem_pool1", x, kernel=3, stride=2, padding=0)
            x = builder.conv2d("stem_conv4", x, out_channels=80, kernel=1)
            x = builder.conv2d("stem_conv5", x, out_channels=192, kernel=3, padding=0)
            x = builder.max_pool("stem_pool2", x, kernel=3, stride=2, padding=0)
    else:
        with builder.block("stem"):
            x = builder.conv2d("stem_proj", x, out_channels=192, kernel=3, stride=8, padding=1)

    # 11 Inception modules == the 11 blocks of Table 2 / Figure 16.
    x = inception_a(builder, x, "mixed_5b", pool_channels=32)
    x = inception_a(builder, x, "mixed_5c", pool_channels=64)
    x = inception_a(builder, x, "mixed_5d", pool_channels=64)
    x = reduction_a(builder, x, "mixed_6a")
    x = inception_b(builder, x, "mixed_6b", c7=128)
    x = inception_b(builder, x, "mixed_6c", c7=160)
    x = inception_b(builder, x, "mixed_6d", c7=160)
    x = inception_b(builder, x, "mixed_6e", c7=192)
    x = reduction_b(builder, x, "mixed_7a")
    x = inception_c(builder, x, "mixed_7b")
    x = inception_c(builder, x, "mixed_7c")

    if include_head:
        with builder.block("head"):
            x = builder.global_avg_pool("head_pool", x)
            x = builder.flatten("head_flatten", x)
            builder.linear("head_fc", x, out_features=num_classes)

    return builder.build()


#: Names of the 11 Inception modules, in execution order (used by Figure 16).
INCEPTION_BLOCK_NAMES = [
    "mixed_5b",
    "mixed_5c",
    "mixed_5d",
    "mixed_6a",
    "mixed_6b",
    "mixed_6c",
    "mixed_6d",
    "mixed_6e",
    "mixed_7a",
    "mixed_7b",
    "mixed_7c",
]


register_model(
    ModelSpec(
        name="inception_v3",
        builder=inception_v3,
        description="Inception V3 (Szegedy et al. 2016), 11 multi-branch modules",
        default_image_size=299,
        paper_blocks=11,
        paper_operators=119,
        operator_type="Conv-Relu",
    )
)
