"""Model zoo.

Importing this package registers every model with the registry in
``repro.models.common`` so that :func:`repro.frontend.load` can instantiate
any of them by name.  The four networks benchmarked by the paper (Table 2)
are Inception V3, RandWire, NasNet-A and SqueezeNet (``BENCHMARK_MODELS``);
``transformer_block`` is built through the ONNX-subset importer rather than
hand-assembled.
"""

from .common import (
    BENCHMARK_MODELS,
    MODEL_REGISTRY,
    ModelSpec,
    build_model,
    default_optimize,
    list_models,
    model_specs,
    register_model,
    resolve_zoo_builder,
    set_default_optimize,
)
from .toy import (
    chain_graph,
    diamond_graph,
    figure2_block,
    figure3_graph,
    figure5_graph,
    parallel_chains_graph,
)
from .inception_v3 import INCEPTION_BLOCK_NAMES, inception_v3
from .squeezenet import squeezenet
from .randwire import randwire
from .nasnet import nasnet_a
from .resnet import resnet_18, resnet_34, resnet_50
from .transformer import transformer_block, transformer_block_source
from .vgg import alexnet, vgg_16

__all__ = [
    "BENCHMARK_MODELS",
    "MODEL_REGISTRY",
    "ModelSpec",
    "build_model",
    "default_optimize",
    "list_models",
    "model_specs",
    "register_model",
    "resolve_zoo_builder",
    "set_default_optimize",
    "figure2_block",
    "figure3_graph",
    "figure5_graph",
    "chain_graph",
    "diamond_graph",
    "parallel_chains_graph",
    "inception_v3",
    "INCEPTION_BLOCK_NAMES",
    "squeezenet",
    "randwire",
    "nasnet_a",
    "resnet_18",
    "resnet_34",
    "resnet_50",
    "transformer_block",
    "transformer_block_source",
    "vgg_16",
    "alexnet",
]
