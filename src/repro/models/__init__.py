"""CNN model zoo.

Importing this package registers every model with the registry in
``repro.models.common`` so that :func:`build_model` can instantiate any of them
by name.  The four networks benchmarked by the paper (Table 2) are Inception
V3, RandWire, NasNet-A and SqueezeNet (``BENCHMARK_MODELS``).
"""

from .common import (
    BENCHMARK_MODELS,
    MODEL_REGISTRY,
    ModelSpec,
    build_model,
    list_models,
    model_specs,
    register_model,
    set_default_optimize,
)
from .toy import (
    chain_graph,
    diamond_graph,
    figure2_block,
    figure3_graph,
    figure5_graph,
    parallel_chains_graph,
)
from .inception_v3 import INCEPTION_BLOCK_NAMES, inception_v3
from .squeezenet import squeezenet
from .randwire import randwire
from .nasnet import nasnet_a
from .resnet import resnet_18, resnet_34, resnet_50
from .vgg import alexnet, vgg_16

__all__ = [
    "BENCHMARK_MODELS",
    "MODEL_REGISTRY",
    "ModelSpec",
    "build_model",
    "list_models",
    "model_specs",
    "register_model",
    "set_default_optimize",
    "figure2_block",
    "figure3_graph",
    "figure5_graph",
    "chain_graph",
    "diamond_graph",
    "parallel_chains_graph",
    "inception_v3",
    "INCEPTION_BLOCK_NAMES",
    "squeezenet",
    "randwire",
    "nasnet_a",
    "resnet_18",
    "resnet_34",
    "resnet_50",
    "vgg_16",
    "alexnet",
]
