"""Small example graphs taken directly from the paper's figures.

* :func:`figure2_block` — the motivating 4-convolution block of Figure 2 whose
  sequential, greedy and IOS schedules the paper profiles on a V100;
* :func:`figure3_graph` — the 5-operator example (convolutions a-d and matmul
  e) used to explain stages, operator merge and concurrent execution;
* :func:`figure5_graph` — the 3-operator example used to walk through the
  dynamic programming algorithm;
* :func:`chain_graph` / :func:`parallel_chains_graph` — parametric graphs used
  by tests and by the worst-case complexity experiment (Figure 13).
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.tensor import TensorShape
from .common import ModelSpec, register_model

__all__ = [
    "figure2_block",
    "figure3_graph",
    "figure5_graph",
    "chain_graph",
    "parallel_chains_graph",
    "diamond_graph",
]


def figure2_block(batch_size: int = 1, channels: int = 384, spatial: int = 15) -> Graph:
    """The Figure 2 block: four 3x3 convolutions and a concatenation.

    Dependencies: ``input -> a -> b``, ``input -> c``, ``input -> d`` and
    ``concat(b, c, d)``.  With ``channels=384`` and ``spatial=15`` the
    convolution workloads match the paper's annotations (conv [a]/[c] are
    0.6 GFLOPs, conv [b]/[d] are 1.2 GFLOPs, the concat output has 1920
    channels).
    """
    builder = GraphBuilder("figure2_block", TensorShape(batch_size, channels, spatial, spatial))
    x = builder.input_name
    with builder.block("block"):
        a = builder.conv2d("conv_a", x, out_channels=channels, kernel=3)
        b = builder.conv2d("conv_b", a, out_channels=2 * channels, kernel=3)
        c = builder.conv2d("conv_c", x, out_channels=channels, kernel=3)
        d = builder.conv2d("conv_d", x, out_channels=2 * channels, kernel=3)
        builder.concat("concat", [b, c, d])
    return builder.build()


def figure3_graph(batch_size: int = 1, channels: int = 128, spatial: int = 14) -> Graph:
    """The Figure 3 example: convolutions a-d and a matrix multiplication e.

    ``a`` and ``b`` consume the graph input (and can therefore be merged);
    ``c`` and ``d`` form a chain below ``a`` (so they land in the same group
    under concurrent execution); ``e`` is a matrix multiplication fed by ``b``.
    """
    builder = GraphBuilder("figure3_graph", TensorShape(batch_size, channels, spatial, spatial))
    x = builder.input_name
    with builder.block("block"):
        a = builder.conv2d("conv_a", x, out_channels=channels, kernel=3)
        b = builder.conv2d("conv_b", x, out_channels=2 * channels, kernel=3)
        c = builder.conv2d("conv_c", a, out_channels=channels, kernel=3)
        builder.conv2d("conv_d", c, out_channels=channels, kernel=3)
        builder.matmul("matmul_e", b, out_features=256)
    return builder.build()


def figure5_graph(batch_size: int = 1, channels: int = 96, spatial: int = 28) -> Graph:
    """The Figure 5 example: ``a -> b`` with ``c`` independent of both."""
    builder = GraphBuilder("figure5_graph", TensorShape(batch_size, channels, spatial, spatial))
    x = builder.input_name
    with builder.block("block"):
        a = builder.conv2d("conv_a", x, out_channels=2 * channels, kernel=3)
        builder.conv2d("conv_b", a, out_channels=channels, kernel=3)
        builder.conv2d("conv_c", x, out_channels=channels, kernel=3)
    return builder.build()


def diamond_graph(batch_size: int = 1, channels: int = 64, spatial: int = 28) -> Graph:
    """A diamond: one producer, two parallel branches, one consumer.

    The smallest graph on which inter-operator parallelism is possible; used
    extensively by the unit tests.
    """
    builder = GraphBuilder("diamond", TensorShape(batch_size, channels, spatial, spatial))
    x = builder.input_name
    with builder.block("block"):
        top = builder.conv2d("top", x, out_channels=channels, kernel=1)
        left = builder.conv2d("left", top, out_channels=channels, kernel=3)
        right = builder.conv2d("right", top, out_channels=channels, kernel=3)
        builder.concat("join", [left, right])
    return builder.build()


def chain_graph(length: int = 4, batch_size: int = 1, channels: int = 64, spatial: int = 28) -> Graph:
    """A pure chain of ``length`` convolutions (width 1, no parallelism)."""
    if length < 1:
        raise ValueError("length must be at least 1")
    builder = GraphBuilder("chain", TensorShape(batch_size, channels, spatial, spatial))
    x = builder.input_name
    with builder.block("block"):
        for i in range(length):
            x = builder.conv2d(f"conv_{i}", x, out_channels=channels, kernel=3)
    return builder.build()


def parallel_chains_graph(
    num_chains: int = 3,
    chain_length: int = 3,
    batch_size: int = 1,
    channels: int = 64,
    spatial: int = 14,
    join: bool = True,
) -> Graph:
    """``num_chains`` independent chains of ``chain_length`` convolutions each.

    This is exactly the worst-case construction of Appendix A (Figure 13): a
    DAG of width ``d = num_chains`` whose number of (state, ending) pairs
    reaches the complexity upper bound.
    """
    if num_chains < 1 or chain_length < 1:
        raise ValueError("num_chains and chain_length must be at least 1")
    builder = GraphBuilder(
        f"parallel_chains_{num_chains}x{chain_length}",
        TensorShape(batch_size, channels, spatial, spatial),
    )
    x = builder.input_name
    with builder.block("block"):
        tails = []
        for chain in range(num_chains):
            node = x
            for i in range(chain_length):
                node = builder.conv2d(
                    f"chain{chain}_conv{i}", node, out_channels=channels, kernel=3
                )
            tails.append(node)
        if join and len(tails) > 1:
            builder.concat("join", tails)
    return builder.build()


register_model(
    ModelSpec(
        name="figure2_block",
        builder=figure2_block,
        description="Motivating 4-convolution block from Figure 2 of the paper",
        default_image_size=15,
        operator_type="Conv-Relu",
    )
)
