"""Transformer encoder block, defined as an ONNX-subset document.

Unlike the CNN zoo entries, this model is *not* hand-assembled with
:class:`~repro.ir.graph.GraphBuilder`: :func:`transformer_block_source`
produces the ONNX-subset JSON document (the same format as
``examples/transformer_block.json``) and :func:`transformer_block` feeds it
through :func:`repro.frontend.import_onnx`.  The zoo name and the example
file therefore exercise exactly the same importer path — bridges, shape
inference, validation — so a schedule compiled for one is servable for the
other.

Sequences are modelled *seq-as-batch*: the 2-D activations are
``(batch_size * seq_len, hidden)`` token-row matrices, attention scores are
``(rows, rows)``, and multi-head attention slices the hidden axis with
``split``/``concat``.  The per-head score/context matmuls are mutually
independent, which is precisely the inter-operator parallelism the IOS
scheduler exploits; the defaults keep each block small enough for the DP
search to stay fast.
"""

from __future__ import annotations

from ..ir.graph import Graph
from .common import ModelSpec, register_model

__all__ = ["transformer_block", "transformer_block_source"]


def transformer_block_source(
    batch_size: int = 1,
    seq_len: int = 64,
    hidden: int = 256,
    heads: int = 2,
    ffn_dim: int | None = None,
) -> dict:
    """The ONNX-subset document for one pre-LN-free encoder block.

    Structure: Q/K/V projections, per-head scaled-dot-product attention
    (transpose → matmul → softmax → matmul), head concat, output projection,
    residual add + layer norm, then a GELU feed-forward (up/down projection)
    with its own residual add + layer norm.  The GELU is a standalone node —
    real exports never pre-fuse it — so the ``fuse-epilogue`` pass has work
    to do at compile time.
    """
    if hidden % heads != 0:
        raise ValueError(f"hidden={hidden} not divisible by heads={heads}")
    if ffn_dim is None:
        ffn_dim = 4 * hidden
    rows = batch_size * seq_len
    head_dim = hidden // heads
    sections = [head_dim] * heads

    nodes: list[dict] = []
    blocks: list[dict] = []

    def block(name: str, members: list[str]) -> None:
        blocks.append({"name": name, "nodes": members})

    # --- Q/K/V projections and per-head slices ----------------------------
    qkv = []
    for proj in ("q", "k", "v"):
        nodes.append({"name": f"{proj}_proj", "op_type": "MatMul",
                      "inputs": ["tokens", f"w_{proj}"], "attrs": {}})
        qkv.append(f"{proj}_proj")
        for h in range(heads):
            nodes.append({"name": f"{proj}{h}", "op_type": "split",
                          "inputs": [f"{proj}_proj"],
                          "attrs": {"sections": sections, "index": h}})
            qkv.append(f"{proj}{h}")
    block("qkv", qkv)

    # --- per-head attention: transpose, scores, softmax, context ----------
    attention = []
    for h in range(heads):
        nodes.append({"name": f"kT{h}", "op_type": "Transpose",
                      "inputs": [f"k{h}"], "attrs": {"perm": [1, 0]}})
        nodes.append({"name": f"scores{h}", "op_type": "MatMul",
                      "inputs": [f"q{h}", f"kT{h}"], "attrs": {}})
        nodes.append({"name": f"probs{h}", "op_type": "Softmax",
                      "inputs": [f"scores{h}"], "attrs": {}})
        nodes.append({"name": f"ctx{h}", "op_type": "MatMul",
                      "inputs": [f"probs{h}", f"v{h}"], "attrs": {}})
        attention.extend([f"kT{h}", f"scores{h}", f"probs{h}", f"ctx{h}"])
    block("attention", attention)

    # --- merge heads, project, residual, norm -----------------------------
    nodes.extend([
        {"name": "heads", "op_type": "Concat",
         "inputs": [f"ctx{h}" for h in range(heads)], "attrs": {"axis": 1}},
        {"name": "attn_proj", "op_type": "MatMul",
         "inputs": ["heads", "w_out"], "attrs": {}},
        {"name": "attn_res", "op_type": "Add",
         "inputs": ["tokens", "attn_proj"], "attrs": {}},
        {"name": "ln_attn", "op_type": "LayerNormalization",
         "inputs": ["attn_res"], "attrs": {"epsilon": 1e-5}},
    ])
    block("merge", ["heads", "attn_proj", "attn_res", "ln_attn"])

    # --- feed-forward with standalone GELU, residual, norm ----------------
    nodes.extend([
        {"name": "ffn_up", "op_type": "MatMul",
         "inputs": ["ln_attn", "w_up"], "attrs": {}},
        {"name": "ffn_act", "op_type": "Gelu",
         "inputs": ["ffn_up"], "attrs": {}},
        {"name": "ffn_down", "op_type": "MatMul",
         "inputs": ["ffn_act", "w_down"], "attrs": {}},
        {"name": "ffn_res", "op_type": "Add",
         "inputs": ["ln_attn", "ffn_down"], "attrs": {}},
        {"name": "ln_out", "op_type": "LayerNormalization",
         "inputs": ["ffn_res"], "attrs": {"epsilon": 1e-5}},
    ])
    block("ffn", ["ffn_up", "ffn_act", "ffn_down", "ffn_res", "ln_out"])

    return {
        "ir": "onnx-subset",
        "name": "transformer_block",
        "inputs": [{"name": "tokens", "shape": [rows, hidden]}],
        "initializers": [
            {"name": "w_q", "shape": [hidden, hidden]},
            {"name": "w_k", "shape": [hidden, hidden]},
            {"name": "w_v", "shape": [hidden, hidden]},
            {"name": "w_out", "shape": [hidden, hidden]},
            {"name": "w_up", "shape": [hidden, ffn_dim]},
            {"name": "w_down", "shape": [ffn_dim, hidden]},
        ],
        "nodes": nodes,
        "blocks": blocks,
    }


def transformer_block(
    batch_size: int = 1,
    seq_len: int = 64,
    hidden: int = 256,
    heads: int = 2,
    ffn_dim: int | None = None,
) -> Graph:
    """Build one transformer encoder block through the ONNX importer."""
    # Imported lazily: repro.frontend imports the model zoo for name
    # resolution, so a module-level import here would be circular.
    from ..frontend import import_onnx

    return import_onnx(
        transformer_block_source(
            batch_size=batch_size, seq_len=seq_len, hidden=hidden,
            heads=heads, ffn_dim=ffn_dim,
        )
    )


register_model(
    ModelSpec(
        name="transformer_block",
        builder=transformer_block,
        description="Transformer encoder block (MHA + GELU FFN), "
                    "ingested through the ONNX-subset importer",
        default_image_size=64,
        operator_type="MatMul-LayerNorm",
    )
)
