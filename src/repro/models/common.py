"""Model registry and shared helpers for the CNN model zoo.

Every model is exposed as a builder function ``builder(batch_size, **kwargs)``
returning a validated :class:`~repro.ir.graph.Graph`.  Builders are registered
by name so experiments and the CLI can instantiate networks uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..ir.graph import Graph

__all__ = [
    "ModelBuilder",
    "ModelSpec",
    "MODEL_REGISTRY",
    "register_model",
    "build_model",
    "list_models",
    "set_default_optimize",
    "BENCHMARK_MODELS",
]

ModelBuilder = Callable[..., Graph]


@dataclass(frozen=True)
class ModelSpec:
    """Registry entry describing one model family."""

    name: str
    builder: ModelBuilder
    description: str
    default_image_size: int
    paper_blocks: int | None = None
    paper_operators: int | None = None
    operator_type: str = ""


MODEL_REGISTRY: dict[str, ModelSpec] = {}

#: The four CNNs benchmarked throughout the paper's evaluation (Table 2).
BENCHMARK_MODELS = ["inception_v3", "randwire", "nasnet_a", "squeezenet"]


def register_model(spec: ModelSpec) -> ModelSpec:
    """Register a model spec; raises on duplicate names."""
    if spec.name in MODEL_REGISTRY:
        raise ValueError(f"model {spec.name!r} is already registered")
    MODEL_REGISTRY[spec.name] = spec
    return spec


#: Process-wide default for ``build_model(optimize=None)``; flipped by the
#: CLI's ``--passes`` flag so every experiment sees rewritten graphs.
_DEFAULT_OPTIMIZE = False


def set_default_optimize(enabled: bool) -> bool:
    """Set the process-wide default for ``build_model``'s pass pipeline.

    Returns the previous value so callers (tests, the CLI) can restore it.
    """
    global _DEFAULT_OPTIMIZE
    previous = _DEFAULT_OPTIMIZE
    _DEFAULT_OPTIMIZE = bool(enabled)
    return previous


def build_model(
    name: str, batch_size: int = 1, optimize: bool | None = None, **kwargs
) -> Graph:
    """Instantiate a registered model at the given batch size.

    ``optimize=True`` runs the engine's pass stage
    (:func:`repro.engine.stages.apply_passes`, i.e. the default
    :mod:`repro.passes` pipeline — fingerprint-cached, so repeated builds are
    cheap) on the built graph: a graph built here is bit-identical to what an
    ``Engine(passes=True)`` would compile.  ``None`` defers to the
    process-wide default set by :func:`set_default_optimize`.
    """
    key = name.lower().replace("-", "_").replace(" ", "_")
    aliases = {
        "inceptionv3": "inception_v3",
        "inception": "inception_v3",
        "nasnet": "nasnet_a",
        "nasneta": "nasnet_a",
        "randwire_small": "randwire",
        "resnet50": "resnet_50",
        "resnet34": "resnet_34",
        "resnet18": "resnet_18",
        "vgg16": "vgg_16",
    }
    key = aliases.get(key, key)
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    graph = MODEL_REGISTRY[key].builder(batch_size=batch_size, **kwargs)
    if optimize is None:
        optimize = _DEFAULT_OPTIMIZE
    if optimize:
        from ..engine.stages import apply_passes

        graph, _ = apply_passes(graph, True)
    return graph


def list_models() -> list[str]:
    """Names of all registered models."""
    return sorted(MODEL_REGISTRY)


def model_specs(names: Iterable[str] | None = None) -> list[ModelSpec]:
    """Specs for the requested models (default: the four benchmark CNNs)."""
    selected = list(names) if names is not None else BENCHMARK_MODELS
    return [MODEL_REGISTRY[n] for n in selected]
