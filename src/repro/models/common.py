"""Model registry and shared helpers for the CNN model zoo.

Every model is exposed as a builder function ``builder(batch_size, **kwargs)``
returning a validated :class:`~repro.ir.graph.Graph`.  Builders are registered
by name so experiments and the CLI can instantiate networks uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..ir.graph import Graph

__all__ = [
    "ModelBuilder",
    "ModelSpec",
    "MODEL_REGISTRY",
    "register_model",
    "build_model",
    "list_models",
    "BENCHMARK_MODELS",
]

ModelBuilder = Callable[..., Graph]


@dataclass(frozen=True)
class ModelSpec:
    """Registry entry describing one model family."""

    name: str
    builder: ModelBuilder
    description: str
    default_image_size: int
    paper_blocks: int | None = None
    paper_operators: int | None = None
    operator_type: str = ""


MODEL_REGISTRY: dict[str, ModelSpec] = {}

#: The four CNNs benchmarked throughout the paper's evaluation (Table 2).
BENCHMARK_MODELS = ["inception_v3", "randwire", "nasnet_a", "squeezenet"]


def register_model(spec: ModelSpec) -> ModelSpec:
    """Register a model spec; raises on duplicate names."""
    if spec.name in MODEL_REGISTRY:
        raise ValueError(f"model {spec.name!r} is already registered")
    MODEL_REGISTRY[spec.name] = spec
    return spec


def build_model(name: str, batch_size: int = 1, **kwargs) -> Graph:
    """Instantiate a registered model at the given batch size."""
    key = name.lower().replace("-", "_").replace(" ", "_")
    aliases = {
        "inceptionv3": "inception_v3",
        "inception": "inception_v3",
        "nasnet": "nasnet_a",
        "nasneta": "nasnet_a",
        "randwire_small": "randwire",
        "resnet50": "resnet_50",
        "resnet34": "resnet_34",
        "resnet18": "resnet_18",
        "vgg16": "vgg_16",
    }
    key = aliases.get(key, key)
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key].builder(batch_size=batch_size, **kwargs)


def list_models() -> list[str]:
    """Names of all registered models."""
    return sorted(MODEL_REGISTRY)


def model_specs(names: Iterable[str] | None = None) -> list[ModelSpec]:
    """Specs for the requested models (default: the four benchmark CNNs)."""
    selected = list(names) if names is not None else BENCHMARK_MODELS
    return [MODEL_REGISTRY[n] for n in selected]
