"""Model registry and shared helpers for the CNN model zoo.

Every model is exposed as a builder function ``builder(batch_size, **kwargs)``
returning a validated :class:`~repro.ir.graph.Graph`.  Builders are registered
by name so experiments and the CLI can instantiate networks uniformly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterable

from ..ir.graph import Graph

__all__ = [
    "ModelBuilder",
    "ModelSpec",
    "MODEL_REGISTRY",
    "register_model",
    "resolve_zoo_builder",
    "build_model",
    "list_models",
    "set_default_optimize",
    "default_optimize",
    "BENCHMARK_MODELS",
]

ModelBuilder = Callable[..., Graph]


@dataclass(frozen=True)
class ModelSpec:
    """Registry entry describing one model family."""

    name: str
    builder: ModelBuilder
    description: str
    default_image_size: int
    paper_blocks: int | None = None
    paper_operators: int | None = None
    operator_type: str = ""


MODEL_REGISTRY: dict[str, ModelSpec] = {}

#: The four CNNs benchmarked throughout the paper's evaluation (Table 2).
BENCHMARK_MODELS = ["inception_v3", "randwire", "nasnet_a", "squeezenet"]


def register_model(spec: ModelSpec) -> ModelSpec:
    """Register a model spec; raises on duplicate names."""
    if spec.name in MODEL_REGISTRY:
        raise ValueError(f"model {spec.name!r} is already registered")
    MODEL_REGISTRY[spec.name] = spec
    return spec


#: Process-wide default for ``build_model(optimize=None)``; flipped by the
#: CLI's ``--passes`` flag so every experiment sees rewritten graphs.
_DEFAULT_OPTIMIZE = False


def set_default_optimize(enabled: bool) -> bool:
    """Set the process-wide default for ``build_model``'s pass pipeline.

    Returns the previous value so callers (tests, the CLI) can restore it.
    """
    global _DEFAULT_OPTIMIZE
    previous = _DEFAULT_OPTIMIZE
    _DEFAULT_OPTIMIZE = bool(enabled)
    return previous


def default_optimize() -> bool:
    """The process-wide default for the loader's pass pipeline."""
    return _DEFAULT_OPTIMIZE


_MODEL_ALIASES = {
    "inceptionv3": "inception_v3",
    "inception": "inception_v3",
    "nasnet": "nasnet_a",
    "nasneta": "nasnet_a",
    "randwire_small": "randwire",
    "resnet50": "resnet_50",
    "resnet34": "resnet_34",
    "resnet18": "resnet_18",
    "vgg16": "vgg_16",
}


def resolve_zoo_builder(name: str) -> ModelBuilder:
    """Resolve a (possibly aliased) zoo model name to its builder function.

    Raises
    ------
    KeyError
        If no registered model matches; the message lists every known name.
    """
    key = name.lower().replace("-", "_").replace(" ", "_")
    key = _MODEL_ALIASES.get(key, key)
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key].builder


def build_model(
    name: str, batch_size: int = 1, optimize: bool | None = None, **kwargs
) -> Graph:
    """Deprecated: use :func:`repro.frontend.load` instead.

    Historical zoo-only entry point.  :func:`repro.frontend.load` accepts the
    same model names (plus paths and parsed model dictionaries) with the same
    ``batch_size``/``optimize`` semantics; this shim simply delegates.
    """
    warnings.warn(
        "build_model() is deprecated; use repro.frontend.load(source), which "
        "accepts zoo names, model-file paths and parsed model dictionaries",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..frontend.loader import load

    return load(name, batch_size=batch_size, optimize=optimize, **kwargs)


def list_models() -> list[str]:
    """Names of all registered models."""
    return sorted(MODEL_REGISTRY)


def model_specs(names: Iterable[str] | None = None) -> list[ModelSpec]:
    """Specs for the requested models (default: the four benchmark CNNs)."""
    selected = list(names) if names is not None else BENCHMARK_MODELS
    return [MODEL_REGISTRY[n] for n in selected]
