"""RandWire (Xie et al., 2019): randomly wired neural networks.

RandWire generates its wiring with a random graph generator; following the
original paper we use the Watts-Strogatz small-world generator ``WS(n, k, p)``
with ``k = 4`` and ``p = 0.75`` and convert the undirected graph to a DAG by
orienting every edge from the lower-indexed to the higher-indexed node.  Each
node is a "Relu-SepConv" unit (Table 2); a node with several incoming edges
aggregates them with an element-wise addition first.  The network has three
randomly wired stages (blocks), each halving the spatial resolution and
doubling the channel count.

The wiring is fully determined by the ``seed`` argument, so experiments are
reproducible; the default configuration yields roughly 110 operators across
3 blocks with a largest-block width comparable to the paper's Table 1 (d = 8).
"""

from __future__ import annotations

import networkx as nx

from ..ir.graph import Graph, GraphBuilder
from ..ir.tensor import TensorShape
from .common import ModelSpec, register_model

__all__ = ["randwire", "random_dag_edges"]


def random_dag_edges(num_nodes: int, k: int, p: float, seed: int) -> list[tuple[int, int]]:
    """Generate the DAG edge list of one randomly wired stage.

    A connected Watts-Strogatz graph is generated and each undirected edge
    ``{u, v}`` becomes the directed edge ``(min, max)``, which guarantees
    acyclicity.
    """
    if num_nodes < 3:
        raise ValueError("a randomly wired stage needs at least 3 nodes")
    graph = nx.connected_watts_strogatz_graph(num_nodes, k, p, tries=200, seed=seed)
    edges = sorted((min(u, v), max(u, v)) for u, v in graph.edges())
    return edges


def _wire_stage(
    builder: GraphBuilder,
    x: str,
    name: str,
    num_nodes: int,
    channels: int,
    stride: int,
    k: int,
    p: float,
    seed: int,
) -> str:
    """Build one randomly wired stage as a single scheduler block."""
    edges = random_dag_edges(num_nodes, k, p, seed)
    predecessors: dict[int, list[int]] = {i: [] for i in range(num_nodes)}
    for u, v in edges:
        predecessors[v].append(u)

    with builder.block(name):
        outputs: dict[int, str] = {}
        for node in range(num_nodes):
            preds = predecessors[node]
            if not preds:
                # Input nodes of the random graph read the stage input and
                # apply the stage's stride (spatial reduction happens here).
                source = x
                node_stride = stride
            elif len(preds) == 1:
                source = outputs[preds[0]]
                node_stride = 1
            else:
                source = builder.add(
                    f"{name}_n{node}_sum", [outputs[p_] for p_ in preds]
                )
                node_stride = 1
            outputs[node] = builder.sep_conv2d(
                f"{name}_n{node}_sepconv",
                source,
                out_channels=channels,
                kernel=3,
                stride=node_stride,
            )
        # Nodes without successors are averaged into the stage output.
        sinks = [n for n in range(num_nodes) if all(u != n for u, _ in edges)]
        sink_outputs = [outputs[n] for n in sinks]
        if len(sink_outputs) == 1:
            return sink_outputs[0]
        return builder.add(f"{name}_output_sum", sink_outputs)


def randwire(
    batch_size: int = 1,
    image_size: int = 224,
    num_classes: int = 1000,
    nodes_per_stage: int = 20,
    base_channels: int = 109,
    k: int = 4,
    p: float = 0.75,
    seed: int = 1,
) -> Graph:
    """Build a RandWire network with three randomly wired stages."""
    builder = GraphBuilder("randwire", TensorShape(batch_size, 3, image_size, image_size))
    x = builder.input_name

    with builder.block("stem"):
        x = builder.conv2d("stem_conv1", x, out_channels=base_channels // 2, kernel=3, stride=2)
        x = builder.conv2d("stem_conv2", x, out_channels=base_channels, kernel=3, stride=2)

    x = _wire_stage(
        builder, x, "stage1", nodes_per_stage, base_channels, stride=2, k=k, p=p, seed=seed
    )
    x = _wire_stage(
        builder, x, "stage2", nodes_per_stage, base_channels * 2, stride=2, k=k, p=p, seed=seed + 1
    )
    x = _wire_stage(
        builder, x, "stage3", nodes_per_stage, base_channels * 4, stride=2, k=k, p=p, seed=seed + 2
    )

    with builder.block("head"):
        x = builder.conv2d("head_conv", x, out_channels=1280, kernel=1)
        x = builder.global_avg_pool("head_pool", x)
        x = builder.flatten("head_flatten", x)
        builder.linear("head_fc", x, out_features=num_classes)

    return builder.build()


register_model(
    ModelSpec(
        name="randwire",
        builder=randwire,
        description="RandWire (Xie et al. 2019) with three WS(20, 4, 0.75) stages",
        default_image_size=224,
        paper_blocks=3,
        paper_operators=120,
        operator_type="Relu-SepConv",
    )
)
