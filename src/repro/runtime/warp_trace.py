"""Active-warp tracing (Figure 8).

The paper samples the number of active warps on the whole GPU with NVIDIA's
CUPTI profiler while repeatedly executing a model, and shows that the IOS
schedule keeps ~1.58x more warps active than the sequential schedule.  Our
simulator exposes the same quantity directly: every timeline segment records
how many warps were resident.  This module converts a timeline into evenly
sampled warp counts and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.contention import TimelineSegment

__all__ = ["WarpTrace", "trace_from_timeline", "compare_traces"]


@dataclass(frozen=True)
class WarpTrace:
    """Evenly sampled active-warp counts over one (repeated) execution."""

    sample_period_ms: float
    samples: tuple[float, ...]
    duration_ms: float

    @property
    def num_samples(self) -> int:
        return len(self.samples)

    def average_active_warps(self) -> float:
        """Time-averaged number of active warps."""
        if not self.samples:
            return 0.0
        return float(np.mean(self.samples))

    def total_warp_milliseconds(self) -> float:
        """Integral of active warps over time (warp·ms)."""
        return float(np.sum(self.samples)) * self.sample_period_ms

    def warps_per_ms(self) -> float:
        """Average warps completed per millisecond of wall-clock time.

        This is the summary number the paper quotes (e.g. "Seq: 1.7x10^8
        warps/ms, IOS: 2.7x10^8 warps/ms" for its example block).
        """
        if self.duration_ms <= 0:
            return 0.0
        return self.total_warp_milliseconds() / self.duration_ms


def trace_from_timeline(
    timeline: list[TimelineSegment],
    sample_period_ms: float = 0.01,
    duration_ms: float | None = None,
) -> WarpTrace:
    """Sample a simulation timeline into an evenly spaced warp trace.

    Parameters
    ----------
    timeline:
        Segments from an :class:`~repro.runtime.executor.ExecutionResult`.
    sample_period_ms:
        Sampling period.  The paper samples every 2.1 ms over many repeated
        inferences; for a single simulated inference a finer period is used.
    duration_ms:
        Total duration to sample over; defaults to the end of the last segment.
    """
    if sample_period_ms <= 0:
        raise ValueError("sample_period_ms must be positive")
    if not timeline:
        return WarpTrace(sample_period_ms=sample_period_ms, samples=(), duration_ms=0.0)
    end = duration_ms if duration_ms is not None else max(seg.end_ms for seg in timeline)
    times = np.arange(0.0, end, sample_period_ms)
    samples = np.zeros_like(times)
    for seg in timeline:
        mask = (times >= seg.start_ms) & (times < seg.end_ms)
        samples[mask] = seg.active_warps
    return WarpTrace(
        sample_period_ms=sample_period_ms,
        samples=tuple(float(s) for s in samples),
        duration_ms=float(end),
    )


def compare_traces(baseline: WarpTrace, candidate: WarpTrace) -> float:
    """Ratio of average active warps (candidate / baseline).

    The paper reports 1.58x more active warps for IOS vs the sequential
    schedule on the Figure 2 block.
    """
    base = baseline.average_active_warps()
    if base == 0:
        return float("inf") if candidate.average_active_warps() > 0 else 1.0
    return candidate.average_active_warps() / base
