"""Simulated execution engine: executor, profiler, warp tracing, memory planner."""

from .events import KernelEvent, StageEvent
from .executor import (
    ExecutionPlan,
    ExecutionResult,
    ExecutionStage,
    Executor,
    StageResult,
    plan_flops,
    sequential_plan,
)
from .profiler import Measurement, Profiler
from .warp_trace import WarpTrace, compare_traces, trace_from_timeline
from .memory import MemoryPlan, MemoryPlanner, OutOfMemoryError

__all__ = [
    "KernelEvent",
    "StageEvent",
    "ExecutionStage",
    "ExecutionPlan",
    "StageResult",
    "ExecutionResult",
    "Executor",
    "sequential_plan",
    "plan_flops",
    "Measurement",
    "Profiler",
    "WarpTrace",
    "trace_from_timeline",
    "compare_traces",
    "MemoryPlan",
    "MemoryPlanner",
    "OutOfMemoryError",
]
