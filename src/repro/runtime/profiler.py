"""Latency profiler.

IOS is a *profile-based* scheduler: `GENERATE STAGE` "directly measures the
latencies of both parallelization strategies on the hardware" (Section 4.1).
The :class:`Profiler` mirrors how the paper measures latency — several warm-up
runs followed by repeated measurements whose average is reported — on top of
the simulated executor.  A deterministic pseudo-random measurement noise can be
enabled to exercise the robustness of downstream code; it is off by default so
every experiment is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from .executor import ExecutionPlan, ExecutionStage, Executor

__all__ = ["Measurement", "Profiler"]


def _mean_of_repeated(value: float, repeats: int) -> float:
    """``float(np.mean((value,) * repeats))``, without building the array.

    The DP search consumes only the mean, and with noise disabled every
    sample equals ``value`` — but the mean is *not* ``value`` (``(0.1 + 0.1 +
    0.1) / 3`` rounds).  Schedule choices can tie-break on a ulp, so the fast
    path must reproduce numpy's accumulation order bit-for-bit: sequential
    for short arrays, numpy's own pairwise reduction otherwise.
    """
    if repeats < 8:
        acc = value
        for _ in range(repeats - 1):
            acc += value
        return acc / repeats
    return float(np.mean(np.full(repeats, value)))


@dataclass(frozen=True)
class Measurement:
    """Aggregated latency measurement of one plan or stage."""

    mean_ms: float
    std_ms: float
    repeats: int
    samples: tuple[float, ...]

    @property
    def min_ms(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def max_ms(self) -> float:
        return max(self.samples) if self.samples else 0.0


class Profiler:
    """Measures stage and plan latencies on a simulated device.

    Parameters
    ----------
    device, profile:
        The simulated GPU and kernel library.
    warmup, repeats:
        Number of discarded warm-up runs and averaged measurement runs.  The
        paper conducts each experiment 5 times and reports the average.
    noise_std:
        Relative standard deviation of multiplicative Gaussian measurement
        noise (e.g. ``0.01`` for 1 %).  ``0`` disables noise entirely.
    seed:
        Seed of the noise generator, so noisy profiles are reproducible.
    """

    def __init__(
        self,
        device: DeviceSpec,
        profile: KernelProfile = CUDNN_PROFILE,
        warmup: int = 2,
        repeats: int = 5,
        noise_std: float = 0.0,
        seed: int = 0,
    ):
        if warmup < 0 or repeats <= 0:
            raise ValueError("warmup must be >= 0 and repeats must be > 0")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.device = device
        self.profile = profile
        self.warmup = warmup
        self.repeats = repeats
        self.noise_std = noise_std
        self._rng = np.random.default_rng(seed)
        self.executor = Executor(device, profile)
        #: Number of simulated latency measurements performed (used to report
        #: optimisation cost, Figure 9 / Figure 12).
        self.measurement_count = 0
        #: Total simulated GPU time spent profiling, in milliseconds: every
        #: measurement occupies the device for (warmup + repeats) runs of the
        #: measured stage/plan.  This is the "optimization cost" axis of
        #: Figure 9 and the GPU-hours comparison of Figure 12.
        self.total_profiling_ms = 0.0

    # ------------------------------------------------------------------ helpers
    def _noisy(self, value: float) -> float:
        if self.noise_std == 0.0:
            return value
        factor = 1.0 + self.noise_std * float(self._rng.standard_normal())
        return max(0.0, value * factor)

    def _measure(self, base_latency: float) -> Measurement:
        self.total_profiling_ms += (self.warmup + self.repeats) * base_latency
        # Warm-up runs are simulated but discarded, mirroring real profiling.
        for _ in range(self.warmup):
            self._noisy(base_latency)
        samples = tuple(self._noisy(base_latency) for _ in range(self.repeats))
        mean = float(np.mean(samples))
        std = float(np.std(samples))
        return Measurement(mean_ms=mean, std_ms=std, repeats=self.repeats, samples=samples)

    # ------------------------------------------------------------------ public
    def measure_stage(self, stage: ExecutionStage) -> Measurement:
        """Measure the latency of one stage in isolation."""
        self.measurement_count += 1
        base = self.executor.run_stage(stage).latency_ms
        return self._measure(base)

    def measure_plan(self, plan: ExecutionPlan) -> Measurement:
        """Measure the end-to-end latency of an execution plan."""
        self.measurement_count += 1
        base = self.executor.run(plan).latency_ms
        return self._measure(base)

    def stage_latency_ms(self, stage: ExecutionStage) -> float:
        """Mean stage latency — the quantity the DP scheduler consumes.

        With noise disabled this skips the :class:`Measurement` bookkeeping
        (samples tuple, std) while reproducing the identical mean: samples are
        all equal to the base latency, and :func:`_mean_of_repeated` matches
        numpy's accumulation bit-for-bit.  Measurement and profiling-cost
        accounting is unchanged either way.
        """
        if self.noise_std == 0.0:
            self.measurement_count += 1
            base = self.executor.stage_latency_ms(stage)
            self.total_profiling_ms += (self.warmup + self.repeats) * base
            return _mean_of_repeated(base, self.repeats)
        return self.measure_stage(stage).mean_ms

    def plan_latency_ms(self, plan: ExecutionPlan) -> float:
        """Mean plan latency."""
        return self.measure_plan(plan).mean_ms
