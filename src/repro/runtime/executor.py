"""Simulated execution engine.

The paper implements its execution engine in C++ on top of cuDNN; here the
engine executes an :class:`ExecutionPlan` on a simulated device
(:mod:`repro.hardware`).  A plan is a list of stages; each stage holds one or
more *groups* of operators.  Groups are placed on distinct CUDA streams and run
concurrently; operators within a group run sequentially in the given order;
stages are separated by a stream synchronisation barrier — exactly the
execution model of Section 3 of the paper.

The executor is deliberately independent of the scheduler: the IOS core lowers
its :class:`~repro.core.schedule.Schedule` objects into plans, but baselines
(sequential, greedy, the simulated frameworks) construct plans directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..hardware.contention import TimelineSegment, simulate_streams
from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile, build_kernel
from ..hardware.streams import StagePlacement, run_stage_placement
from ..ir.graph import Graph
from ..ir.ops import Operator
from .events import KernelEvent, StageEvent

__all__ = ["ExecutionStage", "ExecutionPlan", "StageResult", "ExecutionResult", "Executor",
           "sequential_plan", "plan_flops"]


@dataclass
class ExecutionStage:
    """One stage of an execution plan.

    ``groups`` is a list of operator groups; each group is an ordered list of
    operators executed back-to-back on one stream.  ``strategy`` is a label
    ("concurrent execution", "operator merge", "sequential") used for
    reporting only — by the time a plan exists, merged operators have already
    been constructed.
    """

    groups: list[list[Operator]]
    strategy: str = "concurrent execution"
    label: str = ""

    def operators(self) -> list[Operator]:
        return [op for group in self.groups for op in group]

    def flops(self) -> float:
        return float(sum(op.flops() for op in self.operators()))

    @property
    def num_groups(self) -> int:
        return len([g for g in self.groups if g])


@dataclass
class ExecutionPlan:
    """A fully lowered, executable description of one network inference."""

    name: str
    stages: list[ExecutionStage] = field(default_factory=list)
    batch_size: int = 1

    def num_stages(self) -> int:
        return len(self.stages)

    def num_kernel_operators(self) -> int:
        return sum(
            1 for stage in self.stages for op in stage.operators() if op.launches_kernel
        )

    def flops(self) -> float:
        return sum(stage.flops() for stage in self.stages)


@dataclass
class StageResult:
    """Result of executing one stage."""

    event: StageEvent
    kernel_events: list[KernelEvent] = field(default_factory=list)
    timeline: list[TimelineSegment] = field(default_factory=list)

    @property
    def latency_ms(self) -> float:
        return self.event.duration_ms


@dataclass
class ExecutionResult:
    """Result of executing a whole plan."""

    plan_name: str
    latency_ms: float
    batch_size: int
    stage_results: list[StageResult] = field(default_factory=list)

    def throughput(self) -> float:
        """Throughput in samples (images) per second."""
        if self.latency_ms <= 0:
            return 0.0
        return self.batch_size / (self.latency_ms / 1e3)

    def timeline(self) -> list[TimelineSegment]:
        """Concatenated, globally timed occupancy timeline across stages."""
        segments: list[TimelineSegment] = []
        for stage in self.stage_results:
            segments.extend(stage.timeline)
        return segments

    def stage_events(self) -> list[StageEvent]:
        return [stage.event for stage in self.stage_results]

    def kernel_events(self) -> list[KernelEvent]:
        return [event for stage in self.stage_results for event in stage.kernel_events]


class Executor:
    """Runs execution plans on a simulated device.

    Parameters
    ----------
    device:
        The simulated GPU.
    profile:
        Kernel-library profile used to lower operators into kernels.
    record_trace:
        Whether to keep the per-interval occupancy timeline (needed by the
        active-warp experiment; off by default because it allocates per
        interval).
    """

    def __init__(
        self,
        device: DeviceSpec,
        profile: KernelProfile = CUDNN_PROFILE,
        record_trace: bool = False,
    ):
        self.device = device
        self.profile = profile
        self.record_trace = record_trace
        # Operators are immutable once bound, so their kernels are too.  The
        # cache holds a strong reference to the operator, which pins its id()
        # — an id can never be recycled while its entry exists.  During a DP
        # search the same operators appear in thousands of candidate stages,
        # so this turns kernel lowering into a dict hit.
        self._kernel_cache: dict[int, tuple[Operator, "object"]] = {}

    # ------------------------------------------------------------------ kernels
    def _kernel_groups(self, stage: ExecutionStage) -> list[list]:
        """Lower a stage's operator groups to kernel groups (cached per op)."""
        cache = self._kernel_cache
        kernel_groups = []
        for group in stage.groups:
            kernels = []
            for op in group:
                entry = cache.get(id(op))
                if entry is None:
                    kernel = build_kernel(op, self.device, self.profile)
                    cache[id(op)] = (op, kernel)
                else:
                    kernel = entry[1]
                if kernel is not None:
                    kernels.append(kernel)
            if kernels:
                kernel_groups.append(kernels)
        return kernel_groups

    # ------------------------------------------------------------------- stages
    def run_stage(self, stage: ExecutionStage, start_ms: float = 0.0, index: int = 0) -> StageResult:
        """Execute a single stage starting at ``start_ms`` global time."""
        kernel_groups = self._kernel_groups(stage)

        if not kernel_groups:
            event = StageEvent(
                stage_index=index,
                label=stage.label,
                strategy=stage.strategy,
                start_ms=start_ms,
                end_ms=start_ms,
                num_groups=0,
                num_kernels=0,
                flops=stage.flops(),
            )
            return StageResult(event=event)

        placement = StagePlacement.from_groups(kernel_groups)
        sim = run_stage_placement(
            placement, self.device, record_trace=self.record_trace, include_sync=True
        )

        event = StageEvent(
            stage_index=index,
            label=stage.label,
            strategy=stage.strategy,
            start_ms=start_ms,
            end_ms=start_ms + sim.latency_ms,
            num_groups=placement.num_streams,
            num_kernels=placement.total_kernels(),
            flops=stage.flops(),
        )
        kernel_events = [
            KernelEvent(
                kernel_name=execution.kernel_name,
                stage_index=index,
                stream=execution.stream,
                start_ms=start_ms + execution.start_ms,
                end_ms=start_ms + execution.end_ms,
            )
            for execution in sim.executions
        ]
        timeline = [
            TimelineSegment(
                start_ms=start_ms + seg.start_ms,
                end_ms=start_ms + seg.end_ms,
                active_kernels=seg.active_kernels,
                active_warps=seg.active_warps,
            )
            for seg in sim.timeline
        ]
        return StageResult(event=event, kernel_events=kernel_events, timeline=timeline)

    def stage_latency_ms(self, stage: ExecutionStage) -> float:
        """Latency of one stage without materialising events or timelines.

        This is :meth:`run_stage` minus every piece of bookkeeping the DP
        search never reads (stage/kernel events, timeline segments, stream
        objects).  The arithmetic is identical — the same contention
        simulation followed by the same synchronisation cost — so the result
        equals ``run_stage(stage).latency_ms`` bit-for-bit.
        """
        kernel_groups = self._kernel_groups(stage)
        if not kernel_groups:
            return 0.0
        sim = simulate_streams(
            kernel_groups, self.device, record_trace=False, record_executions=False
        )
        num_streams = len(kernel_groups)
        sim.latency_ms += self.device.stream_sync_overhead_ms * max(1, num_streams - 1)
        return sim.latency_ms

    # -------------------------------------------------------------------- plans
    def run(self, plan: ExecutionPlan) -> ExecutionResult:
        """Execute every stage of ``plan`` sequentially and report the result."""
        now = 0.0
        stage_results: list[StageResult] = []
        for index, stage in enumerate(plan.stages):
            result = self.run_stage(stage, start_ms=now, index=index)
            stage_results.append(result)
            now = result.event.end_ms
        return ExecutionResult(
            plan_name=plan.name,
            latency_ms=now,
            batch_size=plan.batch_size,
            stage_results=stage_results,
        )

    def latency_ms(self, plan: ExecutionPlan) -> float:
        """Convenience wrapper returning only the end-to-end latency."""
        return self.run(plan).latency_ms


# --------------------------------------------------------------------------- #
# Plan construction helpers                                                    #
# --------------------------------------------------------------------------- #
def sequential_plan(graph: Graph, name: str | None = None) -> ExecutionPlan:
    """Build the sequential execution plan: one operator per stage.

    This is the "Sequential" baseline schedule of Section 6.1: operators are
    executed one by one in a topological order.
    """
    plan = ExecutionPlan(
        name=name or f"{graph.name}-sequential", batch_size=graph.batch_size
    )
    for op_name in graph.topological_order():
        op = graph.nodes[op_name]
        if not op.launches_kernel and op.kind == "placeholder":
            continue
        plan.stages.append(
            ExecutionStage(groups=[[op]], strategy="sequential", label=op_name)
        )
    return plan


def plan_flops(stages: Iterable[ExecutionStage]) -> float:
    """Total FLOPs over a collection of stages."""
    return float(sum(stage.flops() for stage in stages))
