"""Event records produced by the execution engine.

The executor reports what happened during a simulated inference as a list of
events; experiments (e.g. the active-warp study of Figure 8) and debugging
tools consume them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StageEvent", "KernelEvent"]


@dataclass(frozen=True)
class KernelEvent:
    """One kernel execution within a stage, in network-global time."""

    kernel_name: str
    stage_index: int
    stream: int
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class StageEvent:
    """One stage execution, in network-global time."""

    stage_index: int
    label: str
    strategy: str
    start_ms: float
    end_ms: float
    num_groups: int
    num_kernels: int
    flops: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def gflops(self) -> float:
        return self.flops / 1e9

    def achieved_tflops(self) -> float:
        """TFLOPs/s achieved during this stage."""
        if self.duration_ms <= 0:
            return 0.0
        return (self.flops / (self.duration_ms / 1e3)) / 1e12
