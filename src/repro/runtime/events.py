"""Event records produced by the execution engine.

The executor reports what happened during a simulated inference as a list of
events; experiments (e.g. the active-warp study of Figure 8) and debugging
tools consume them.  :func:`add_execution_spans` replays a cached execution's
events into a :class:`~repro.obs.Tracer`, so a serving trace shows each
dispatched batch down to its kernel/stream placement.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StageEvent", "KernelEvent", "add_execution_spans"]


@dataclass(frozen=True)
class KernelEvent:
    """One kernel execution within a stage, in network-global time."""

    kernel_name: str
    stage_index: int
    stream: int
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class StageEvent:
    """One stage execution, in network-global time."""

    stage_index: int
    label: str
    strategy: str
    start_ms: float
    end_ms: float
    num_groups: int
    num_kernels: int
    flops: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def gflops(self) -> float:
        return self.flops / 1e9

    def achieved_tflops(self) -> float:
        """TFLOPs/s achieved during this stage."""
        if self.duration_ms <= 0:
            return 0.0
        return (self.flops / (self.duration_ms / 1e3)) / 1e12


def add_execution_spans(tracer, result, track_prefix: str, offset_ms: float) -> None:
    """Replay an execution's stage/kernel events as child spans of a dispatch.

    ``result`` is anything exposing ``stage_events()`` / ``kernel_events()``
    (an :class:`~repro.runtime.executor.ExecutionResult`; duck-typed to avoid
    an import cycle).  Event times are plan-local, so ``offset_ms`` — the
    dispatch's start on the virtual clock — re-bases them; the worker pool
    memoises one simulated execution per plan, and every dispatch of that
    plan replays the same events at its own start time.  Stage spans land on
    ``"<track_prefix>/stages"``; kernels go to one ``"<track_prefix>/stream
    N"`` track per stream, where concurrent kernels of a stage overlap
    without colliding.
    """
    for event in result.stage_events():
        tracer.add_span(
            event.label, f"{track_prefix}/stages",
            offset_ms + event.start_ms, offset_ms + event.end_ms,
            category="stage",
            args={
                "strategy": event.strategy,
                "groups": event.num_groups,
                "kernels": event.num_kernels,
                "gflops": event.gflops,
            },
        )
    for event in result.kernel_events():
        tracer.add_span(
            event.kernel_name, f"{track_prefix}/stream {event.stream}",
            offset_ms + event.start_ms, offset_ms + event.end_ms,
            category="kernel", args={"stage": event.stage_index},
        )
