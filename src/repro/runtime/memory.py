"""GPU memory planner.

Frameworks differ in how much device memory one inference needs: weights are
always resident, activations may or may not be freed as soon as their last
consumer ran, and libraries reserve extra workspace (cuDNN algorithm
workspaces, graph-substitution buffers, ...).  This planner reproduces the one
memory-related observation in the paper: *TASO runs out of memory on Inception
V3 at batch size 128 on the 16 GB V100* (Figure 11) and on RandWire/NasNet on
the 11 GB RTX 2080Ti (Appendix B), while the other frameworks fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.device import DeviceSpec
from ..ir.graph import Graph
from ..ir.ops import Placeholder

__all__ = ["MemoryPlan", "MemoryPlanner", "OutOfMemoryError"]


class OutOfMemoryError(RuntimeError):
    """Raised when a plan does not fit in the device's DRAM."""


@dataclass(frozen=True)
class MemoryPlan:
    """Estimated device-memory footprint of running one graph."""

    graph_name: str
    weight_bytes: int
    peak_activation_bytes: int
    workspace_bytes: int
    framework_overhead_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.weight_bytes
            + self.peak_activation_bytes
            + self.workspace_bytes
            + self.framework_overhead_bytes
        )

    @property
    def total_gib(self) -> float:
        return self.total_bytes / (1024**3)

    def fits(self, device: DeviceSpec) -> bool:
        return self.total_bytes <= device.memory_bytes


class MemoryPlanner:
    """Estimates peak memory for a graph under a framework's memory policy.

    Parameters
    ----------
    activation_reuse:
        If true (default), an activation is freed once its last consumer has
        executed, so the peak is the maximum *live set* over a topological
        execution order.  If false the framework keeps every intermediate
        activation alive for the whole inference (this is what makes the
        simulated TASO run out of memory at large batch sizes: its substituted
        graphs are verified against the original outputs, which requires
        retaining intermediates).
    activation_copies:
        How many copies of the activation working set the framework keeps.
        Graph-substitution engines that verify the rewritten graph against the
        original (TASO) effectively hold two copies.
    workspace_factor:
        Extra scratch space proportional to the largest single activation
        (cuDNN convolution workspaces are of this order).
    framework_overhead_bytes:
        Fixed allocator/runtime overhead (CUDA context, cuDNN handles, ...).
    """

    def __init__(
        self,
        activation_reuse: bool = True,
        activation_copies: int = 1,
        workspace_factor: float = 1.0,
        framework_overhead_bytes: int = 600 * 1024 * 1024,
    ):
        if activation_copies < 1:
            raise ValueError("activation_copies must be >= 1")
        if workspace_factor < 0:
            raise ValueError("workspace_factor must be non-negative")
        if framework_overhead_bytes < 0:
            raise ValueError("framework_overhead_bytes must be non-negative")
        self.activation_reuse = activation_reuse
        self.activation_copies = activation_copies
        self.workspace_factor = workspace_factor
        self.framework_overhead_bytes = framework_overhead_bytes

    # ----------------------------------------------------------------- planning
    def plan(self, graph: Graph) -> MemoryPlan:
        """Estimate the memory footprint of one inference of ``graph``."""
        weight_bytes = graph.total_weight_bytes()
        order = graph.topological_order()
        output_bytes = {name: graph.nodes[name].output_bytes() for name in order}

        if not self.activation_reuse:
            peak_activations = sum(output_bytes.values())
        else:
            # Liveness analysis: a tensor is live from its producer's position
            # until its last consumer's position (or the end, for outputs).
            position = {name: idx for idx, name in enumerate(order)}
            last_use: dict[str, int] = {}
            for name in order:
                last_use[name] = position[name]
                for parent in graph.nodes[name].inputs:
                    last_use[parent] = max(last_use.get(parent, 0), position[name])
            for name in graph.output_names():
                last_use[name] = len(order)

            peak_activations = 0
            live = 0
            expiring: dict[int, int] = {}
            for idx, name in enumerate(order):
                live += output_bytes[name]
                expire_at = last_use[name] + 1
                expiring[expire_at] = expiring.get(expire_at, 0) + output_bytes[name]
                peak_activations = max(peak_activations, live)
                live -= expiring.pop(idx + 1, 0)

        largest_activation = max(output_bytes.values(), default=0)
        workspace = int(self.workspace_factor * largest_activation)
        return MemoryPlan(
            graph_name=graph.name,
            weight_bytes=int(weight_bytes),
            peak_activation_bytes=int(peak_activations) * self.activation_copies,
            workspace_bytes=workspace,
            framework_overhead_bytes=self.framework_overhead_bytes,
        )

    def check(self, graph: Graph, device: DeviceSpec) -> MemoryPlan:
        """Plan and raise :class:`OutOfMemoryError` if the plan does not fit."""
        plan = self.plan(graph)
        if not plan.fits(device):
            raise OutOfMemoryError(
                f"{graph.name} needs {plan.total_gib:.2f} GiB but {device.name} has "
                f"{device.memory_gb:.0f} GiB"
            )
        return plan


def _is_placeholder(graph: Graph, name: str) -> bool:
    return isinstance(graph.nodes[name], Placeholder)
