"""IOS core: the inter-operator scheduler and everything it needs.

This package holds the search *primitives* — the DP scheduler, cost models,
baselines, lowering.  For the one-call compile path use the engine, which
stages passes → search → lowering with caching and serializable artifacts::

    from repro.engine import Engine
    from repro.frontend import load

    engine = Engine("v100")                       # device, variant, profile
    compiled = engine.compile(load("inception_v3", batch_size=1))
    latency = compiled.latency_ms()

Driving the primitives directly is still supported (and is what the engine
does internally)::

    from repro.core import IOSScheduler, SimulatedCostModel, measure_schedule
    from repro.hardware import get_device

    device = get_device("v100")
    scheduler = IOSScheduler(SimulatedCostModel(device))
    result = scheduler.optimize_graph(graph)
    latency = measure_schedule(graph, result.schedule, device).latency_ms

The former one-call helper :func:`schedule_graph` is deprecated in favour of
``Engine.compile`` (it now delegates to it and warns).
"""

from .schedule import (
    ParallelizationStrategy,
    Schedule,
    ScheduleValidationError,
    Stage,
    connected_groups,
)
from .endings import BlockIndex, PruningStrategy, enumerate_endings, groups_of_mask, is_ending
from .merge import MergedStage, MergeError, build_merged_operator, can_merge, why_not_mergeable
from .width import block_width, dag_width, maximum_antichain_size
from .cost_model import CostModel, FlopsCostModel, SimulatedCostModel, StageChoice, stage_to_execution
from .dp_scheduler import (
    BlockStats,
    IOSScheduler,
    IOSVariant,
    ScheduleResult,
    SchedulerConfig,
    UnknownVariantError,
    VALID_VARIANTS,
    normalize_variant,
    resolve_compile_jobs,
    shutdown_search_pools,
    variant_label,
)
from .memo import ScheduleMemo, clear_schedule_memo, memo_enabled, schedule_memo
from .baselines import greedy_schedule, sequential_schedule
from .lowering import lower_schedule, measure_schedule, schedule_latency_ms, schedule_throughput
from .complexity import (
    BlockComplexity,
    block_complexity,
    count_schedules,
    count_transitions_and_states,
    largest_block,
    relaxed_transition_bound,
    transition_upper_bound,
)
from .specialization import (
    SpecializationMatrix,
    specialize_for_batch_sizes,
    specialize_for_devices,
)


def schedule_graph(graph, device="v100", *, variant=None, passes=False,
                   pruning=None, profile=None, config=None) -> ScheduleResult:
    """Deprecated one-call scheduler path; use :class:`repro.engine.Engine`.

    .. deprecated:: 1.3
        Migrate to the engine — the identical staged pipeline
        (passes → search) plus lowering, with a compile cache and
        serializable artifacts::

            # before
            result = schedule_graph(graph, "v100", passes=True, variant="ios-merge")

            # after
            from repro.engine import Engine
            compiled = Engine("v100", passes=True, variant="ios-merge").compile(graph)
            result = compiled.search          # the same ScheduleResult

    The shim delegates to :meth:`repro.engine.Engine.compile` and returns the
    underlying :class:`ScheduleResult`, so results are identical to the
    engine path (the engine tests assert that equivalence on the model zoo).
    """
    import warnings

    warnings.warn(
        "schedule_graph() is deprecated; use repro.engine.Engine(device, ...)"
        ".compile(graph) instead (compiled.search is this ScheduleResult)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..engine import Engine
    from ..hardware.kernel import CUDNN_PROFILE

    engine = Engine(
        device,
        passes=passes,
        variant=variant,
        pruning=pruning,
        config=config,
        profile=profile or CUDNN_PROFILE,
    )
    return engine.compile(graph).search

__all__ = [
    "ParallelizationStrategy",
    "Stage",
    "Schedule",
    "ScheduleValidationError",
    "connected_groups",
    "PruningStrategy",
    "BlockIndex",
    "enumerate_endings",
    "groups_of_mask",
    "is_ending",
    "MergeError",
    "MergedStage",
    "can_merge",
    "why_not_mergeable",
    "build_merged_operator",
    "dag_width",
    "block_width",
    "maximum_antichain_size",
    "CostModel",
    "SimulatedCostModel",
    "FlopsCostModel",
    "StageChoice",
    "stage_to_execution",
    "IOSScheduler",
    "IOSVariant",
    "SchedulerConfig",
    "UnknownVariantError",
    "VALID_VARIANTS",
    "normalize_variant",
    "variant_label",
    "resolve_compile_jobs",
    "shutdown_search_pools",
    "ScheduleMemo",
    "schedule_memo",
    "clear_schedule_memo",
    "memo_enabled",
    "schedule_graph",
    "BlockStats",
    "ScheduleResult",
    "sequential_schedule",
    "greedy_schedule",
    "lower_schedule",
    "measure_schedule",
    "schedule_latency_ms",
    "schedule_throughput",
    "BlockComplexity",
    "block_complexity",
    "count_schedules",
    "count_transitions_and_states",
    "largest_block",
    "transition_upper_bound",
    "relaxed_transition_bound",
    "SpecializationMatrix",
    "specialize_for_batch_sizes",
    "specialize_for_devices",
]
