"""IOS core: the inter-operator scheduler and everything it needs.

Typical usage::

    from repro.core import IOSScheduler, SchedulerConfig, SimulatedCostModel
    from repro.core import sequential_schedule, greedy_schedule, measure_schedule
    from repro.hardware import get_device
    from repro.models import build_model

    graph = build_model("inception_v3", batch_size=1)
    device = get_device("v100")
    scheduler = IOSScheduler(SimulatedCostModel(device))
    result = scheduler.optimize_graph(graph)
    latency = measure_schedule(graph, result.schedule, device).latency_ms
"""

from .schedule import (
    ParallelizationStrategy,
    Schedule,
    ScheduleValidationError,
    Stage,
    connected_groups,
)
from .endings import BlockIndex, PruningStrategy, enumerate_endings, groups_of_mask, is_ending
from .merge import MergedStage, MergeError, build_merged_operator, can_merge, why_not_mergeable
from .width import block_width, dag_width, maximum_antichain_size
from .cost_model import CostModel, FlopsCostModel, SimulatedCostModel, StageChoice, stage_to_execution
from .dp_scheduler import (
    BlockStats,
    IOSScheduler,
    IOSVariant,
    ScheduleResult,
    SchedulerConfig,
)
from .baselines import greedy_schedule, sequential_schedule
from .lowering import lower_schedule, measure_schedule, schedule_latency_ms, schedule_throughput
from .complexity import (
    BlockComplexity,
    block_complexity,
    count_schedules,
    count_transitions_and_states,
    largest_block,
    relaxed_transition_bound,
    transition_upper_bound,
)
from .specialization import (
    SpecializationMatrix,
    specialize_for_batch_sizes,
    specialize_for_devices,
)


def schedule_graph(graph, device="v100", *, variant=None, passes=False,
                   pruning=None, profile=None, config=None) -> ScheduleResult:
    """One-call scheduler path: optional rewrite pipeline, then the IOS search.

    The convenience entry point used by the CLI and the serving registry::

        result = schedule_graph(build_model("inception_v3"), "v100", passes=True)
        latency = measure_schedule(result.graph, result.schedule, get_device("v100"))

    Parameters
    ----------
    graph:
        The computation graph to schedule.
    device:
        Device preset name or a :class:`~repro.hardware.device.DeviceSpec`.
    variant:
        IOS variant (``ios-both`` — the default — / ``ios-parallel`` /
        ``ios-merge``).
    passes:
        ``False`` schedules the graph as given; ``True`` first runs the
        default :mod:`repro.passes` pipeline; a
        :class:`~repro.passes.PassManager` (or list of pass names) runs that
        pipeline instead.  The schedule always refers to ``result.graph``.
    pruning:
        Optional :class:`~repro.core.endings.PruningStrategy` override.
    profile:
        Kernel profile for the cost model (default: cuDNN).
    config:
        Full :class:`SchedulerConfig` override; mutually exclusive with
        ``variant``/``pruning``.
    """
    from ..hardware.device import get_device
    from ..hardware.kernel import CUDNN_PROFILE

    if config is None:
        config = SchedulerConfig.variant(variant or "ios-both", pruning=pruning)
    elif variant is not None or pruning is not None:
        raise ValueError("pass either config= or variant=/pruning=, not both")
    spec = get_device(device) if isinstance(device, str) else device
    cost_model = SimulatedCostModel(spec, profile or CUDNN_PROFILE)
    scheduler = IOSScheduler(cost_model, config)
    return scheduler.optimize_graph(graph, passes=passes or None)

__all__ = [
    "ParallelizationStrategy",
    "Stage",
    "Schedule",
    "ScheduleValidationError",
    "connected_groups",
    "PruningStrategy",
    "BlockIndex",
    "enumerate_endings",
    "groups_of_mask",
    "is_ending",
    "MergeError",
    "MergedStage",
    "can_merge",
    "why_not_mergeable",
    "build_merged_operator",
    "dag_width",
    "block_width",
    "maximum_antichain_size",
    "CostModel",
    "SimulatedCostModel",
    "FlopsCostModel",
    "StageChoice",
    "stage_to_execution",
    "IOSScheduler",
    "IOSVariant",
    "SchedulerConfig",
    "schedule_graph",
    "BlockStats",
    "ScheduleResult",
    "sequential_schedule",
    "greedy_schedule",
    "lower_schedule",
    "measure_schedule",
    "schedule_latency_ms",
    "schedule_throughput",
    "BlockComplexity",
    "block_complexity",
    "count_schedules",
    "count_transitions_and_states",
    "largest_block",
    "transition_upper_bound",
    "relaxed_transition_bound",
    "SpecializationMatrix",
    "specialize_for_batch_sizes",
    "specialize_for_devices",
]
