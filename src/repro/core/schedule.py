"""Schedule representation.

A *schedule* (Section 3 of the paper) partitions the operators of a
computation graph into an ordered list of *stages*.  Stages execute one after
another; within a stage the operators run according to one of two
parallelisation strategies:

* **concurrent execution** — the stage's operators are partitioned into groups
  (two operators joined by an edge always share a group); groups run
  concurrently on separate CUDA streams while operators inside a group run
  sequentially;
* **operator merge** — the stage's operators are fused into a single larger
  operator (e.g. convolutions over the same input whose kernels are stacked
  along the output-channel axis).

The classes here are plain data: they reference operators by name and carry no
latency information.  Use :mod:`repro.core.lowering` to turn a schedule into an
executable plan and :mod:`repro.core.cost_model` to price it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..ir.graph import Graph
from ..ir.ops import Placeholder

__all__ = ["ParallelizationStrategy", "Stage", "Schedule", "ScheduleValidationError",
           "connected_groups"]


class ParallelizationStrategy(str, Enum):
    """The two intra-stage parallelisation strategies of the paper."""

    CONCURRENT = "concurrent execution"
    MERGE = "operator merge"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ScheduleValidationError(ValueError):
    """Raised when a schedule is inconsistent with its computation graph."""


def connected_groups(graph: Graph, op_names: Sequence[str]) -> list[list[str]]:
    """Partition stage operators into groups (Section 3, "concurrent execution").

    Two operators joined by an edge belong to the same group, i.e. groups are
    the weakly connected components of the subgraph induced by ``op_names``.
    Each group is returned in topological order (its execution order on the
    stream); groups are ordered by the position of their first operator so the
    result is deterministic.
    """
    names = list(op_names)
    name_set = set(names)
    parent: dict[str, str] = {name: name for name in names}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for name in names:
        for pred in graph.nodes[name].inputs:
            if pred in name_set:
                union(pred, name)

    topo = graph.topological_order(names)
    groups: dict[str, list[str]] = {}
    for name in topo:
        groups.setdefault(find(name), []).append(name)
    # Roots enter the dict in order of their first member's topological
    # position, which is exactly the deterministic order promised above.
    return list(groups.values())


@dataclass(frozen=True)
class Stage:
    """One stage of a schedule: a set of operators plus a strategy."""

    operators: tuple[str, ...]
    strategy: ParallelizationStrategy = ParallelizationStrategy.CONCURRENT

    def __post_init__(self) -> None:
        if not self.operators:
            raise ValueError("a stage must contain at least one operator")
        if len(set(self.operators)) != len(self.operators):
            raise ValueError(f"stage contains duplicate operators: {self.operators}")

    def __len__(self) -> int:
        return len(self.operators)

    def __contains__(self, name: str) -> bool:
        return name in self.operators

    def groups(self, graph: Graph) -> list[list[str]]:
        """Operator groups of this stage under concurrent execution."""
        return connected_groups(graph, self.operators)

    def to_dict(self) -> dict[str, Any]:
        return {"operators": list(self.operators), "strategy": self.strategy.value}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Stage":
        return cls(
            operators=tuple(data["operators"]),
            strategy=ParallelizationStrategy(data["strategy"]),
        )


@dataclass
class Schedule:
    """An ordered list of stages covering every schedulable operator."""

    graph_name: str
    stages: list[Stage] = field(default_factory=list)
    #: Free-form provenance label ("sequential", "greedy", "ios-both", ...).
    origin: str = ""

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)

    def num_stages(self) -> int:
        return len(self.stages)

    def operators(self) -> list[str]:
        """All operator names in stage order."""
        return [name for stage in self.stages for name in stage.operators]

    def stage_of(self, op_name: str) -> int:
        """Index of the stage containing ``op_name``."""
        for index, stage in enumerate(self.stages):
            if op_name in stage:
                return index
        raise KeyError(f"operator {op_name!r} not present in schedule")

    def append(self, stage: Stage) -> None:
        self.stages.append(stage)

    def extend(self, stages: Iterable[Stage]) -> None:
        self.stages.extend(stages)

    def max_stage_size(self) -> int:
        return max((len(stage) for stage in self.stages), default=0)

    def strategy_counts(self) -> dict[str, int]:
        """How many stages use each parallelisation strategy."""
        counts: dict[str, int] = {}
        for stage in self.stages:
            counts[stage.strategy.value] = counts.get(stage.strategy.value, 0) + 1
        return counts

    # -------------------------------------------------------------- validation
    def validate(self, graph: Graph) -> None:
        """Check that this schedule is feasible for ``graph``.

        A schedule is feasible when (1) it contains every schedulable operator
        exactly once and nothing else, and (2) every operator appears in the
        same stage as, or a later stage than, each of its predecessors.
        """
        expected = set(graph.schedulable_names())
        seen: dict[str, int] = {}
        for index, stage in enumerate(self.stages):
            for name in stage.operators:
                if name in seen:
                    raise ScheduleValidationError(
                        f"operator {name!r} appears in stages {seen[name]} and {index}"
                    )
                if name not in expected:
                    raise ScheduleValidationError(
                        f"operator {name!r} is not a schedulable operator of graph "
                        f"{graph.name!r}"
                    )
                seen[name] = index
        missing = expected - set(seen)
        if missing:
            raise ScheduleValidationError(
                f"schedule misses {len(missing)} operators, e.g. {sorted(missing)[:5]}"
            )
        for consumer, stage_index in seen.items():
            for producer in graph.nodes[consumer].inputs:
                if isinstance(graph.nodes[producer], Placeholder):
                    continue
                if seen[producer] > stage_index:
                    raise ScheduleValidationError(
                        f"dependency violated: {producer!r} (stage {seen[producer]}) must "
                        f"run no later than its consumer {consumer!r} (stage {stage_index})"
                    )

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> dict[str, Any]:
        return {
            "graph_name": self.graph_name,
            "origin": self.origin,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Schedule":
        return cls(
            graph_name=data["graph_name"],
            origin=data.get("origin", ""),
            stages=[Stage.from_dict(s) for s in data["stages"]],
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Schedule":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ----------------------------------------------------------------- display
    def describe(self, graph: Graph | None = None) -> str:
        """Human-readable multi-line description of the schedule."""
        lines = [
            f"Schedule for {self.graph_name!r} ({self.origin or 'unspecified origin'}): "
            f"{len(self.stages)} stages"
        ]
        for index, stage in enumerate(self.stages):
            if graph is not None and stage.strategy is ParallelizationStrategy.CONCURRENT:
                groups = stage.groups(graph)
                group_text = " | ".join(",".join(g) for g in groups)
                lines.append(
                    f"  stage {index:3d} [{stage.strategy.value:>20s}] "
                    f"{len(stage):2d} ops, {len(groups)} groups: {group_text}"
                )
            else:
                lines.append(
                    f"  stage {index:3d} [{stage.strategy.value:>20s}] "
                    f"{len(stage):2d} ops: {','.join(stage.operators)}"
                )
        return "\n".join(lines)
