"""Ending enumeration and the schedule-pruning strategy.

An *ending* of an operator set ``S`` (Section 4.1, Figure 4) is a subset
``S' ⊆ S`` such that every edge between ``S - S'`` and ``S'`` points *into*
``S'`` — equivalently, ``S'`` is successor-closed within ``S``.  The operators
of the last stage of any feasible schedule of ``S`` form an ending of ``S``,
which is what lets the dynamic program peel stages off the back of the graph.

To keep the bit-twiddling fast, the enumeration works on an integer bitmask
representation of operator subsets prepared once per block by
:class:`BlockIndex`.

The *pruning strategy* ``P(S, S')`` (Section 4.3) restricts which endings are
explored: an ending is admissible iff it has at most ``s`` groups and every
group contains at most ``r`` operators, where groups are the weakly connected
components of the induced subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..ir.graph import Graph

__all__ = ["PruningStrategy", "BlockIndex", "enumerate_endings", "is_ending", "groups_of_mask"]


@dataclass(frozen=True)
class PruningStrategy:
    """The ``(r, s)`` pruning strategy of Section 4.3.

    ``max_group_size`` (``r``) bounds the number of operators in each group of
    an ending; ``max_groups`` (``s``) bounds the number of groups.  ``None``
    means unbounded.  The paper's default configuration is ``r = 3, s = 8``.
    """

    max_group_size: int | None = 3
    max_groups: int | None = 8

    def __post_init__(self) -> None:
        if self.max_group_size is not None and self.max_group_size < 1:
            raise ValueError("max_group_size must be >= 1 or None")
        if self.max_groups is not None and self.max_groups < 1:
            raise ValueError("max_groups must be >= 1 or None")

    @property
    def max_operators(self) -> int | None:
        """Upper bound on the size of an admissible ending (``r * s``)."""
        if self.max_group_size is None or self.max_groups is None:
            return None
        return self.max_group_size * self.max_groups

    def admits(self, group_sizes: Sequence[int]) -> bool:
        """Whether an ending with these group sizes satisfies the strategy."""
        if self.max_groups is not None and len(group_sizes) > self.max_groups:
            return False
        if self.max_group_size is not None and any(
            size > self.max_group_size for size in group_sizes
        ):
            return False
        return True

    @classmethod
    def unpruned(cls) -> "PruningStrategy":
        """The trivial strategy admitting every ending."""
        return cls(max_group_size=None, max_groups=None)

    def describe(self) -> str:
        r = "inf" if self.max_group_size is None else str(self.max_group_size)
        s = "inf" if self.max_groups is None else str(self.max_groups)
        return f"r={r}, s={s}"


class BlockIndex:
    """Bitmask bookkeeping for the operators of one block.

    Maps the block's operator names to bit positions in topological order and
    precomputes direct-successor and undirected-adjacency masks, which is all
    the ending enumeration and group computation need.
    """

    def __init__(self, graph: Graph, op_names: Sequence[str]):
        self.graph = graph
        self.names: list[str] = graph.topological_order(list(op_names))
        self.index: dict[str, int] = {name: i for i, name in enumerate(self.names)}
        n = len(self.names)
        self.n = n
        self.full_mask = (1 << n) - 1 if n else 0
        self.succ_mask = [0] * n
        self.pred_mask = [0] * n
        name_set = set(self.names)
        for name in self.names:
            v = self.index[name]
            for parent in graph.nodes[name].inputs:
                if parent in name_set:
                    u = self.index[parent]
                    self.succ_mask[u] |= 1 << v
                    self.pred_mask[v] |= 1 << u
        self.adj_mask = [self.succ_mask[i] | self.pred_mask[i] for i in range(n)]

    # ------------------------------------------------------------- conversions
    def mask_of(self, names: Sequence[str]) -> int:
        mask = 0
        for name in names:
            mask |= 1 << self.index[name]
        return mask

    def names_of(self, mask: int) -> tuple[str, ...]:
        return tuple(self.names[i] for i in range(self.n) if mask >> i & 1)

    def bits(self, mask: int) -> Iterator[int]:
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low


def groups_of_mask(block: BlockIndex, mask: int) -> list[int]:
    """Partition a subset (bitmask) into connected groups (list of bitmasks).

    Groups are the weakly connected components of the induced subgraph; two
    operators joined by an edge always share a group.
    """
    remaining = mask
    groups: list[int] = []
    while remaining:
        seed = remaining & -remaining
        component = seed
        frontier = seed
        while frontier:
            nxt = 0
            for bit in block.bits(frontier):
                nxt |= block.adj_mask[bit] & mask & ~component
            component |= nxt
            frontier = nxt
        groups.append(component)
        remaining &= ~component
    return groups


def is_ending(block: BlockIndex, subset: int, of: int) -> bool:
    """Whether ``subset`` is an ending of ``of`` (both bitmasks).

    ``subset`` must be a non-empty subset of ``of`` with no edge from
    ``subset`` to ``of - subset``.
    """
    if subset == 0 or subset & ~of:
        return False
    outside = of & ~subset
    for bit in block.bits(subset):
        if block.succ_mask[bit] & outside:
            return False
    return True


def enumerate_endings(
    block: BlockIndex,
    state: int,
    pruning: PruningStrategy | None = None,
) -> list[tuple[int, list[int]]]:
    """Every admissible ending of ``state`` with its group decomposition.

    Returns ``(ending_mask, group_masks)`` pairs in a deterministic order
    (depth-first, excluding each operator before including it — the order the
    DP's first-wins tie-breaking depends on).  Endings are exactly the
    non-empty successor-closed subsets of ``state``; the pruning strategy
    filters them by group count and group size.
    """
    pruning = pruning or PruningStrategy.unpruned()
    members = [i for i in range(block.n) if state >> i & 1]
    if not members:
        return []
    max_ops = pruning.max_operators
    max_groups = pruning.max_groups
    max_group_size = pruning.max_group_size
    succ_mask = block.succ_mask
    adj_mask = block.adj_mask

    # Process operators in reverse topological order so that by the time we
    # decide whether to include an operator, all of its successors (which have
    # larger topological indices) have already been decided.
    order = list(reversed(members))
    # Successors-inside-the-state per position, so the closedness check in the
    # hot recursion is two bitwise ops on precomputed masks.
    succ_in_state = [succ_mask[node] & state for node in order]
    include_bit = [1 << node for node in order]
    adj_of_position = [adj_mask[node] for node in order]
    last = len(order)
    out: list[tuple[int, list[int]]] = []
    append = out.append

    # The group decomposition is maintained incrementally along the DFS path
    # instead of recomputed at each leaf.  Positions are visited in order of
    # decreasing bit index, so a newly included operator always carries the
    # lowest bit of the partial ending: the group it forms (or merges into)
    # sorts first, and untouched groups keep their relative order — exactly
    # the ascending-lowest-bit order :func:`groups_of_mask` produces.  Groups
    # only ever merge as further operators are included, so a group that
    # exceeds ``max_group_size`` can never shrink back: the whole include
    # subtree is pruned on the spot rather than rejected leaf by leaf.
    def recurse(position: int, chosen: int, size: int, groups: tuple[int, ...]) -> None:
        if position == last:
            if chosen and (max_groups is None or len(groups) <= max_groups):
                append((chosen, list(groups)))
            return
        # Option 1: exclude this operator.
        recurse(position + 1, chosen, size, groups)
        # Option 2: include it, allowed only if all its successors inside the
        # state are already included (successor-closedness).
        if succ_in_state[position] & ~chosen:
            return
        if max_ops is not None and size >= max_ops:
            return
        bit = include_bit[position]
        adjacent = adj_of_position[position] & chosen
        if adjacent:
            merged = bit
            rest = []
            for group in groups:
                if group & adjacent:
                    merged |= group
                else:
                    rest.append(group)
            if max_group_size is not None and merged.bit_count() > max_group_size:
                return
            new_groups = (merged, *rest)
        else:
            new_groups = (bit, *groups)
        recurse(position + 1, chosen | bit, size + 1, new_groups)

    recurse(0, 0, 0, ())
    return out
