"""Lowering schedules to executable plans.

A :class:`~repro.core.schedule.Schedule` references operators by name and
records per-stage strategies; the execution engine wants concrete operator
groups (with merged operators already constructed).  ``lower_schedule`` bridges
the two, and ``measure_schedule`` is the end-to-end convenience used by every
experiment: lower, execute on the simulated device, return the result.
"""

from __future__ import annotations

from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from ..runtime.executor import ExecutionPlan, ExecutionResult, Executor
from .cost_model import stage_to_execution
from .schedule import Schedule

__all__ = ["lower_schedule", "measure_schedule", "schedule_latency_ms", "schedule_throughput"]


def lower_schedule(graph: Graph, schedule: Schedule) -> ExecutionPlan:
    """Lower a validated schedule into an :class:`ExecutionPlan`."""
    schedule.validate(graph)
    plan = ExecutionPlan(
        name=f"{graph.name}:{schedule.origin or 'schedule'}", batch_size=graph.batch_size
    )
    for stage_index, stage in enumerate(schedule.stages):
        plan.stages.append(
            stage_to_execution(
                graph, stage.operators, stage.strategy, label=f"stage{stage_index}"
            )
        )
    return plan


def measure_schedule(
    graph: Graph,
    schedule: Schedule,
    device: DeviceSpec,
    profile: KernelProfile = CUDNN_PROFILE,
    record_trace: bool = False,
) -> ExecutionResult:
    """Execute ``schedule`` on the simulated ``device`` and return the result."""
    plan = lower_schedule(graph, schedule)
    executor = Executor(device, profile, record_trace=record_trace)
    return executor.run(plan)


def schedule_latency_ms(
    graph: Graph,
    schedule: Schedule,
    device: DeviceSpec,
    profile: KernelProfile = CUDNN_PROFILE,
) -> float:
    """End-to-end latency (ms) of running ``schedule`` on ``device``."""
    return measure_schedule(graph, schedule, device, profile).latency_ms


def schedule_throughput(
    graph: Graph,
    schedule: Schedule,
    device: DeviceSpec,
    profile: KernelProfile = CUDNN_PROFILE,
) -> float:
    """Throughput (samples/s) of running ``schedule`` on ``device``."""
    return measure_schedule(graph, schedule, device, profile).throughput()
