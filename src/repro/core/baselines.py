"""Baseline schedules: Sequential and Greedy (Section 6.1).

* The **sequential** schedule executes operators one at a time following a
  topological order — what frameworks built on cuDNN do by default.
* The **greedy** schedule (Tang et al., 2018) repeatedly puts *every* operator
  whose predecessors have already been scheduled into the next stage.  It
  maximises eagerness, which front-loads work (leaving later stages
  under-utilised) and can over-subscribe the device (resource contention) —
  the two failure modes IOS fixes.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.ops import Placeholder
from .schedule import ParallelizationStrategy, Schedule, Stage

__all__ = ["sequential_schedule", "greedy_schedule"]


def sequential_schedule(graph: Graph) -> Schedule:
    """One operator per stage, in topological order."""
    schedule = Schedule(graph_name=graph.name, origin="sequential")
    for name in graph.topological_order():
        if isinstance(graph.nodes[name], Placeholder):
            continue
        schedule.append(Stage((name,), ParallelizationStrategy.CONCURRENT))
    schedule.validate(graph)
    return schedule


def greedy_schedule(graph: Graph, max_stage_size: int | None = None) -> Schedule:
    """All currently executable operators go into the next stage.

    ``max_stage_size`` optionally caps how many operators a stage may hold
    (the pure greedy strategy of the paper has no cap).
    """
    schedule = Schedule(graph_name=graph.name, origin="greedy")
    scheduled: set[str] = set()
    remaining = [
        name for name in graph.topological_order()
        if not isinstance(graph.nodes[name], Placeholder)
    ]
    while remaining:
        ready = []
        for name in remaining:
            preds = [
                p for p in graph.nodes[name].inputs
                if not isinstance(graph.nodes[p], Placeholder)
            ]
            if all(p in scheduled for p in preds):
                ready.append(name)
        if not ready:
            raise RuntimeError(f"greedy schedule stalled on graph {graph.name!r}")
        if max_stage_size is not None:
            ready = ready[:max_stage_size]
        schedule.append(Stage(tuple(ready), ParallelizationStrategy.CONCURRENT))
        scheduled.update(ready)
        remaining = [name for name in remaining if name not in scheduled]
    schedule.validate(graph)
    return schedule
