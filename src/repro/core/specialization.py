"""Schedule specialisation for batch sizes and devices (Section 7.2, Table 3).

An optimal schedule depends on the inference configuration: large batches fill
the device with intra-operator parallelism (less need for concurrency, more
benefit from merging), small batches leave it starved; a powerful GPU tolerates
many concurrent operators, a weak one suffers contention.  The helpers here
optimise a network once per configuration and then cross-evaluate every
schedule under every configuration, producing exactly the latency matrices of
Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from .cost_model import SimulatedCostModel
from .dp_scheduler import IOSScheduler, SchedulerConfig
from .lowering import schedule_latency_ms
from .schedule import Schedule

__all__ = ["SpecializationMatrix", "specialize_for_batch_sizes", "specialize_for_devices"]


@dataclass
class SpecializationMatrix:
    """Cross-evaluation of specialised schedules.

    ``latency_ms[i][j]`` is the latency of *executing* configuration ``i``
    using the schedule *optimised for* configuration ``j`` — the layout of
    Table 3, where the diagonal should be the best entry of each row.
    """

    execute_labels: list[str]
    optimize_labels: list[str]
    latency_ms: list[list[float]] = field(default_factory=list)

    def diagonal_is_best(self, tolerance: float = 1e-9) -> bool:
        """Whether every row's minimum lies on the diagonal (within tolerance)."""
        for i, row in enumerate(self.latency_ms):
            if min(row) < row[i] - tolerance:
                return False
        return True

    def row(self, label: str) -> list[float]:
        return self.latency_ms[self.execute_labels.index(label)]

    def as_rows(self) -> list[dict[str, object]]:
        rows = []
        for execute_label, latencies in zip(self.execute_labels, self.latency_ms):
            row: dict[str, object] = {"execute_on": execute_label}
            for optimize_label, value in zip(self.optimize_labels, latencies):
                row[f"optimized_for_{optimize_label}"] = value
            rows.append(row)
        return rows


def _default_scheduler(device: DeviceSpec, profile: KernelProfile) -> IOSScheduler:
    return IOSScheduler(SimulatedCostModel(device, profile), SchedulerConfig())


def specialize_for_batch_sizes(
    graph: Graph,
    batch_sizes: Sequence[int],
    device: DeviceSpec,
    profile: KernelProfile = CUDNN_PROFILE,
    scheduler_factory: Callable[[DeviceSpec, KernelProfile], IOSScheduler] | None = None,
) -> tuple[dict[int, Schedule], SpecializationMatrix]:
    """Optimise ``graph`` for each batch size and cross-evaluate the schedules.

    Reproduces Table 3 (1): rows are the batch size the network is executed
    with, columns the batch size the schedule was optimised for.
    """
    factory = scheduler_factory or _default_scheduler
    graphs = {bs: graph.with_batch_size(bs) for bs in batch_sizes}
    schedules: dict[int, Schedule] = {}
    for bs in batch_sizes:
        scheduler = factory(device, profile)
        schedules[bs] = scheduler.optimize_graph(graphs[bs]).schedule

    labels = [str(bs) for bs in batch_sizes]
    matrix = SpecializationMatrix(execute_labels=list(labels), optimize_labels=list(labels))
    for execute_bs in batch_sizes:
        row = []
        for optimize_bs in batch_sizes:
            row.append(
                schedule_latency_ms(graphs[execute_bs], schedules[optimize_bs], device, profile)
            )
        matrix.latency_ms.append(row)
    return schedules, matrix


def specialize_for_devices(
    graph: Graph,
    devices: Sequence[DeviceSpec],
    profile: KernelProfile = CUDNN_PROFILE,
    scheduler_factory: Callable[[DeviceSpec, KernelProfile], IOSScheduler] | None = None,
) -> tuple[dict[str, Schedule], SpecializationMatrix]:
    """Optimise ``graph`` for each device and cross-evaluate the schedules.

    Reproduces Table 3 (2): rows are the device the network is executed on,
    columns the device the schedule was optimised for.
    """
    factory = scheduler_factory or _default_scheduler
    schedules: dict[str, Schedule] = {}
    for device in devices:
        scheduler = factory(device, profile)
        schedules[device.name] = scheduler.optimize_graph(graph).schedule

    labels = [device.name for device in devices]
    matrix = SpecializationMatrix(execute_labels=list(labels), optimize_labels=list(labels))
    for execute_device in devices:
        row = []
        for optimize_device in devices:
            row.append(
                schedule_latency_ms(graph, schedules[optimize_device.name], execute_device, profile)
            )
        matrix.latency_ms.append(row)
    return schedules, matrix
