"""Process-wide memoization of per-block DP search results.

The engine-level compile cache (:class:`repro.engine.Engine`) and the
scheduler's per-instance block cache both die with their owner.  In a serving
process, however, the same blocks are searched again and again from *fresh*
owners: every new :class:`~repro.serve.registry.ScheduleRegistry` builds its
own engines, every engine builds its own scheduler, and a batch-size ladder
(``b=1..16``) compiles one model many times.  The :class:`ScheduleMemo` below
is the process-wide layer underneath all of them: it maps

    (cost-model signature, block structural fingerprint) -> (stages, stats)

so any scheduler in the process whose cost model is *observationally
identical* (same device, kernel profile, warmup/repeats, no noise) reuses a
finished block search instead of re-running it.

The cost-model signature (:meth:`repro.core.cost_model.CostModel.signature`)
is ``None`` for models whose measurements are not reproducible (profiling
noise enabled, unknown subclasses); those searches are never shared.  The
block fingerprint (:meth:`IOSScheduler._block_fingerprint`) already encodes
operator attributes, shapes, local wiring, pruning and the strategy set, so a
memo hit can only ever return a schedule that the searching scheduler would
have found itself.

Set ``REPRO_SCHEDULE_MEMO=0`` in the environment to disable sharing globally
(every search then runs from scratch, as before).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dp_scheduler import BlockStats

__all__ = ["ScheduleMemo", "schedule_memo", "clear_schedule_memo", "memo_enabled"]


class ScheduleMemo:
    """In-memory map of finished block searches, shared across schedulers.

    Values are stored in the scheduler's *position-based* form — stage
    operator indices into the block's topological order plus the strategy —
    exactly like the per-instance block cache, so a hit is rebound to the
    hitting block's operator names.  ``hits`` / ``misses`` count lookups with
    a usable signature; lookups with ``signature=None`` are not counted (the
    caller never reaches the memo for those).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple[list, "BlockStats"]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, signature: tuple, fingerprint: tuple) -> tuple[list, Any] | None:
        """The memoised (stages, stats) for a block, or ``None``."""
        entry = self._entries.get((signature, fingerprint))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, signature: tuple, fingerprint: tuple, stages: list, stats: Any) -> None:
        """Record a finished search (first writer wins; results are equal)."""
        self._entries.setdefault((signature, fingerprint), (stages, stats))

    def contains(self, signature: tuple, fingerprint: tuple) -> bool:
        """Membership probe that does not touch the hit/miss counters."""
        return (signature, fingerprint) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: The process-wide memo every scheduler consults (unless disabled).
_GLOBAL_MEMO = ScheduleMemo()


def schedule_memo() -> ScheduleMemo:
    """The process-wide :class:`ScheduleMemo` instance."""
    return _GLOBAL_MEMO


def clear_schedule_memo() -> None:
    """Drop every memoised block search (tests, benchmarks)."""
    _GLOBAL_MEMO.clear()


def memo_enabled() -> bool:
    """Whether cross-scheduler sharing is enabled (``REPRO_SCHEDULE_MEMO``)."""
    return os.environ.get("REPRO_SCHEDULE_MEMO", "1") != "0"
