"""Schedule-space and complexity accounting (Section 4.2, Table 1, Appendix A).

For each benchmarked network the paper reports, for its largest block,

* ``n`` — the number of operators,
* ``d`` — the DAG width,
* the theoretical upper bound ``C(n/d + 2, 2)^d`` on the number of
  (state, ending) pairs the DP visits,
* the *real* number of transitions ``#(S, S')``, and
* the total number of feasible schedules.

This module computes all of those exactly (the transition and schedule counts
by exhaustive DP over endings, without any latency measurements) plus the
relaxed bound ``(n/d + 1)^(2d)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import Block, Graph
from .endings import BlockIndex, PruningStrategy, enumerate_endings
from .width import maximum_antichain_size

__all__ = [
    "transition_upper_bound",
    "relaxed_transition_bound",
    "count_transitions_and_states",
    "count_schedules",
    "BlockComplexity",
    "block_complexity",
    "largest_block",
]


def transition_upper_bound(n: int, d: int) -> float:
    """The bound ``C(n/d + 2, 2)^d`` of the Theorem in Section 4.2.

    ``n/d`` is treated as a real number (as in the paper's Table 1), so the
    binomial coefficient is evaluated with its polynomial form
    ``x * (x - 1) / 2`` at ``x = n/d + 2``.
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    x = n / d + 2.0
    return (x * (x - 1.0) / 2.0) ** d


def relaxed_transition_bound(n: int, d: int) -> float:
    """The relaxed bound ``(n/d + 1)^(2d)``."""
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    return (n / d + 1.0) ** (2 * d)


def count_transitions_and_states(
    graph: Graph,
    op_names: list[str],
    pruning: PruningStrategy | None = None,
) -> tuple[int, int]:
    """Exact number of DP transitions ``#(S, S')`` and reachable states.

    A transition is a pair of a reachable state ``S`` (the full set minus a
    union of endings) and an admissible ending ``S'`` of ``S``.  This is the
    quantity reported in the ``#(S, S')`` column of Table 1; without pruning
    it equals the number of edges in the state graph of Figure 5.
    """
    index = BlockIndex(graph, op_names)
    pruning = pruning or PruningStrategy.unpruned()
    visited: set[int] = set()
    transitions = 0

    stack = [index.full_mask]
    visited.add(index.full_mask)
    while stack:
        state = stack.pop()
        if state == 0:
            continue
        for ending, _groups in enumerate_endings(index, state, pruning):
            transitions += 1
            nxt = state & ~ending
            if nxt not in visited:
                visited.add(nxt)
                stack.append(nxt)
    # The empty state is reachable but contributes no outgoing transitions.
    num_states = len(visited)
    return transitions, num_states


def count_schedules(
    graph: Graph,
    op_names: list[str],
    pruning: PruningStrategy | None = None,
) -> int:
    """Exact number of feasible schedules of the operator set.

    A schedule is an ordered decomposition of the operator set into endings;
    the count satisfies ``f(S) = sum over endings S' of S of f(S - S')`` with
    ``f(empty) = 1``.  Without pruning this reproduces the "#Schedules" column
    of Table 1 (e.g. 9.2e22 for the largest RandWire block in the paper).
    """
    index = BlockIndex(graph, op_names)
    pruning = pruning or PruningStrategy.unpruned()
    memo: dict[int, int] = {0: 1}

    def count(state: int) -> int:
        cached = memo.get(state)
        if cached is not None:
            return cached
        total = 0
        for ending, _groups in enumerate_endings(index, state, pruning):
            total += count(state & ~ending)
        memo[state] = total
        return total

    return count(index.full_mask)


@dataclass(frozen=True)
class BlockComplexity:
    """All Table-1 quantities for one block."""

    network: str
    block_name: str
    num_operators: int
    width: int
    upper_bound: float
    num_transitions: int
    num_states: int
    num_schedules: int

    def as_row(self) -> dict[str, object]:
        return {
            "network": self.network,
            "block": self.block_name,
            "n": self.num_operators,
            "d": self.width,
            "bound": self.upper_bound,
            "#(S,S')": self.num_transitions,
            "#schedules": self.num_schedules,
        }


def largest_block(graph: Graph) -> Block:
    """The block with the most schedulable operators (Table 1 analyses these)."""
    blocks = [b for b in graph.blocks if graph.schedulable_names(b)]
    if not blocks:
        raise ValueError(f"graph {graph.name!r} has no non-empty blocks")
    return max(blocks, key=lambda b: len(graph.schedulable_names(b)))


def block_complexity(
    graph: Graph,
    block: Block | None = None,
    pruning: PruningStrategy | None = None,
    count_schedule_space: bool = True,
) -> BlockComplexity:
    """Compute the Table-1 row for one block (default: the largest block)."""
    block = block or largest_block(graph)
    op_names = graph.schedulable_names(block)
    n = len(op_names)
    d = maximum_antichain_size(graph, op_names)
    transitions, states = count_transitions_and_states(graph, op_names, pruning)
    schedules = count_schedules(graph, op_names, pruning) if count_schedule_space else -1
    return BlockComplexity(
        network=graph.name,
        block_name=block.name,
        num_operators=n,
        width=d,
        upper_bound=transition_upper_bound(n, d),
        num_transitions=transitions,
        num_states=states,
        num_schedules=schedules,
    )
