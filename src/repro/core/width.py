"""DAG width (Definition 1) via Dilworth's theorem.

The *width* ``d`` of a DAG is the size of its largest antichain — the largest
set of operators no two of which are connected by a path.  It governs the
complexity of IOS (Theorem in Section 4.2).  By Dilworth's theorem the largest
antichain equals the minimum number of chains needed to cover the DAG, and the
minimum chain cover of a DAG with ``n`` vertices equals ``n - M`` where ``M``
is a maximum matching of the bipartite graph whose edges are the pairs
``(u, v)`` with a path from ``u`` to ``v`` (the transitive closure).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..ir.graph import Block, Graph

__all__ = ["dag_width", "block_width", "transitive_closure_masks", "maximum_antichain_size"]


def transitive_closure_masks(graph: Graph, op_names: Sequence[str]) -> dict[str, set[str]]:
    """Reachability sets (descendants) of each operator within ``op_names``."""
    names = graph.topological_order(list(op_names))
    name_set = set(names)
    reachable: dict[str, set[str]] = {name: set() for name in names}
    # Walk in reverse topological order so successors' reachability is complete.
    for name in reversed(names):
        for succ in graph.successors(name):
            if succ in name_set:
                reachable[name].add(succ)
                reachable[name] |= reachable[succ]
    return reachable


def maximum_antichain_size(graph: Graph, op_names: Sequence[str]) -> int:
    """Size of the largest antichain of the subgraph induced by ``op_names``."""
    names = [n for n in graph.topological_order(list(op_names))]
    n = len(names)
    if n == 0:
        return 0
    reachable = transitive_closure_masks(graph, names)

    # Minimum chain cover via König: build the bipartite "split" graph where
    # the left copy of u connects to the right copy of v iff v is reachable
    # from u, and find a maximum matching.
    bipartite = nx.Graph()
    left = {name: ("L", name) for name in names}
    right = {name: ("R", name) for name in names}
    bipartite.add_nodes_from(left.values(), bipartite=0)
    bipartite.add_nodes_from(right.values(), bipartite=1)
    for u in names:
        for v in reachable[u]:
            bipartite.add_edge(left[u], right[v])
    matching = nx.bipartite.maximum_matching(bipartite, top_nodes=list(left.values()))
    # `maximum_matching` returns both directions; count matched left nodes.
    matched = sum(1 for node in matching if node[0] == "L")
    return n - matched


def dag_width(graph: Graph, op_names: Sequence[str] | None = None) -> int:
    """Width of the whole graph or of the subgraph induced by ``op_names``."""
    names = op_names if op_names is not None else graph.schedulable_names()
    return maximum_antichain_size(graph, list(names))


def block_width(graph: Graph, block: Block) -> int:
    """Width of one block (the ``d`` reported per network in Table 1)."""
    return maximum_antichain_size(graph, graph.schedulable_names(block))
