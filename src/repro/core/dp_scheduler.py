"""The Inter-Operator Scheduler: Algorithm 1 of the paper.

``IOSScheduler`` finds, for every block of a computation graph, the sequence of
stages (with per-stage parallelisation strategies) minimising total latency
according to a :class:`~repro.core.cost_model.CostModel`.  It implements the
three functions of Algorithm 1:

* ``INTER OPERATOR SCHEDULER`` — :meth:`IOSScheduler.optimize_block`
  (entry point + schedule reconstruction from ``choice[·]``),
* ``SCHEDULER`` — the memoised recursion over operator subsets
  (:meth:`IOSScheduler._scheduler`),
* ``GENERATE STAGE`` — delegated to :meth:`CostModel.generate_stage`.

Operator subsets are represented as bitmasks over a per-block
:class:`~repro.core.endings.BlockIndex`; endings are enumerated subject to the
``(r, s)`` pruning strategy of Section 4.3.

Modern CNNs stack blocks, so — exactly as the paper does (Section 4.2) — each
block is optimised independently and the per-block schedules are concatenated.
Structurally identical blocks (e.g. repeated NasNet cells) share one search via
a block fingerprint cache.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Sequence

from ..ir.graph import Block, Graph
from .cost_model import CostModel, StageChoice
from .endings import BlockIndex, PruningStrategy, enumerate_endings
from .merge import can_merge
from .schedule import ParallelizationStrategy, Schedule, Stage
from .width import maximum_antichain_size

__all__ = [
    "SchedulerConfig",
    "BlockStats",
    "ScheduleResult",
    "IOSScheduler",
    "IOSVariant",
    "UnknownVariantError",
    "VALID_VARIANTS",
    "normalize_variant",
    "variant_label",
]


#: Named strategy sets corresponding to the paper's IOS variants (Section 6.1).
IOSVariant = {
    "ios-both": (ParallelizationStrategy.CONCURRENT, ParallelizationStrategy.MERGE),
    "ios-parallel": (ParallelizationStrategy.CONCURRENT,),
    "ios-merge": (ParallelizationStrategy.MERGE,),
}

#: Canonical variant names, in the paper's presentation order.
VALID_VARIANTS = tuple(IOSVariant)


class UnknownVariantError(KeyError, ValueError):
    """An IOS variant name that :func:`normalize_variant` cannot resolve.

    Subclasses both :class:`KeyError` (the historical exception of
    ``SchedulerConfig.variant``) and :class:`ValueError` (what a bad
    user-supplied name morally is), so both idioms keep working.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


def normalize_variant(name: str) -> str:
    """Resolve a variant spelling to its canonical ``ios-*`` name.

    Accepts the canonical names plus the obvious drifted spellings seen in
    configs and CLIs — case differences, underscores instead of dashes, and
    the bare suffix (``"both"`` → ``"ios-both"``).  Every layer that keys on
    a variant (``SchedulerConfig.variant``, the serve registry, the CLI, the
    engine) funnels through this one function so the same variant can never
    land under two different keys.

    Raises :class:`UnknownVariantError` (a ``ValueError``) listing the valid
    variants on bad input.
    """
    if isinstance(name, str):
        key = name.strip().lower().replace("_", "-").replace(" ", "-")
        if key in IOSVariant:
            return key
        if f"ios-{key}" in IOSVariant:
            return f"ios-{key}"
    raise UnknownVariantError(
        f"unknown IOS variant {name!r}; valid variants: {', '.join(VALID_VARIANTS)}"
    )


def variant_label(config: "SchedulerConfig") -> str:
    """The canonical variant name whose strategy set ``config`` uses.

    Returns ``"custom"`` when the strategy set matches none of the named
    variants (only possible by constructing :class:`SchedulerConfig` by hand).
    """
    strategies = set(config.strategies)
    for name, named in IOSVariant.items():
        if strategies == set(named):
            return name
    return "custom"


@dataclass(frozen=True)
class SchedulerConfig:
    """Configuration of one IOS search."""

    #: Pruning strategy (r, s); the paper's default is r=3, s=8.
    pruning: PruningStrategy = PruningStrategy(max_group_size=3, max_groups=8)
    #: Which parallelisation strategies GENERATE STAGE may choose between.
    strategies: tuple[ParallelizationStrategy, ...] = IOSVariant["ios-both"]
    #: Reuse search results across structurally identical blocks.
    reuse_identical_blocks: bool = True

    @classmethod
    def variant(cls, name: str, pruning: PruningStrategy | None = None,
                reuse_identical_blocks: bool = True) -> "SchedulerConfig":
        """Build a config for one of the named IOS variants of the paper.

        The name goes through :func:`normalize_variant`, so drifted spellings
        (``"BOTH"``, ``"ios_merge"``) resolve to the canonical variant and bad
        names raise :class:`UnknownVariantError` listing the valid ones.
        """
        key = normalize_variant(name)
        return cls(
            pruning=pruning if pruning is not None else PruningStrategy(3, 8),
            strategies=IOSVariant[key],
            reuse_identical_blocks=reuse_identical_blocks,
        )


@dataclass
class BlockStats:
    """Search statistics for one block (feeds Table 1 and Figure 9)."""

    block_name: str
    num_operators: int
    width: int
    num_states: int = 0
    num_transitions: int = 0
    num_measurements: int = 0
    optimized_latency_ms: float = 0.0
    elapsed_s: float = 0.0
    reused_from: str | None = None


@dataclass
class ScheduleResult:
    """Result of optimising a whole graph."""

    schedule: Schedule
    block_stats: list[BlockStats] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: The graph the schedule refers to.  Equal to the input graph unless the
    #: search was preceded by a rewrite pipeline (``optimize_graph(passes=...)``),
    #: in which case the schedule's operator names only exist in this graph.
    graph: Graph | None = None
    #: Per-pass rewrite statistics when a pipeline ran, else ``None``.
    pass_stats: list | None = None

    @property
    def total_transitions(self) -> int:
        return sum(stats.num_transitions for stats in self.block_stats)

    @property
    def total_measurements(self) -> int:
        return sum(stats.num_measurements for stats in self.block_stats)

    @property
    def predicted_latency_ms(self) -> float:
        """Sum of optimal per-block stage latencies found by the DP."""
        return sum(stats.optimized_latency_ms for stats in self.block_stats)


class IOSScheduler:
    """Dynamic-programming inter-operator scheduler (Algorithm 1)."""

    def __init__(self, cost_model: CostModel, config: SchedulerConfig | None = None):
        self.cost_model = cost_model
        self.config = config or SchedulerConfig()
        #: Cache of per-block results keyed by structural fingerprint.
        self._block_cache: dict[tuple, tuple[list[tuple[tuple[int, ...], ParallelizationStrategy]], BlockStats]] = {}

    # --------------------------------------------------------------- block DP
    def optimize_block(self, graph: Graph, block: Block) -> tuple[list[Stage], BlockStats]:
        """Find an optimal stage decomposition for one block.

        Returns the stages (in execution order) and the search statistics.
        """
        op_names = graph.schedulable_names(block)
        if not op_names:
            return [], BlockStats(block_name=block.name, num_operators=0, width=0)

        fingerprint = self._block_fingerprint(graph, op_names)
        index = BlockIndex(graph, op_names)

        if self.config.reuse_identical_blocks and fingerprint in self._block_cache:
            cached_stages, cached_stats = self._block_cache[fingerprint]
            stages = [
                Stage(tuple(index.names[i] for i in positions), strategy)
                for positions, strategy in cached_stages
            ]
            stats = BlockStats(
                block_name=block.name,
                num_operators=cached_stats.num_operators,
                width=cached_stats.width,
                num_states=cached_stats.num_states,
                num_transitions=cached_stats.num_transitions,
                num_measurements=0,
                optimized_latency_ms=cached_stats.optimized_latency_ms,
                elapsed_s=0.0,
                reused_from=cached_stats.block_name,
            )
            return stages, stats

        start = time.perf_counter()
        measurements_before = self.cost_model.num_measurements

        cost: dict[int, float] = {0: 0.0}
        choice: dict[int, tuple[int, ParallelizationStrategy]] = {}
        transitions = 0

        def scheduler(state: int) -> float:
            """SCHEDULER(S): minimal latency over all schedules of ``state``."""
            nonlocal transitions
            cached = cost.get(state)
            if cached is not None:
                return cached
            best = float("inf")
            best_choice: tuple[int, ParallelizationStrategy] | None = None
            merge_only = ParallelizationStrategy.CONCURRENT not in self.config.strategies
            for ending, _groups in enumerate_endings(index, state, self.config.pruning):
                op_subset = index.names_of(ending)
                if merge_only and len(op_subset) > 1 and not can_merge(graph, op_subset):
                    # The IOS-Merge variant only forms multi-operator stages by
                    # merging; unmergeable endings degenerate to single-operator
                    # stages, so skip them (Section 6.1: IOS-Merge equals the
                    # sequential schedule on RandWire/NasNet).
                    continue
                transitions += 1
                stage_choice: StageChoice = self.cost_model.generate_stage(
                    graph, op_subset, self.config.strategies
                )
                total = scheduler(state & ~ending) + stage_choice.latency_ms
                if total < best:
                    best = total
                    best_choice = (ending, stage_choice.strategy)
            if best_choice is None:
                raise RuntimeError(
                    f"no admissible ending found for a state of block {block.name!r}; "
                    "the pruning strategy is too restrictive"
                )
            cost[state] = best
            choice[state] = best_choice
            return best

        optimal_latency = scheduler(index.full_mask)

        # Schedule construction (INTER OPERATOR SCHEDULER, L6-11): walk the
        # recorded choices from the full set back to the empty set.
        reversed_stages: list[tuple[int, ParallelizationStrategy]] = []
        state = index.full_mask
        while state:
            ending, strategy = choice[state]
            reversed_stages.append((ending, strategy))
            state &= ~ending
        stage_masks = list(reversed(reversed_stages))

        stages = [
            Stage(index.names_of(mask), strategy) for mask, strategy in stage_masks
        ]
        stats = BlockStats(
            block_name=block.name,
            num_operators=index.n,
            width=maximum_antichain_size(graph, op_names),
            num_states=len(cost) - 1,
            num_transitions=transitions,
            num_measurements=self.cost_model.num_measurements - measurements_before,
            optimized_latency_ms=optimal_latency,
            elapsed_s=time.perf_counter() - start,
        )

        if self.config.reuse_identical_blocks:
            cached_stages = [
                (tuple(i for i in range(index.n) if mask >> i & 1), strategy)
                for mask, strategy in stage_masks
            ]
            self._block_cache[fingerprint] = (cached_stages, stats)
        return stages, stats

    # ------------------------------------------------------------- whole graph
    def optimize_graph(self, graph: Graph, passes=None) -> ScheduleResult:
        """Optimise every block of ``graph`` and concatenate the block schedules.

        .. deprecated:: 1.3
            The ``passes`` parameter is deprecated.  Rewriting-then-scheduling
            is the engine's job: use ``repro.engine.Engine(device,
            passes=...)`` and call ``engine.compile(graph)`` — its ``.search``
            attribute is this method's :class:`ScheduleResult`.  Calling
            ``optimize_graph(graph)`` with no ``passes`` stays supported; it
            is the search primitive the engine itself builds on.

        When the deprecated ``passes`` is given, a graph-rewriting pipeline
        runs *before* the DP search (``True`` selects
        :func:`repro.passes.default_pipeline`; a
        :class:`repro.passes.PassManager` / list of pass names runs that one)
        and the result carries the rewritten graph plus per-pass stats.
        """
        start = time.perf_counter()
        pass_stats = None
        if passes is not None and passes is not False:
            warnings.warn(
                "IOSScheduler.optimize_graph(passes=...) is deprecated; use "
                "repro.engine.Engine(device, passes=...) and engine.compile(graph) "
                "(compiled.search is this ScheduleResult)",
                DeprecationWarning,
                stacklevel=2,
            )
            # Imported lazily: repro.passes depends only on repro.ir, but the
            # scheduler must stay importable without the passes package loaded.
            from ..passes import optimize_graph as run_passes

            pass_result = run_passes(graph, None if passes is True else passes)
            graph = pass_result.graph
            pass_stats = pass_result.stats
        schedule = Schedule(graph_name=graph.name, origin=self._origin_label())
        all_stats: list[BlockStats] = []
        for block in graph.blocks:
            stages, stats = self.optimize_block(graph, block)
            schedule.extend(stages)
            all_stats.append(stats)
        schedule.validate(graph)
        return ScheduleResult(
            schedule=schedule,
            block_stats=all_stats,
            elapsed_s=time.perf_counter() - start,
            graph=graph,
            pass_stats=pass_stats,
        )

    # ----------------------------------------------------------------- helpers
    def _origin_label(self) -> str:
        label = variant_label(self.config)
        if label == "custom":
            label = "ios-merge" if ParallelizationStrategy.MERGE in self.config.strategies else "ios-parallel"
        return f"{label} ({self.config.pruning.describe()})"

    def _block_fingerprint(self, graph: Graph, op_names: Sequence[str]) -> tuple:
        """Structural fingerprint of a block: operator configs + local wiring.

        Two blocks with identical fingerprints have isomorphic internal
        structure, identical operator attributes and identical input shapes,
        so their optimal schedules are identical up to operator renaming.
        """
        order = graph.topological_order(list(op_names))
        position = {name: i for i, name in enumerate(order)}
        entries = []
        for name in order:
            op = graph.nodes[name]
            local_inputs = tuple(
                position[p] if p in position else f"ext:{graph.nodes[p].output_shape}"
                for p in op.inputs
            )
            attrs = tuple(sorted((k, str(v)) for k, v in op.attrs().items()))
            entries.append((op.kind, attrs, local_inputs, str(op.output_shape)))
        return (
            tuple(entries),
            self.config.pruning,
            tuple(self.config.strategies),
        )
