"""The Inter-Operator Scheduler: Algorithm 1 of the paper.

``IOSScheduler`` finds, for every block of a computation graph, the sequence of
stages (with per-stage parallelisation strategies) minimising total latency
according to a :class:`~repro.core.cost_model.CostModel`.  It implements the
three functions of Algorithm 1:

* ``INTER OPERATOR SCHEDULER`` — :meth:`IOSScheduler.optimize_block`
  (entry point + schedule reconstruction from ``choice[·]``),
* ``SCHEDULER`` — the memoised recursion over operator subsets
  (:meth:`IOSScheduler._scheduler`),
* ``GENERATE STAGE`` — delegated to :meth:`CostModel.generate_stage`.

Operator subsets are represented as bitmasks over a per-block
:class:`~repro.core.endings.BlockIndex`; endings are enumerated subject to the
``(r, s)`` pruning strategy of Section 4.3.

Modern CNNs stack blocks, so — exactly as the paper does (Section 4.2) — each
block is optimised independently and the per-block schedules are concatenated.
Structurally identical blocks (e.g. repeated NasNet cells) share one search via
a block fingerprint cache.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..ir.graph import Block, Graph
from .cost_model import CostModel, StageChoice
from .endings import BlockIndex, PruningStrategy, enumerate_endings
from .memo import memo_enabled, schedule_memo
from .merge import can_merge
from .schedule import ParallelizationStrategy, Schedule, Stage
from .width import maximum_antichain_size

__all__ = [
    "SchedulerConfig",
    "BlockStats",
    "ScheduleResult",
    "IOSScheduler",
    "IOSVariant",
    "UnknownVariantError",
    "VALID_VARIANTS",
    "normalize_variant",
    "variant_label",
    "resolve_compile_jobs",
    "shutdown_search_pools",
]


#: Named strategy sets corresponding to the paper's IOS variants (Section 6.1).
IOSVariant = {
    "ios-both": (ParallelizationStrategy.CONCURRENT, ParallelizationStrategy.MERGE),
    "ios-parallel": (ParallelizationStrategy.CONCURRENT,),
    "ios-merge": (ParallelizationStrategy.MERGE,),
}

#: Canonical variant names, in the paper's presentation order.
VALID_VARIANTS = tuple(IOSVariant)


class UnknownVariantError(KeyError, ValueError):
    """An IOS variant name that :func:`normalize_variant` cannot resolve.

    Subclasses both :class:`KeyError` (the historical exception of
    ``SchedulerConfig.variant``) and :class:`ValueError` (what a bad
    user-supplied name morally is), so both idioms keep working.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


def normalize_variant(name: str) -> str:
    """Resolve a variant spelling to its canonical ``ios-*`` name.

    Accepts the canonical names plus the obvious drifted spellings seen in
    configs and CLIs — case differences, underscores instead of dashes, and
    the bare suffix (``"both"`` → ``"ios-both"``).  Every layer that keys on
    a variant (``SchedulerConfig.variant``, the serve registry, the CLI, the
    engine) funnels through this one function so the same variant can never
    land under two different keys.

    Raises :class:`UnknownVariantError` (a ``ValueError``) listing the valid
    variants on bad input.
    """
    if isinstance(name, str):
        key = name.strip().lower().replace("_", "-").replace(" ", "-")
        if key in IOSVariant:
            return key
        if f"ios-{key}" in IOSVariant:
            return f"ios-{key}"
    raise UnknownVariantError(
        f"unknown IOS variant {name!r}; valid variants: {', '.join(VALID_VARIANTS)}"
    )


def variant_label(config: "SchedulerConfig") -> str:
    """The canonical variant name whose strategy set ``config`` uses.

    Returns ``"custom"`` when the strategy set matches none of the named
    variants (only possible by constructing :class:`SchedulerConfig` by hand).
    """
    strategies = set(config.strategies)
    for name, named in IOSVariant.items():
        if strategies == set(named):
            return name
    return "custom"


@dataclass(frozen=True)
class SchedulerConfig:
    """Configuration of one IOS search."""

    #: Pruning strategy (r, s); the paper's default is r=3, s=8.
    pruning: PruningStrategy = PruningStrategy(max_group_size=3, max_groups=8)
    #: Which parallelisation strategies GENERATE STAGE may choose between.
    strategies: tuple[ParallelizationStrategy, ...] = IOSVariant["ios-both"]
    #: Reuse search results across structurally identical blocks.
    reuse_identical_blocks: bool = True

    @classmethod
    def variant(cls, name: str, pruning: PruningStrategy | None = None,
                reuse_identical_blocks: bool = True) -> "SchedulerConfig":
        """Build a config for one of the named IOS variants of the paper.

        The name goes through :func:`normalize_variant`, so drifted spellings
        (``"BOTH"``, ``"ios_merge"``) resolve to the canonical variant and bad
        names raise :class:`UnknownVariantError` listing the valid ones.
        """
        key = normalize_variant(name)
        return cls(
            pruning=pruning if pruning is not None else PruningStrategy(3, 8),
            strategies=IOSVariant[key],
            reuse_identical_blocks=reuse_identical_blocks,
        )


@dataclass
class BlockStats:
    """Search statistics for one block (feeds Table 1 and Figure 9).

    ``source`` records where the block's stages came from: ``"search"`` (a DP
    search ran inline), ``"parallel"`` (a worker process ran the search),
    ``"block-cache"`` (reused from an identical block of this scheduler),
    ``"memo"`` (reused from the process-wide schedule memo), ``"spliced"``
    (carried over unchanged from a prior compile by the engine's incremental
    path), or ``"empty"`` (no schedulable operators).
    """

    block_name: str
    num_operators: int
    width: int
    num_states: int = 0
    num_transitions: int = 0
    num_measurements: int = 0
    optimized_latency_ms: float = 0.0
    elapsed_s: float = 0.0
    reused_from: str | None = None
    #: Number of stages the block's schedule occupies (artifact block records).
    num_stages: int = 0
    source: str = "search"


@dataclass
class ScheduleResult:
    """Result of optimising a whole graph."""

    schedule: Schedule
    block_stats: list[BlockStats] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: The graph the schedule refers to.  Equal to the input graph unless the
    #: search was preceded by a rewrite pipeline (``optimize_graph(passes=...)``),
    #: in which case the schedule's operator names only exist in this graph.
    graph: Graph | None = None
    #: Per-pass rewrite statistics when a pipeline ran, else ``None``.
    pass_stats: list | None = None

    @property
    def total_transitions(self) -> int:
        return sum(stats.num_transitions for stats in self.block_stats)

    @property
    def total_measurements(self) -> int:
        return sum(stats.num_measurements for stats in self.block_stats)

    @property
    def predicted_latency_ms(self) -> float:
        """Sum of optimal per-block stage latencies found by the DP."""
        return sum(stats.optimized_latency_ms for stats in self.block_stats)


class IOSScheduler:
    """Dynamic-programming inter-operator scheduler (Algorithm 1).

    Block searches are reused at three levels, all keyed on the same
    structural block fingerprint: the per-instance ``_block_cache`` (repeated
    blocks inside one scheduler, e.g. NasNet cells), the process-wide
    :func:`~repro.core.memo.schedule_memo` (identical blocks across engines /
    registries, gated on the cost model's :meth:`~CostModel.signature`), and —
    for a cold multi-block graph — an optional multiprocessing fan-out that
    searches independent blocks in worker processes (``optimize_graph(...,
    jobs=N)``) and seeds the caches with their results in deterministic block
    order.  Every path yields byte-identical schedules to the plain serial
    search; only wall-clock time and *where* measurements happen differ.
    """

    def __init__(self, cost_model: CostModel, config: SchedulerConfig | None = None):
        self.cost_model = cost_model
        self.config = config or SchedulerConfig()
        #: Cache of per-block results keyed by structural fingerprint.
        self._block_cache: dict[tuple, tuple[list[tuple[tuple[int, ...], ParallelizationStrategy]], BlockStats]] = {}
        #: Fingerprints searched by worker processes but not yet consumed: the
        #: first block that uses one reports the worker's full search stats
        #: instead of a cache-hit stub.
        self._fresh_results: set[tuple] = set()
        self._memo_signature_cache: tuple | None | str = "unset"

    # ----------------------------------------------------------------- memo
    def _memo_signature(self) -> tuple | None:
        """The cost model's shareable signature, combined with the config."""
        if self._memo_signature_cache == "unset":
            signature = self.cost_model.signature()
            self._memo_signature_cache = None if signature is None else signature
        return self._memo_signature_cache  # type: ignore[return-value]

    def _rebind(self, index: BlockIndex, cached_stages) -> list[Stage]:
        """Bind position-based cached stages to this block's operator names."""
        names = index.names
        return [
            Stage(tuple(names[i] for i in positions), strategy)
            for positions, strategy in cached_stages
        ]

    # --------------------------------------------------------------- block DP
    def optimize_block(
        self, graph: Graph, block: Block, *, use_memo: bool = True
    ) -> tuple[list[Stage], BlockStats]:
        """Find an optimal stage decomposition for one block.

        Returns the stages (in execution order) and the search statistics.
        ``use_memo=False`` skips the process-wide memo in both directions
        (the per-instance block cache still applies).
        """
        op_names = graph.schedulable_names(block)
        if not op_names:
            return [], BlockStats(
                block_name=block.name, num_operators=0, width=0, source="empty"
            )

        fingerprint = self._block_fingerprint(graph, op_names)
        index = BlockIndex(graph, op_names)

        if self.config.reuse_identical_blocks:
            entry = self._block_cache.get(fingerprint)
            if entry is not None:
                cached_stages, cached_stats = entry
                stages = self._rebind(index, cached_stages)
                if fingerprint in self._fresh_results:
                    # First consumption of a worker-process search: report the
                    # real search stats (the work happened, in a worker).
                    self._fresh_results.discard(fingerprint)
                    return stages, replace(cached_stats, block_name=block.name)
                stats = replace(
                    cached_stats,
                    block_name=block.name,
                    num_measurements=0,
                    elapsed_s=0.0,
                    reused_from=cached_stats.block_name,
                    source="block-cache",
                )
                return stages, stats

        use_memo = use_memo and self.config.reuse_identical_blocks
        memo = schedule_memo() if use_memo and memo_enabled() else None
        signature = self._memo_signature() if memo is not None else None
        if memo is not None and signature is not None:
            entry = memo.get(signature, fingerprint)
            if entry is not None:
                cached_stages, cached_stats = entry
                self._block_cache[fingerprint] = entry
                stages = self._rebind(index, cached_stages)
                stats = replace(
                    cached_stats,
                    block_name=block.name,
                    num_measurements=0,
                    elapsed_s=0.0,
                    reused_from=f"memo:{cached_stats.block_name}",
                    source="memo",
                )
                return stages, stats

        start = time.perf_counter()
        measurements_before = self.cost_model.num_measurements

        stage_masks, optimal_latency, num_states, transitions = self._search_block_dp(
            graph, index, block.name
        )

        names_of = index.names_of
        stages = [Stage(names_of(mask), strategy) for mask, strategy in stage_masks]
        stats = BlockStats(
            block_name=block.name,
            num_operators=index.n,
            width=maximum_antichain_size(graph, op_names),
            num_states=num_states,
            num_transitions=transitions,
            num_measurements=self.cost_model.num_measurements - measurements_before,
            optimized_latency_ms=optimal_latency,
            elapsed_s=time.perf_counter() - start,
            num_stages=len(stages),
            source="search",
        )

        cached_stages = [
            (tuple(i for i in range(index.n) if mask >> i & 1), strategy)
            for mask, strategy in stage_masks
        ]
        if self.config.reuse_identical_blocks:
            self._block_cache[fingerprint] = (cached_stages, stats)
        if memo is not None and signature is not None:
            memo.put(signature, fingerprint, cached_stages, stats)
        return stages, stats

    def _search_block_dp(
        self, graph: Graph, index: BlockIndex, block_name: str
    ) -> tuple[list[tuple[int, ParallelizationStrategy]], float, int, int]:
        """The DP search proper: SCHEDULER(S) over the block's subset lattice.

        Returns ``(stage_masks, optimal_latency, num_states, transitions)``.
        Candidate endings recur across states, so their GENERATE STAGE result
        is cached per ending bitmask — the latency values (and hence the
        chosen schedule) are identical to pricing every transition directly.
        """
        config = self.config
        pruning = config.pruning
        strategies = config.strategies
        cost_model = self.cost_model
        generate_stage = cost_model.generate_stage
        names_of = index.names_of
        merge_only = ParallelizationStrategy.CONCURRENT not in strategies

        cost: dict[int, float] = {0: 0.0}
        choice: dict[int, tuple[int, ParallelizationStrategy]] = {}
        #: GENERATE STAGE result per candidate ending; ``None`` marks endings
        #: skipped by the IOS-Merge variant (unmergeable multi-operator sets).
        ending_choice: dict[int, StageChoice | None] = {}
        transitions = 0
        inf = float("inf")

        def scheduler(state: int) -> float:
            """SCHEDULER(S): minimal latency over all schedules of ``state``."""
            nonlocal transitions
            cached = cost.get(state)
            if cached is not None:
                return cached
            best = inf
            best_choice: tuple[int, ParallelizationStrategy] | None = None
            for ending, group_masks in enumerate_endings(index, state, pruning):
                stage_choice = ending_choice.get(ending, False)
                if stage_choice is False:
                    op_subset = names_of(ending)
                    if merge_only and len(op_subset) > 1 and not can_merge(graph, op_subset):
                        # The IOS-Merge variant only forms multi-operator
                        # stages by merging; unmergeable endings degenerate to
                        # single-operator stages, so skip them (Section 6.1:
                        # IOS-Merge equals the sequential schedule on
                        # RandWire/NasNet).
                        ending_choice[ending] = None
                        continue
                    # The enumeration already yields the ending's connected
                    # groups (ordered and topo-sorted exactly like
                    # ``connected_groups``), so pass them through and spare
                    # the cost model a recomputation per measurement.
                    groups = [names_of(mask) for mask in group_masks]
                    stage_choice = generate_stage(graph, op_subset, strategies, groups)
                    ending_choice[ending] = stage_choice
                elif stage_choice is None:
                    continue
                transitions += 1
                total = scheduler(state & ~ending) + stage_choice.latency_ms
                if total < best:
                    best = total
                    best_choice = (ending, stage_choice.strategy)
            if best_choice is None:
                raise RuntimeError(
                    f"no admissible ending found for a state of block {block_name!r}; "
                    "the pruning strategy is too restrictive"
                )
            cost[state] = best
            choice[state] = best_choice
            return best

        optimal_latency = scheduler(index.full_mask)

        # Schedule construction (INTER OPERATOR SCHEDULER, L6-11): walk the
        # recorded choices from the full set back to the empty set.
        reversed_stages: list[tuple[int, ParallelizationStrategy]] = []
        state = index.full_mask
        while state:
            ending, strategy = choice[state]
            reversed_stages.append((ending, strategy))
            state &= ~ending
        stage_masks = list(reversed(reversed_stages))
        return stage_masks, optimal_latency, len(cost) - 1, transitions

    # ------------------------------------------------------- parallel fan-out
    def _parallel_warm_cache(
        self, graph: Graph, blocks: Sequence[Block], jobs: int, use_memo: bool
    ) -> None:
        """Search independent uncached blocks in worker processes.

        Results seed the block cache (and memo) in deterministic block order,
        so the subsequent serial pass replays them exactly as an inline search
        would have produced them.  Falls back to the serial path silently when
        the cost model cannot be cloned (``spawn() is None``) and with a
        warning when the pool itself fails.
        """
        if jobs <= 1 or not self.config.reuse_identical_blocks:
            return
        spawned = self.cost_model.spawn()
        if spawned is None:
            return
        memo = schedule_memo() if use_memo and memo_enabled() else None
        signature = self._memo_signature() if memo is not None else None

        tasks: list[tuple[str, tuple]] = []
        seen: set[tuple] = set()
        for block in blocks:
            op_names = graph.schedulable_names(block)
            if not op_names:
                continue
            fingerprint = self._block_fingerprint(graph, op_names)
            if fingerprint in seen or fingerprint in self._block_cache:
                continue
            if memo is not None and signature is not None and memo.contains(signature, fingerprint):
                continue
            seen.add(fingerprint)
            tasks.append((block.name, fingerprint))
        if len(tasks) < 2:
            return

        try:
            pool = _get_search_pool(jobs)
            futures = [
                pool.submit(_search_block_worker, (graph, name, self.config, spawned))
                for name, _ in tasks
            ]
            for (name, fingerprint), future in zip(tasks, futures):
                cached_stages, stats = future.result()
                self._block_cache[fingerprint] = (cached_stages, stats)
                self._fresh_results.add(fingerprint)
                if memo is not None and signature is not None:
                    memo.put(signature, fingerprint, cached_stages, stats)
        except Exception as error:  # pragma: no cover - environment dependent
            warnings.warn(
                f"parallel block search failed ({error!r}); continuing serially",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------- whole graph
    def optimize_graph(
        self,
        graph: Graph,
        passes=None,
        *,
        jobs: int = 1,
        precomputed: dict[str, tuple[list[Stage], BlockStats]] | None = None,
        use_memo: bool = True,
    ) -> ScheduleResult:
        """Optimise every block of ``graph`` and concatenate the block schedules.

        .. deprecated:: 1.3
            The ``passes`` parameter is deprecated.  Rewriting-then-scheduling
            is the engine's job: use ``repro.engine.Engine(device,
            passes=...)`` and call ``engine.compile(graph)`` — its ``.search``
            attribute is this method's :class:`ScheduleResult`.  Calling
            ``optimize_graph(graph)`` with no ``passes`` stays supported; it
            is the search primitive the engine itself builds on.

        When the deprecated ``passes`` is given, a graph-rewriting pipeline
        runs *before* the DP search (``True`` selects
        :func:`repro.passes.default_pipeline`; a
        :class:`repro.passes.PassManager` / list of pass names runs that one)
        and the result carries the rewritten graph plus per-pass stats.
        """
        start = time.perf_counter()
        pass_stats = None
        if passes is not None and passes is not False:
            warnings.warn(
                "IOSScheduler.optimize_graph(passes=...) is deprecated; use "
                "repro.engine.Engine(device, passes=...) and engine.compile(graph) "
                "(compiled.search is this ScheduleResult)",
                DeprecationWarning,
                stacklevel=2,
            )
            # Imported lazily: repro.passes depends only on repro.ir, but the
            # scheduler must stay importable without the passes package loaded.
            from ..passes import optimize_graph as run_passes

            pass_result = run_passes(graph, None if passes is True else passes)
            graph = pass_result.graph
            pass_stats = pass_result.stats
        schedule = Schedule(graph_name=graph.name, origin=self._origin_label())
        all_stats: list[BlockStats] = []
        precomputed = precomputed or {}
        if jobs > 1:
            pending = [b for b in graph.blocks if b.name not in precomputed]
            self._parallel_warm_cache(graph, pending, jobs, use_memo)
        for block in graph.blocks:
            entry = precomputed.get(block.name)
            if entry is not None:
                stages, stats = entry
            else:
                stages, stats = self.optimize_block(graph, block, use_memo=use_memo)
            if stats.num_stages == 0 and stages:
                stats.num_stages = len(stages)
            schedule.extend(stages)
            all_stats.append(stats)
        schedule.validate(graph)
        return ScheduleResult(
            schedule=schedule,
            block_stats=all_stats,
            elapsed_s=time.perf_counter() - start,
            graph=graph,
            pass_stats=pass_stats,
        )

    # ----------------------------------------------------------------- helpers
    def _origin_label(self) -> str:
        label = variant_label(self.config)
        if label == "custom":
            label = "ios-merge" if ParallelizationStrategy.MERGE in self.config.strategies else "ios-parallel"
        return f"{label} ({self.config.pruning.describe()})"

    def _block_fingerprint(self, graph: Graph, op_names: Sequence[str]) -> tuple:
        """Structural fingerprint of a block: operator configs + local wiring.

        Two blocks with identical fingerprints have isomorphic internal
        structure, identical operator attributes and identical input shapes,
        so their optimal schedules are identical up to operator renaming.
        """
        order = graph.topological_order(list(op_names))
        position = {name: i for i, name in enumerate(order)}
        entries = []
        for name in order:
            op = graph.nodes[name]
            local_inputs = tuple(
                position[p] if p in position else f"ext:{graph.nodes[p].output_shape}"
                for p in op.inputs
            )
            attrs = tuple(sorted((k, str(v)) for k, v in op.attrs().items()))
            entries.append((op.kind, attrs, local_inputs, str(op.output_shape)))
        return (
            tuple(entries),
            self.config.pruning,
            tuple(self.config.strategies),
        )


# --------------------------------------------------------------------------- #
# Parallel search workers                                                      #
# --------------------------------------------------------------------------- #
def _search_block_worker(payload: tuple) -> tuple[list, BlockStats]:
    """Search one block in a worker process.

    ``payload`` is ``(graph, block_name, config, cost_model)`` where the cost
    model is a fresh clone from :meth:`CostModel.spawn`.  Returns the
    position-based cached stages (rename-invariant, the block-cache encoding)
    and the search stats, which the parent seeds into its caches.
    """
    graph, block_name, config, cost_model = payload
    scheduler = IOSScheduler(cost_model, config)
    block = next(b for b in graph.blocks if b.name == block_name)
    _stages, stats = scheduler.optimize_block(graph, block, use_memo=False)
    op_names = graph.schedulable_names(block)
    fingerprint = scheduler._block_fingerprint(graph, op_names)
    cached_stages, _ = scheduler._block_cache[fingerprint]
    stats.source = "parallel"
    return cached_stages, stats


_POOLS: dict[int, ProcessPoolExecutor] = {}


def _get_search_pool(jobs: int) -> ProcessPoolExecutor:
    """A cached process pool with ``jobs`` workers (fork context on POSIX)."""
    pool = _POOLS.get(jobs)
    if pool is None:
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
        _POOLS[jobs] = pool
    return pool


def shutdown_search_pools() -> None:
    """Shut down every cached search pool (registered at interpreter exit)."""
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


atexit.register(shutdown_search_pools)


def resolve_compile_jobs(jobs: int | str | None = None) -> int:
    """Resolve a compile-parallelism setting to a concrete worker count.

    ``None`` reads the ``REPRO_COMPILE_JOBS`` environment variable (default
    ``1`` — serial).  ``"auto"``, ``"0"`` or any non-positive number mean
    "one worker per CPU".  Anything else must be a positive integer.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_COMPILE_JOBS", "1")
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text in ("auto", "0"):
            return max(1, os.cpu_count() or 1)
        try:
            jobs = int(text or "1")
        except ValueError:
            raise ValueError(
                f"invalid compile jobs value {jobs!r}; expected a positive "
                "integer, '0' or 'auto'"
            ) from None
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return int(jobs)
