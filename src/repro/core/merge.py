"""Operator merge: the second parallelisation strategy of IOS.

Two or more operators can be merged into one larger operator when (Section 3):

* they are of the same type (only convolutions and fully-connected layers are
  supported, matching the paper's examples),
* they consume exactly the same input tensor(s),
* they agree on every hyper-parameter that affects the output grid — stride,
  groups and fused activation — while kernel sizes may differ: the smaller
  kernel is zero-padded to the larger one so the stacked weight tensor is
  rectangular.

Merging increases the work per kernel (better device utilisation), launches one
kernel instead of several and reads the shared input once instead of once per
operator; the price is the extra FLOPs introduced by kernel padding and a
`Split` to recover the original outputs (a free view operation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..ir.graph import Graph
from ..ir.ops import Conv2d, Linear, Operator, Split

__all__ = ["MergeError", "MergedStage", "can_merge", "why_not_mergeable", "build_merged_operator"]


class MergeError(ValueError):
    """Raised when operators that cannot be merged are asked to merge."""


@dataclass(frozen=True)
class MergedStage:
    """The result of merging a set of operators.

    ``merged`` is the fused operator; ``splits`` are the view operators that
    recover each original output (they launch no kernel); ``sections`` records
    the output-channel count contributed by each original operator, in order.
    """

    merged: Operator
    splits: tuple[Split, ...]
    sections: tuple[int, ...]
    source_names: tuple[str, ...]

    @property
    def padding_overhead_flops(self) -> float:
        """Extra FLOPs introduced by padding kernels up to the largest one."""
        return self._padding_overhead

    _padding_overhead: float = 0.0


def why_not_mergeable(graph: Graph, op_names: Sequence[str]) -> str | None:
    """Return ``None`` if the operators can be merged, else a human-readable reason."""
    if len(op_names) < 2:
        return "merging needs at least two operators"
    ops = [graph.nodes[name] for name in op_names]
    first = ops[0]
    if not isinstance(first, (Conv2d, Linear)):
        return f"operator type {first.kind!r} does not support merging"
    key = first.merge_key()
    if key is None:
        return f"operator {first.name!r} cannot participate in a merge"
    for op in ops[1:]:
        if op.kind != first.kind:
            return f"mixed operator types {first.kind!r} and {op.kind!r}"
        if op.merge_key() != key:
            return f"{op.name!r} differs from {first.name!r} in stride/groups/activation"
        if tuple(op.inputs) != tuple(first.inputs):
            return f"{op.name!r} and {first.name!r} consume different inputs"
    if isinstance(first, Conv2d):
        out_spatial = {(op.output_shape.height, op.output_shape.width) for op in ops}
        if len(out_spatial) != 1:
            return "merged convolutions must produce identical spatial dimensions"
        # The merged kernel uses the maximum size along each dimension; check
        # that a symmetric zero padding exists that reproduces the shared
        # output grid (always true for odd kernels with 'same'-style padding).
        in_shape = graph.nodes[first.inputs[0]].output_shape
        out_shape = first.output_shape
        max_kh = max(op.kernel[0] for op in ops)
        max_kw = max(op.kernel[1] for op in ops)
        stride_h, stride_w = first.stride
        for in_dim, out_dim, kernel, stride in (
            (in_shape.height, out_shape.height, max_kh, stride_h),
            (in_shape.width, out_shape.width, max_kw, stride_w),
        ):
            pad = -(-((out_dim - 1) * stride + kernel - in_dim) // 2)
            pad = max(0, pad)
            if (in_dim + 2 * pad - kernel) // stride + 1 != out_dim:
                return "no symmetric padding reproduces the shared output grid"
    return None


def can_merge(graph: Graph, op_names: Sequence[str]) -> bool:
    """Whether the named operators are eligible for the operator-merge strategy."""
    return why_not_mergeable(graph, op_names) is None


def build_merged_operator(graph: Graph, op_names: Sequence[str]) -> MergedStage:
    """Construct the fused operator (and recovery splits) for a merge stage.

    The returned operators are *ephemeral*: they are not inserted into the
    graph — the execution engine and cost model only need them to price and
    simulate the merged kernel.
    """
    reason = why_not_mergeable(graph, op_names)
    if reason is not None:
        raise MergeError(f"cannot merge {list(op_names)}: {reason}")

    ops = [graph.nodes[name] for name in op_names]
    input_shapes = [graph.nodes[p].output_shape for p in ops[0].inputs]
    merged_name = "merge(" + "+".join(op.name for op in ops) + ")"

    if isinstance(ops[0], Conv2d):
        conv_ops: list[Conv2d] = ops  # type: ignore[assignment]
        sections = tuple(op.out_channels for op in conv_ops)
        max_kh = max(op.kernel[0] for op in conv_ops)
        max_kw = max(op.kernel[1] for op in conv_ops)
        # Choose the padding of the merged (max-sized) kernel so that the
        # merged output grid matches the originals' shared output grid.
        out_shape = conv_ops[0].output_shape
        in_shape = input_shapes[0]
        stride_h, stride_w = conv_ops[0].stride
        pad_h = -(-((out_shape.height - 1) * stride_h + max_kh - in_shape.height) // 2)
        pad_w = -(-((out_shape.width - 1) * stride_w + max_kw - in_shape.width) // 2)
        merged = Conv2d(
            merged_name,
            ops[0].inputs,
            out_channels=sum(sections),
            kernel=(max_kh, max_kw),
            stride=conv_ops[0].stride,
            padding=(max(0, pad_h), max(0, pad_w)),
            groups=conv_ops[0].groups,
            activation=conv_ops[0].activation,
        )
        merged.bind(input_shapes)
        original_flops = sum(op.flops() for op in conv_ops)
    else:
        linear_ops: list[Linear] = ops  # type: ignore[assignment]
        sections = tuple(op.out_features for op in linear_ops)
        merged = Linear(
            merged_name,
            ops[0].inputs,
            out_features=sum(sections),
            activation=linear_ops[0].activation,
        )
        merged.bind(input_shapes)
        original_flops = sum(op.flops() for op in linear_ops)

    splits = []
    for index, op in enumerate(ops):
        split = Split(f"split({op.name})", [merged.name], sections=sections, index=index)
        split.bind([merged.output_shape])
        splits.append(split)

    stage = MergedStage(
        merged=merged,
        splits=tuple(splits),
        sections=sections,
        source_names=tuple(op.name for op in ops),
        _padding_overhead=float(merged.flops() - original_flops),
    )
    return stage
