"""Stage-latency cost models.

IOS is *profile based*: ``GENERATE STAGE`` measures the latency of a candidate
stage under both parallelisation strategies directly on the hardware and keeps
the better one (Algorithm 1, L23-33).  The :class:`CostModel` interface below
is that latency oracle; :class:`SimulatedCostModel` backs it with the
simulated device and :class:`~repro.runtime.profiler.Profiler`, and
:class:`FlopsCostModel` is a cheap analytical stand-in used by tests and by
the contention-model ablation.

Stage measurements are memoised: different schedules share sub-schedules (the
very observation that motivates the dynamic program), so the same candidate
stage is priced many times during a search.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from ..runtime.executor import ExecutionStage
from ..runtime.profiler import Profiler
from .merge import build_merged_operator, can_merge
from .schedule import ParallelizationStrategy, connected_groups

__all__ = ["StageChoice", "CostModel", "SimulatedCostModel", "FlopsCostModel"]


@dataclass(frozen=True)
class StageChoice:
    """Outcome of GENERATE STAGE for one candidate stage."""

    latency_ms: float
    strategy: ParallelizationStrategy


class CostModel(ABC):
    """Latency oracle used by the dynamic-programming scheduler."""

    def __init__(self) -> None:
        #: Number of distinct stage latencies actually measured (cache misses).
        self.num_measurements = 0
        self._cache: dict[tuple, float] = {}

    # --------------------------------------------------------------- interface
    @abstractmethod
    def _measure_stage(
        self,
        graph: Graph,
        op_names: tuple[str, ...],
        strategy: ParallelizationStrategy,
        groups: Sequence[Sequence[str]] | None = None,
    ) -> float:
        """Measure (simulate) the latency of one stage; no caching.

        ``groups`` optionally carries the stage's connected-group
        decomposition when the caller already knows it (the DP enumerates
        endings *by* their groups); it must equal
        :func:`~repro.core.schedule.connected_groups` output exactly.
        """

    def signature(self) -> tuple | None:
        """Hashable identity of this model's latency function, or ``None``.

        Two cost models with equal signatures return identical latencies for
        every stage, so their block searches are interchangeable — this is the
        key the process-wide :class:`~repro.core.memo.ScheduleMemo` shares
        results under.  ``None`` (the default) means "not shareable": unknown
        subclasses and noisy profilers must keep their searches private.
        """
        return None

    def spawn(self) -> "CostModel | None":
        """A fresh, state-free clone for a worker process, or ``None``.

        Used by the multiprocessing search fan-out: each worker prices stages
        on its own clone (empty measurement cache, zero counters).  ``None``
        (the default) means this model cannot be cloned deterministically and
        parallel search must fall back to serial.
        """
        return None

    # ----------------------------------------------------------------- public
    def stage_latency(
        self,
        graph: Graph,
        op_names: Sequence[str],
        strategy: ParallelizationStrategy,
        groups: Sequence[Sequence[str]] | None = None,
    ) -> float:
        """Memoised latency of executing ``op_names`` as one stage."""
        # The structural fingerprint keeps the cache honest across graph
        # *versions*: an incremental recompile mutates a block while keeping
        # the graph name and operator names, and must not see stale prices.
        key = (graph.name, graph.batch_size, graph.fingerprint(), frozenset(op_names), strategy)
        if key in self._cache:
            return self._cache[key]
        latency = self._measure_stage(graph, tuple(op_names), strategy, groups)
        self._cache[key] = latency
        self.num_measurements += 1
        return latency

    def generate_stage(self, graph: Graph, op_names: Sequence[str],
                       strategies: Sequence[ParallelizationStrategy] | None = None,
                       groups: Sequence[Sequence[str]] | None = None) -> StageChoice:
        """GENERATE STAGE: pick the better parallelisation strategy for a stage.

        ``strategies`` restricts the candidates (IOS-Parallel considers only
        concurrent execution, IOS-Merge only operator merge, IOS-Both both).
        If operator merge is requested but the operators cannot be merged its
        latency is infinite, forcing concurrent execution — and if *only*
        merge was requested, concurrent execution of a single sequential group
        is used as the fallback, mirroring how IOS-Merge degenerates to the
        sequential schedule on RandWire/NasNet (Section 6.1).
        """
        candidates = list(strategies) if strategies is not None else [
            ParallelizationStrategy.CONCURRENT,
            ParallelizationStrategy.MERGE,
        ]
        best: StageChoice | None = None
        for strategy in candidates:
            if strategy is ParallelizationStrategy.MERGE:
                if len(op_names) >= 2 and can_merge(graph, op_names):
                    latency = self.stage_latency(graph, op_names, strategy, groups)
                else:
                    continue
            else:
                latency = self.stage_latency(graph, op_names, strategy, groups)
            if best is None or latency < best.latency_ms:
                best = StageChoice(latency_ms=latency, strategy=strategy)
        if best is None:
            # Only MERGE was requested and the stage is not mergeable: fall
            # back to executing the operators sequentially in one group.
            latency = self.stage_latency(
                graph, op_names, ParallelizationStrategy.CONCURRENT, groups
            )
            best = StageChoice(latency_ms=latency, strategy=ParallelizationStrategy.CONCURRENT)
        return best

    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()


def stage_to_execution(graph: Graph, op_names: Sequence[str],
                       strategy: ParallelizationStrategy, label: str = "",
                       groups: Sequence[Sequence[str]] | None = None) -> ExecutionStage:
    """Lower one (operators, strategy) stage into an executable stage.

    Shared by the cost models and by :mod:`repro.core.lowering` so that the
    latency used during the search is exactly the latency of the executed
    schedule.  ``groups``, when given, must equal
    :func:`~repro.core.schedule.connected_groups` for ``op_names`` and lets
    callers that already know the decomposition skip recomputing it.
    """
    if strategy is ParallelizationStrategy.MERGE and len(op_names) >= 2:
        merged = build_merged_operator(graph, op_names)
        operators = [[merged.merged]]
        return ExecutionStage(groups=operators, strategy=strategy.value, label=label)
    if groups is None:
        groups = connected_groups(graph, op_names)
    operator_groups = [[graph.nodes[name] for name in group] for group in groups]
    return ExecutionStage(groups=operator_groups, strategy=strategy.value, label=label)


class SimulatedCostModel(CostModel):
    """Cost model that measures stages on the simulated GPU.

    This is the configuration used by every experiment: it mirrors the paper's
    methodology of profiling each candidate stage on the target device with the
    target batch size.
    """

    def __init__(
        self,
        device: DeviceSpec,
        profile: KernelProfile = CUDNN_PROFILE,
        warmup: int = 1,
        repeats: int = 3,
        noise_std: float = 0.0,
        seed: int = 0,
    ):
        super().__init__()
        self.device = device
        self.profile = profile
        self.profiler = Profiler(
            device, profile, warmup=warmup, repeats=repeats, noise_std=noise_std, seed=seed
        )

    def _measure_stage(
        self,
        graph: Graph,
        op_names: tuple[str, ...],
        strategy: ParallelizationStrategy,
        groups: Sequence[Sequence[str]] | None = None,
    ) -> float:
        stage = stage_to_execution(graph, op_names, strategy, groups=groups)
        return self.profiler.stage_latency_ms(stage)

    def signature(self) -> tuple | None:
        """Shareable identity: device, profile, and measurement protocol.

        Noisy profilers return ``None`` — their measurements depend on RNG
        state, so two searches of the same block can legitimately disagree.
        The kernel profile is keyed structurally (name, efficiency table,
        launch-overhead scale), so two equal profiles share even when they are
        distinct objects.
        """
        profiler = self.profiler
        if profiler.noise_std != 0.0:
            return None
        profile = self.profile
        return (
            "simulated",
            self.device,
            (
                profile.name,
                tuple(sorted(profile.efficiency.items())),
                profile.default_efficiency,
                profile.launch_overhead_scale,
            ),
            profiler.warmup,
            profiler.repeats,
        )

    def spawn(self) -> "SimulatedCostModel | None":
        if self.profiler.noise_std != 0.0:
            return None
        return SimulatedCostModel(
            self.device,
            self.profile,
            warmup=self.profiler.warmup,
            repeats=self.profiler.repeats,
        )


class FlopsCostModel(CostModel):
    """Analytical cost model: latency proportional to FLOPs, with a fixed
    per-operator overhead and an idealised speed-up for concurrent groups.

    Useful for fast unit tests of the dynamic program (its optima are easy to
    compute by hand) and as the baseline of the contention-model ablation
    benchmark; not used for the paper-reproduction figures.
    """

    def __init__(self, flops_per_ms: float = 1e9, overhead_ms: float = 0.01):
        super().__init__()
        if flops_per_ms <= 0:
            raise ValueError("flops_per_ms must be positive")
        self.flops_per_ms = flops_per_ms
        self.overhead_ms = overhead_ms

    def signature(self) -> tuple | None:
        return ("flops", self.flops_per_ms, self.overhead_ms)

    def spawn(self) -> "FlopsCostModel":
        return FlopsCostModel(flops_per_ms=self.flops_per_ms, overhead_ms=self.overhead_ms)

    def _measure_stage(
        self,
        graph: Graph,
        op_names: tuple[str, ...],
        strategy: ParallelizationStrategy,
        groups: Sequence[Sequence[str]] | None = None,
    ) -> float:
        if strategy is ParallelizationStrategy.MERGE and len(op_names) >= 2:
            merged = build_merged_operator(graph, op_names)
            return self.overhead_ms + merged.merged.flops() / self.flops_per_ms
        if groups is None:
            groups = connected_groups(graph, op_names)
        group_latencies = []
        for group in groups:
            flops = sum(graph.nodes[name].flops() for name in group)
            group_latencies.append(len(group) * self.overhead_ms + flops / self.flops_per_ms)
        return max(group_latencies) if group_latencies else 0.0
