"""Stage-latency cost models.

IOS is *profile based*: ``GENERATE STAGE`` measures the latency of a candidate
stage under both parallelisation strategies directly on the hardware and keeps
the better one (Algorithm 1, L23-33).  The :class:`CostModel` interface below
is that latency oracle; :class:`SimulatedCostModel` backs it with the
simulated device and :class:`~repro.runtime.profiler.Profiler`, and
:class:`FlopsCostModel` is a cheap analytical stand-in used by tests and by
the contention-model ablation.

Stage measurements are memoised: different schedules share sub-schedules (the
very observation that motivates the dynamic program), so the same candidate
stage is priced many times during a search.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..hardware.device import DeviceSpec
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from ..runtime.executor import ExecutionStage
from ..runtime.profiler import Profiler
from .merge import build_merged_operator, can_merge
from .schedule import ParallelizationStrategy, connected_groups

__all__ = ["StageChoice", "CostModel", "SimulatedCostModel", "FlopsCostModel"]


@dataclass(frozen=True)
class StageChoice:
    """Outcome of GENERATE STAGE for one candidate stage."""

    latency_ms: float
    strategy: ParallelizationStrategy


class CostModel(ABC):
    """Latency oracle used by the dynamic-programming scheduler."""

    def __init__(self) -> None:
        #: Number of distinct stage latencies actually measured (cache misses).
        self.num_measurements = 0
        self._cache: dict[tuple, float] = {}

    # --------------------------------------------------------------- interface
    @abstractmethod
    def _measure_stage(
        self, graph: Graph, op_names: tuple[str, ...], strategy: ParallelizationStrategy
    ) -> float:
        """Measure (simulate) the latency of one stage; no caching."""

    # ----------------------------------------------------------------- public
    def stage_latency(
        self,
        graph: Graph,
        op_names: Sequence[str],
        strategy: ParallelizationStrategy,
    ) -> float:
        """Memoised latency of executing ``op_names`` as one stage."""
        key = (graph.name, graph.batch_size, frozenset(op_names), strategy)
        if key in self._cache:
            return self._cache[key]
        latency = self._measure_stage(graph, tuple(op_names), strategy)
        self._cache[key] = latency
        self.num_measurements += 1
        return latency

    def generate_stage(self, graph: Graph, op_names: Sequence[str],
                       strategies: Sequence[ParallelizationStrategy] | None = None) -> StageChoice:
        """GENERATE STAGE: pick the better parallelisation strategy for a stage.

        ``strategies`` restricts the candidates (IOS-Parallel considers only
        concurrent execution, IOS-Merge only operator merge, IOS-Both both).
        If operator merge is requested but the operators cannot be merged its
        latency is infinite, forcing concurrent execution — and if *only*
        merge was requested, concurrent execution of a single sequential group
        is used as the fallback, mirroring how IOS-Merge degenerates to the
        sequential schedule on RandWire/NasNet (Section 6.1).
        """
        candidates = list(strategies) if strategies is not None else [
            ParallelizationStrategy.CONCURRENT,
            ParallelizationStrategy.MERGE,
        ]
        best: StageChoice | None = None
        for strategy in candidates:
            if strategy is ParallelizationStrategy.MERGE:
                if len(op_names) >= 2 and can_merge(graph, op_names):
                    latency = self.stage_latency(graph, op_names, strategy)
                else:
                    continue
            else:
                latency = self.stage_latency(graph, op_names, strategy)
            if best is None or latency < best.latency_ms:
                best = StageChoice(latency_ms=latency, strategy=strategy)
        if best is None:
            # Only MERGE was requested and the stage is not mergeable: fall
            # back to executing the operators sequentially in one group.
            latency = self.stage_latency(graph, op_names, ParallelizationStrategy.CONCURRENT)
            best = StageChoice(latency_ms=latency, strategy=ParallelizationStrategy.CONCURRENT)
        return best

    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()


def stage_to_execution(graph: Graph, op_names: Sequence[str],
                       strategy: ParallelizationStrategy, label: str = "") -> ExecutionStage:
    """Lower one (operators, strategy) stage into an executable stage.

    Shared by the cost models and by :mod:`repro.core.lowering` so that the
    latency used during the search is exactly the latency of the executed
    schedule.
    """
    if strategy is ParallelizationStrategy.MERGE and len(op_names) >= 2:
        merged = build_merged_operator(graph, op_names)
        operators = [[merged.merged]]
        return ExecutionStage(groups=operators, strategy=strategy.value, label=label)
    groups = connected_groups(graph, op_names)
    operator_groups = [[graph.nodes[name] for name in group] for group in groups]
    return ExecutionStage(groups=operator_groups, strategy=strategy.value, label=label)


class SimulatedCostModel(CostModel):
    """Cost model that measures stages on the simulated GPU.

    This is the configuration used by every experiment: it mirrors the paper's
    methodology of profiling each candidate stage on the target device with the
    target batch size.
    """

    def __init__(
        self,
        device: DeviceSpec,
        profile: KernelProfile = CUDNN_PROFILE,
        warmup: int = 1,
        repeats: int = 3,
        noise_std: float = 0.0,
        seed: int = 0,
    ):
        super().__init__()
        self.device = device
        self.profile = profile
        self.profiler = Profiler(
            device, profile, warmup=warmup, repeats=repeats, noise_std=noise_std, seed=seed
        )

    def _measure_stage(
        self, graph: Graph, op_names: tuple[str, ...], strategy: ParallelizationStrategy
    ) -> float:
        stage = stage_to_execution(graph, op_names, strategy)
        return self.profiler.stage_latency_ms(stage)


class FlopsCostModel(CostModel):
    """Analytical cost model: latency proportional to FLOPs, with a fixed
    per-operator overhead and an idealised speed-up for concurrent groups.

    Useful for fast unit tests of the dynamic program (its optima are easy to
    compute by hand) and as the baseline of the contention-model ablation
    benchmark; not used for the paper-reproduction figures.
    """

    def __init__(self, flops_per_ms: float = 1e9, overhead_ms: float = 0.01):
        super().__init__()
        if flops_per_ms <= 0:
            raise ValueError("flops_per_ms must be positive")
        self.flops_per_ms = flops_per_ms
        self.overhead_ms = overhead_ms

    def _measure_stage(
        self, graph: Graph, op_names: tuple[str, ...], strategy: ParallelizationStrategy
    ) -> float:
        if strategy is ParallelizationStrategy.MERGE and len(op_names) >= 2:
            merged = build_merged_operator(graph, op_names)
            return self.overhead_ms + merged.merged.flops() / self.flops_per_ms
        groups = connected_groups(graph, op_names)
        group_latencies = []
        for group in groups:
            flops = sum(graph.nodes[name].flops() for name in group)
            group_latencies.append(len(group) * self.overhead_ms + flops / self.flops_per_ms)
        return max(group_latencies) if group_latencies else 0.0
