"""Kernel model: how an IR operator maps onto GPU execution resources.

A GPU kernel is modelled by

* the total work it performs (FLOPs and DRAM bytes),
* its launch geometry — how many thread blocks it spawns and how many warps
  each block contains — which bounds how much of the device the kernel can
  occupy on its own, and
* a *kernel-library efficiency*: the fraction of a thread-block slot's peak
  throughput that the library's implementation of this operator achieves
  (cuDNN's dense convolutions are close to peak, its depthwise/separable
  convolutions are notoriously far from it, which is exactly why TVM-AutoTune
  beats cuDNN-based execution on RandWire/NasNet in Figure 12).

The thread-block geometry follows a simple tiling rule calibrated against the
per-stage utilisation numbers the paper reports in Figure 2: a convolution
thread block computes a tile of 32 output channels x 64 output pixels for one
sample.  With the V100 preset this reproduces the paper's 33 % / 59 %
utilisation for the 384- and 768-channel 3x3 convolutions of that figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from ..ir.ops import (
    Add,
    Concat,
    Conv2d,
    Gelu,
    GlobalAvgPool,
    LayerNorm,
    Linear,
    Matmul,
    Operator,
    Pool2d,
    Relu,
    SeparableConv2d,
    Softmax,
    Transpose,
)
from .device import DeviceSpec

__all__ = [
    "KernelProfile",
    "KernelSpec",
    "build_kernel",
    "CUDNN_PROFILE",
    "TVM_AUTOTUNE_PROFILE",
    "TENSORRT_PROFILE",
    "KERNEL_PROFILES",
]

#: Output-channel tile of a convolution thread block.
CONV_TILE_CHANNELS = 32
#: Output-pixel tile of a convolution thread block.
CONV_TILE_PIXELS = 64
#: Elements processed by one thread block of a memory-bound (elementwise,
#: pooling, concat) kernel.
ELEMENTWISE_TILE = 4096
#: Output-feature tile of a matrix-multiplication thread block.
MATMUL_TILE_FEATURES = 64
#: Batch-rows tile of a matrix-multiplication thread block.
MATMUL_TILE_ROWS = 16


@dataclass(frozen=True)
class KernelProfile:
    """Efficiency profile of a kernel library (cuDNN, TVM, TensorRT...).

    ``efficiency`` maps an operator ``kind`` to the fraction of per-slot peak
    FP32 throughput that library achieves for that operator.  Memory-bound
    operators are limited by bandwidth regardless, so their entries matter
    little.
    """

    name: str
    efficiency: Mapping[str, float] = field(default_factory=dict)
    default_efficiency: float = 0.60
    #: Multiplier on the device kernel-launch overhead (frameworks with heavy
    #: runtimes launch kernels more slowly).
    launch_overhead_scale: float = 1.0

    def efficiency_for(self, kind: str) -> float:
        eff = float(self.efficiency.get(kind, self.default_efficiency))
        if not 0.0 < eff <= 1.0:
            raise ValueError(f"efficiency for {kind!r} must be in (0, 1], got {eff}")
        return eff

    def launch_overhead_ms(self, device: DeviceSpec) -> float:
        return device.kernel_launch_overhead_ms * self.launch_overhead_scale


#: cuDNN-like profile: excellent dense convolutions, poor depthwise/separable
#: convolutions, decent GEMM.
CUDNN_PROFILE = KernelProfile(
    name="cudnn",
    efficiency={
        "conv2d": 0.92,
        "sep_conv2d": 0.30,
        "linear": 0.70,
        "matmul": 0.70,
        "pool2d": 0.80,
        "global_avg_pool": 0.80,
        "relu": 0.90,
        "add": 0.90,
        "concat": 0.90,
        "softmax": 0.60,
        "layer_norm": 0.70,
        "gelu": 0.85,
        "transpose": 0.80,
    },
    default_efficiency=0.60,
)

#: TVM auto-tuned kernels: slightly below cuDNN on dense convolutions but much
#: better on separable convolutions (the paper's Figure 12 observation).
TVM_AUTOTUNE_PROFILE = KernelProfile(
    name="tvm-autotune",
    efficiency={
        "conv2d": 0.85,
        "sep_conv2d": 0.62,
        "linear": 0.65,
        "matmul": 0.65,
        "pool2d": 0.80,
        "global_avg_pool": 0.80,
        "relu": 0.90,
        "add": 0.90,
        "concat": 0.90,
        "softmax": 0.60,
        "layer_norm": 0.75,
        "gelu": 0.85,
        "transpose": 0.80,
    },
    default_efficiency=0.60,
)

#: TensorRT: best-in-class dense convolutions and fused pointwise kernels.
TENSORRT_PROFILE = KernelProfile(
    name="tensorrt",
    efficiency={
        "conv2d": 0.95,
        "sep_conv2d": 0.34,
        "linear": 0.75,
        "matmul": 0.75,
        "pool2d": 0.85,
        "global_avg_pool": 0.85,
        "relu": 0.92,
        "add": 0.92,
        "concat": 0.92,
        "softmax": 0.65,
        "layer_norm": 0.80,
        "gelu": 0.90,
        "transpose": 0.85,
    },
    default_efficiency=0.65,
    launch_overhead_scale=0.8,
)

KERNEL_PROFILES: dict[str, KernelProfile] = {
    p.name: p for p in (CUDNN_PROFILE, TVM_AUTOTUNE_PROFILE, TENSORRT_PROFILE)
}


@dataclass(frozen=True)
class KernelSpec:
    """A single GPU kernel ready to be simulated.

    The simulator treats a kernel as a malleable job: it can occupy up to
    ``num_blocks`` thread-block slots simultaneously, performs ``flops`` of
    compute and ``memory_bytes`` of DRAM traffic in total, and achieves
    ``efficiency`` of per-slot peak throughput.
    """

    name: str
    op_kind: str
    flops: float
    memory_bytes: float
    num_blocks: int
    warps_per_block: int
    efficiency: float
    launch_overhead_ms: float

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError(f"kernel {self.name!r} must launch at least one block")
        if self.flops < 0 or self.memory_bytes < 0:
            raise ValueError(f"kernel {self.name!r} has negative work")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"kernel {self.name!r} efficiency must be in (0, 1]")

    # ------------------------------------------------------------------ helpers
    def max_parallelism(self, device: DeviceSpec) -> int:
        """Maximum thread-block slots this kernel can use on ``device``."""
        return min(self.num_blocks, device.total_block_slots)

    def occupancy(self, device: DeviceSpec) -> float:
        """Fraction of the device's block slots the kernel can fill alone."""
        return self.max_parallelism(device) / device.total_block_slots

    def compute_time_ms(self, device: DeviceSpec, slots: int | None = None) -> float:
        """Pure compute time when running on ``slots`` block slots.

        Wave quantisation (the tail effect) is modelled: a kernel with 1.5
        waves of blocks takes as long as one with 2 full waves.
        """
        if self.flops == 0:
            return 0.0
        if slots is None:
            slots = self.max_parallelism(device)
        slots = max(1, min(slots, self.num_blocks, device.total_block_slots))
        waves = math.ceil(self.num_blocks / slots)
        flops_per_block = self.flops / self.num_blocks
        per_block_time = flops_per_block / (device.flops_per_slot_ms * self.efficiency)
        return waves * per_block_time

    def memory_time_ms(self, device: DeviceSpec, bandwidth_fraction: float = 1.0) -> float:
        """Pure DRAM-transfer time given a fraction of device bandwidth."""
        if self.memory_bytes == 0:
            return 0.0
        bandwidth_fraction = min(max(bandwidth_fraction, 1e-9), 1.0)
        return self.memory_bytes / (device.bandwidth_bytes_per_ms * bandwidth_fraction)

    def duration_alone_ms(self, device: DeviceSpec, include_launch: bool = True) -> float:
        """Roofline latency of this kernel running alone on the device."""
        busy = max(self.compute_time_ms(device), self.memory_time_ms(device))
        return busy + (self.launch_overhead_ms if include_launch else 0.0)

    def achieved_tflops(self, device: DeviceSpec) -> float:
        """TFLOPs/s achieved when running alone (excludes launch overhead)."""
        busy = max(self.compute_time_ms(device), self.memory_time_ms(device))
        if busy == 0:
            return 0.0
        return (self.flops / (busy / 1e3)) / 1e12


# --------------------------------------------------------------------------- #
# Operator -> kernel lowering                                                  #
# --------------------------------------------------------------------------- #
def _conv_blocks(op: Conv2d | SeparableConv2d) -> int:
    out = op.output_shape
    assert out is not None
    channel_tiles = math.ceil(out.channels / CONV_TILE_CHANNELS)
    pixel_tiles = math.ceil((out.height * out.width) / CONV_TILE_PIXELS)
    return channel_tiles * pixel_tiles * out.batch


def _elementwise_blocks(op: Operator) -> int:
    assert op.output_shape is not None
    return max(1, math.ceil(op.output_shape.numel() / ELEMENTWISE_TILE))


def _matmul_blocks(op: Linear | Matmul) -> int:
    # Output channels == out_features for the weighted (projection) forms and
    # the trailing matrix dimension for batched activation-activation matmuls.
    out = op.output_shape
    assert out is not None
    feature_tiles = math.ceil(out.channels / MATMUL_TILE_FEATURES)
    row_tiles = math.ceil(out.batch / MATMUL_TILE_ROWS)
    return max(1, feature_tiles * row_tiles)


def build_kernel(
    op: Operator,
    device: DeviceSpec,
    profile: KernelProfile = CUDNN_PROFILE,
) -> KernelSpec | None:
    """Lower a bound IR operator to a :class:`KernelSpec`.

    Returns ``None`` for operators that do not launch a kernel (placeholders,
    identity, split, flatten): they are free at execution time.
    """
    if not op.launches_kernel:
        return None
    if op.output_shape is None:
        raise ValueError(f"operator {op.name!r} must be bound before lowering to a kernel")

    if isinstance(op, (Conv2d, SeparableConv2d)):
        num_blocks = _conv_blocks(op)
    elif isinstance(op, (Linear, Matmul)):
        num_blocks = _matmul_blocks(op)
    elif isinstance(
        op, (Pool2d, GlobalAvgPool, Relu, Gelu, LayerNorm, Transpose, Add, Concat, Softmax)
    ):
        num_blocks = _elementwise_blocks(op)
    else:
        # Unknown operator types (including imported Opaque nodes) fall back
        # to the memory-bound elementwise geometry; their efficiency comes
        # from the profile's default_efficiency.
        num_blocks = _elementwise_blocks(op)

    return KernelSpec(
        name=op.name,
        op_kind=op.kind,
        flops=float(op.flops()),
        memory_bytes=float(op.memory_bytes()),
        num_blocks=num_blocks,
        warps_per_block=device.warps_per_block,
        efficiency=profile.efficiency_for(op.kind),
        launch_overhead_ms=profile.launch_overhead_ms(device),
    )
