"""Simulated GPU hardware model.

This package substitutes for the physical GPUs (V100, K80, RTX 2080Ti) and the
cuDNN kernel library used by the paper: devices are described by architectural
parameters, operators are lowered to kernel launch geometries, and concurrent
execution across CUDA streams is simulated with a fluid contention model.
"""

from .device import DEVICE_REGISTRY, DeviceSpec, get_device, get_devices, list_devices
from .kernel import (
    CUDNN_PROFILE,
    KERNEL_PROFILES,
    TENSORRT_PROFILE,
    TVM_AUTOTUNE_PROFILE,
    KernelProfile,
    KernelSpec,
    build_kernel,
)
from .contention import (
    KernelExecution,
    SimulationResult,
    TimelineSegment,
    simulate_streams,
    waterfill_allocation,
)
from .latency import (
    OperatorLatency,
    device_utilization,
    estimate_operator_latency,
    estimate_sequential_latency,
)
from .streams import StagePlacement, Stream, run_stage_placement

__all__ = [
    "DeviceSpec",
    "DEVICE_REGISTRY",
    "get_device",
    "get_devices",
    "list_devices",
    "KernelProfile",
    "KernelSpec",
    "build_kernel",
    "CUDNN_PROFILE",
    "TVM_AUTOTUNE_PROFILE",
    "TENSORRT_PROFILE",
    "KERNEL_PROFILES",
    "KernelExecution",
    "TimelineSegment",
    "SimulationResult",
    "simulate_streams",
    "waterfill_allocation",
    "OperatorLatency",
    "estimate_operator_latency",
    "estimate_sequential_latency",
    "device_utilization",
    "Stream",
    "StagePlacement",
    "run_stage_placement",
]
