"""CUDA-stream abstractions used by the execution engine.

The paper's engine "puts different groups into different CUDA streams" so that
"kernels in different CUDA streams will be executed in parallel if there are
enough computation resources" (Section 5).  This module provides the small
data structures that describe that placement; the actual resource sharing is
simulated by :mod:`repro.hardware.contention`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .contention import SimulationResult, simulate_streams
from .device import DeviceSpec
from .kernel import KernelSpec

__all__ = ["Stream", "StagePlacement", "run_stage_placement"]


@dataclass
class Stream:
    """An ordered queue of kernels bound to one CUDA stream."""

    stream_id: int
    kernels: list[KernelSpec] = field(default_factory=list)

    def enqueue(self, kernel: KernelSpec) -> None:
        self.kernels.append(kernel)

    def total_flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    def total_memory_bytes(self) -> float:
        return sum(k.memory_bytes for k in self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)


@dataclass
class StagePlacement:
    """The stream placement of one stage: one stream per operator group."""

    streams: list[Stream] = field(default_factory=list)

    @classmethod
    def from_groups(cls, groups: Sequence[Sequence[KernelSpec]]) -> "StagePlacement":
        placement = cls()
        for idx, group in enumerate(groups):
            stream = Stream(stream_id=idx)
            for kernel in group:
                stream.enqueue(kernel)
            placement.streams.append(stream)
        return placement

    @property
    def num_streams(self) -> int:
        return len([s for s in self.streams if len(s) > 0])

    def total_kernels(self) -> int:
        return sum(len(s) for s in self.streams)

    def total_flops(self) -> float:
        return sum(s.total_flops() for s in self.streams)


def run_stage_placement(
    placement: StagePlacement,
    device: DeviceSpec,
    record_trace: bool = False,
    include_sync: bool = True,
) -> SimulationResult:
    """Simulate one stage: concurrent streams followed by a synchronisation.

    The stage barrier (``cudaStreamSynchronize`` on every stream) costs
    ``device.stream_sync_overhead_ms`` once per extra stream used, which is the
    synchronisation overhead that makes over-parallelised (greedy) schedules
    lose on small networks such as SqueezeNet (Section 6.1).
    """
    result = simulate_streams([s.kernels for s in placement.streams], device, record_trace)
    if include_sync and placement.num_streams > 0:
        sync_cost = device.stream_sync_overhead_ms * max(1, placement.num_streams - 1)
        result.latency_ms += sync_cost
    return result
