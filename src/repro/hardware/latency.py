"""Analytical (closed-form) latency estimates for single kernels.

The discrete-event simulator in :mod:`repro.hardware.contention` is the source
of truth for all experiments.  The closed-form estimates here serve two
purposes:

* fast annotations for figures that report per-operator numbers (e.g. the
  GFLOPs / TFLOPs/s / utilisation labels of Figure 2);
* a cross-check used by the test-suite: for a *single* kernel running alone,
  the simulator and the closed form must agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.ops import Operator
from .device import DeviceSpec
from .kernel import CUDNN_PROFILE, KernelProfile, KernelSpec, build_kernel

__all__ = ["OperatorLatency", "estimate_operator_latency", "estimate_sequential_latency",
           "device_utilization"]


@dataclass(frozen=True)
class OperatorLatency:
    """Closed-form latency breakdown of one operator running alone."""

    name: str
    kind: str
    latency_ms: float
    compute_ms: float
    memory_ms: float
    launch_ms: float
    achieved_tflops: float
    occupancy: float
    gflops: float

    @property
    def utilization(self) -> float:
        """Achieved fraction of the device's peak FP32 throughput."""
        return self._utilization

    # populated in __post_init__-style by estimate_operator_latency via object.__setattr__
    _utilization: float = 0.0


def estimate_operator_latency(
    op: Operator,
    device: DeviceSpec,
    profile: KernelProfile = CUDNN_PROFILE,
    include_launch: bool = True,
) -> OperatorLatency:
    """Roofline + occupancy latency of one operator running alone on ``device``."""
    kernel = build_kernel(op, device, profile)
    if kernel is None:
        return OperatorLatency(
            name=op.name,
            kind=op.kind,
            latency_ms=0.0,
            compute_ms=0.0,
            memory_ms=0.0,
            launch_ms=0.0,
            achieved_tflops=0.0,
            occupancy=0.0,
            gflops=0.0,
            _utilization=0.0,
        )
    compute_ms = kernel.compute_time_ms(device)
    memory_ms = kernel.memory_time_ms(device)
    launch_ms = kernel.launch_overhead_ms if include_launch else 0.0
    busy = max(compute_ms, memory_ms)
    latency = busy + launch_ms
    achieved = kernel.achieved_tflops(device)
    utilization = achieved / device.peak_fp32_tflops if device.peak_fp32_tflops > 0 else 0.0
    return OperatorLatency(
        name=op.name,
        kind=op.kind,
        latency_ms=latency,
        compute_ms=compute_ms,
        memory_ms=memory_ms,
        launch_ms=launch_ms,
        achieved_tflops=achieved,
        occupancy=kernel.occupancy(device),
        gflops=kernel.flops / 1e9,
        _utilization=utilization,
    )


def estimate_sequential_latency(
    ops: list[Operator],
    device: DeviceSpec,
    profile: KernelProfile = CUDNN_PROFILE,
) -> float:
    """Closed-form latency of executing ``ops`` strictly one after another."""
    return sum(estimate_operator_latency(op, device, profile).latency_ms for op in ops)


def device_utilization(flops: float, latency_ms: float, device: DeviceSpec) -> float:
    """Utilisation achieved when ``flops`` of work completes in ``latency_ms``."""
    if latency_ms <= 0:
        return 0.0
    achieved_flops_per_ms = flops / latency_ms
    return achieved_flops_per_ms / device.peak_flops_per_ms


def kernel_duration_alone(kernel: KernelSpec, device: DeviceSpec) -> float:
    """Convenience wrapper mirroring :meth:`KernelSpec.duration_alone_ms`."""
    return kernel.duration_alone_ms(device)
