"""Multi-stream GPU contention simulator.

This module is the heart of the hardware substitution: it replaces "measure the
latency of this stage on the GPU" (what the paper's C++/cuDNN engine does) with
a deterministic fluid simulation of concurrent kernels sharing one GPU.

Model
-----
Each CUDA stream is a FIFO of kernels.  A kernel first pays its launch
overhead (CPU/driver time that does not occupy the GPU), then becomes
*active*.  All concurrently active kernels share two resources:

* **SM block slots** — the device offers ``num_sms * blocks_per_sm`` thread
  block slots.  Slots are distributed among active kernels by max-min fair
  water-filling, capped by each kernel's own block count (a kernel with 48
  blocks can never use more than 48 slots — this is the under-utilisation that
  motivates inter-operator parallelism).  Wave quantisation is preserved: a
  kernel granted ``s`` slots progresses at ``num_blocks / ceil(num_blocks/s)``
  slot-equivalents, matching the tail effect of real launches.
* **DRAM bandwidth** — shared proportionally to allocated slots and inflated by
  a contention factor ``(1 + alpha * (k - 1))`` when ``k`` kernels are resident
  simultaneously, modelling L2 and row-buffer interference.  This is the
  mechanism by which "executing too many operators on the device concurrently
  may lead to resource contention" (Section 1) — the reason the greedy schedule
  is not optimal.

A kernel finishes when both its compute work (FLOPs) and its memory work
(bytes) are exhausted; compute and memory transfer overlap (roofline
behaviour).  The simulation is event driven: events are kernel launch
completions and kernel finishes, so its cost is quadratic in the number of
kernels per stage, which is tiny.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from .device import DeviceSpec
from .kernel import KernelSpec

__all__ = [
    "KernelExecution",
    "TimelineSegment",
    "SimulationResult",
    "simulate_streams",
    "waterfill_allocation",
]

_EPS = 1e-12


@dataclass(frozen=True)
class KernelExecution:
    """Start/end times of one kernel in a simulation."""

    kernel_name: str
    stream: int
    launch_start_ms: float
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class TimelineSegment:
    """A time interval with a constant set of active kernels."""

    start_ms: float
    end_ms: float
    active_kernels: tuple[str, ...]
    active_warps: int

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class SimulationResult:
    """Outcome of simulating a set of streams."""

    latency_ms: float
    executions: list[KernelExecution] = field(default_factory=list)
    timeline: list[TimelineSegment] = field(default_factory=list)

    def execution_of(self, kernel_name: str) -> KernelExecution:
        for execution in self.executions:
            if execution.kernel_name == kernel_name:
                return execution
        raise KeyError(f"kernel {kernel_name!r} not found in simulation result")

    def average_active_warps(self) -> float:
        """Time-weighted average number of active warps."""
        if self.latency_ms <= 0 or not self.timeline:
            return 0.0
        weighted = sum(seg.active_warps * seg.duration_ms for seg in self.timeline)
        return weighted / self.latency_ms


def waterfill_allocation(demands: Sequence[int], capacity: int) -> list[float]:
    """Max-min fair allocation of ``capacity`` slots to kernels.

    ``demands[i]`` is the maximum number of slots kernel ``i`` can use (its
    block count).  Returns fractional allocations summing to at most
    ``capacity`` where no kernel exceeds its demand and spare capacity is
    redistributed to still-unsatisfied kernels.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    n = len(demands)
    allocation = [0.0] * n
    if n == 0:
        return allocation
    if any(d <= 0 for d in demands):
        raise ValueError("all demands must be positive")
    unsatisfied = set(range(n))
    remaining = float(capacity)
    while unsatisfied and remaining > _EPS:
        share = remaining / len(unsatisfied)
        fully_served = [i for i in unsatisfied if demands[i] - allocation[i] <= share + _EPS]
        if fully_served:
            for i in fully_served:
                remaining -= demands[i] - allocation[i]
                allocation[i] = float(demands[i])
                unsatisfied.discard(i)
        else:
            for i in unsatisfied:
                allocation[i] += share
            remaining = 0.0
    return allocation


class _StreamState:
    """Mutable execution state of one stream."""

    __slots__ = ("kernels", "index", "phase", "launch_remaining", "rem_compute", "rem_memory",
                 "launch_start", "run_start", "stream_id")

    def __init__(self, kernels: Sequence[KernelSpec], stream_id: int = 0):
        self.kernels = list(kernels)
        self.stream_id = stream_id
        self.index = 0
        self.phase = "idle"
        self.launch_remaining = 0.0
        self.rem_compute = 0.0
        self.rem_memory = 0.0
        self.launch_start = 0.0
        self.run_start = 0.0

    @property
    def done(self) -> bool:
        return self.index >= len(self.kernels)

    @property
    def current(self) -> KernelSpec:
        return self.kernels[self.index]

    def begin_launch(self, now: float) -> None:
        kernel = self.current
        self.phase = "launch"
        self.launch_start = now
        self.launch_remaining = kernel.launch_overhead_ms
        self.rem_compute = kernel.flops
        self.rem_memory = kernel.memory_bytes

    def begin_run(self, now: float) -> None:
        self.phase = "run"
        self.run_start = now


def _kernel_rates(
    kernel: KernelSpec,
    slots: float,
    total_slots: float,
    active_count: int,
    device: DeviceSpec,
) -> tuple[float, float]:
    """Compute (compute_rate FLOPs/ms, memory_rate bytes/ms) for one interval."""
    if slots <= _EPS:
        return 0.0, 0.0
    # Wave quantisation: with s slots a kernel of B blocks runs ceil(B/s) waves,
    # i.e. it progresses as if it had B / ceil(B/s) dedicated slots.
    waves = math.ceil(kernel.num_blocks / slots - 1e-9)
    effective_slots = kernel.num_blocks / waves if waves > 0 else slots
    effective_slots = min(effective_slots, slots if slots < kernel.num_blocks else kernel.num_blocks)
    compute_rate = effective_slots * device.flops_per_slot_ms * kernel.efficiency
    bandwidth_share = slots / total_slots if total_slots > 0 else 0.0
    contention = 1.0 + device.contention_alpha * max(0, active_count - 1)
    memory_rate = bandwidth_share * device.bandwidth_bytes_per_ms / contention
    return compute_rate, memory_rate


#: Memoised waterfill results keyed by ``(demands, capacity)``.  Demand
#: tuples recur heavily across stage measurements (stages are built from the
#: same kernels in many combinations), and the allocation is a pure function
#: of its inputs.  Bounded to keep long-lived processes from growing it
#: without limit.
_WATERFILL_CACHE: dict[tuple, tuple[float, ...]] = {}
_WATERFILL_CACHE_LIMIT = 1 << 16


def _waterfill_cached(demands: tuple[int, ...], capacity: int) -> tuple[float, ...]:
    key = (demands, capacity)
    alloc = _WATERFILL_CACHE.get(key)
    if alloc is None:
        if len(_WATERFILL_CACHE) >= _WATERFILL_CACHE_LIMIT:
            _WATERFILL_CACHE.clear()
        alloc = tuple(waterfill_allocation(demands, capacity))
        _WATERFILL_CACHE[key] = alloc
    return alloc


#: Memoised (allocation, rates) bundles for a set of concurrently running
#: kernels.  A kernel's allocation and rates depend only on every resident
#: kernel's ``(num_blocks, efficiency)`` pair and the device constants, and
#: the same combinations recur across intervals and across the many stage
#: measurements of a DP search.  Keyed per device-constant tuple, bounded.
_RATES_CACHE: dict[tuple, dict[tuple, tuple]] = {}
_RATES_CACHE_LIMIT = 1 << 16

#: Memoised end-to-end latencies for the latency-only simulation path.  The
#: simulated latency is a pure function of the per-stream kernel sequences
#: (each kernel reduced to the five fields the simulation reads) and the
#: device constants; numerically identical stages recur across op subsets
#: because networks reuse the same operator shapes.  Bounded like the others.
_LATENCY_CACHE: dict[tuple, dict[tuple, float]] = {}
_LATENCY_CACHE_LIMIT = 1 << 16


def _kernel_value(kernel: KernelSpec) -> tuple:
    return (
        kernel.num_blocks,
        kernel.efficiency,
        kernel.flops,
        kernel.memory_bytes,
        kernel.launch_overhead_ms,
    )


def _simulate_single_stream(kernels: Sequence[KernelSpec], device: DeviceSpec) -> float:
    """Latency of one stream's kernels run back-to-back, no bookkeeping.

    Single-stream simulations have no cross-kernel interaction — exactly one
    kernel launches or runs at any time — so the event loop degenerates to a
    per-kernel walk.  Every float operation below replicates the general
    loop's sequence (same waterfill, same rate computation, same
    ``rem - rate*dt`` updates with the same clamps and ``_EPS`` guards), so
    the returned latency is bit-identical to the full simulation; only the
    per-interval stream filtering and allocation rebuilds are skipped.
    """
    now = 0.0
    capacity = device.total_block_slots
    guard = 0
    max_iterations = 4 * len(kernels) + 16
    for kernel in kernels:
        now += kernel.launch_overhead_ms
        rem_compute = kernel.flops
        rem_memory = kernel.memory_bytes
        alloc = waterfill_allocation([kernel.max_parallelism(device)], capacity)
        slots = alloc[0]
        # Rates are constant across this kernel's intervals (the allocation
        # never changes with one resident kernel), so compute them once.
        compute_rate, memory_rate = _kernel_rates(kernel, slots, sum(alloc), 1, device)
        while rem_compute > _EPS or rem_memory > _EPS:
            guard += 1
            if guard > max_iterations * 8:
                raise RuntimeError("contention simulation did not converge (internal error)")
            ttf = 0.0
            if rem_compute > _EPS:
                ttf = max(ttf, rem_compute / compute_rate if compute_rate > 0 else math.inf)
            if rem_memory > _EPS:
                ttf = max(ttf, rem_memory / memory_rate if memory_rate > 0 else math.inf)
            dt = 0.0 if math.isinf(ttf) else ttf
            now += dt
            rem_compute = rem_compute - compute_rate * dt
            rem_compute = rem_compute if rem_compute > 0.0 else 0.0
            rem_memory = rem_memory - memory_rate * dt
            rem_memory = rem_memory if rem_memory > 0.0 else 0.0
    return now


def simulate_streams(
    streams: Sequence[Sequence[KernelSpec]],
    device: DeviceSpec,
    record_trace: bool = False,
    record_executions: bool = True,
) -> SimulationResult:
    """Simulate the concurrent execution of kernel streams on one device.

    Parameters
    ----------
    streams:
        One sequence of kernels per CUDA stream; kernels inside a stream run in
        FIFO order, kernels in different streams run concurrently.
    device:
        The simulated GPU.
    record_trace:
        When true, the result's ``timeline`` contains one segment per interval
        with the number of active warps, which the active-warp experiment
        (Figure 8) samples.
    record_executions:
        When false, per-kernel :class:`KernelExecution` records are not
        materialised (the DP search's latency-only path); the computed latency
        is unaffected.

    Returns
    -------
    SimulationResult
        Total latency, per-kernel executions and (optionally) the timeline.
    """
    states = []
    for stream_id, kernels in enumerate(streams):
        if len(kernels) > 0:
            states.append(_StreamState(kernels, len(states)))
    result = SimulationResult(latency_ms=0.0)
    if not states:
        return result

    latency_only = not record_trace and not record_executions
    latency_cache: dict[tuple, float] | None = None
    cache_key: tuple = ()
    if latency_only:
        cache_key = tuple(
            tuple(_kernel_value(k) for k in state.kernels) for state in states
        )
        latency_cache = _LATENCY_CACHE.setdefault(
            (
                device.total_block_slots,
                device.flops_per_slot_ms,
                device.bandwidth_bytes_per_ms,
                device.contention_alpha,
            ),
            {},
        )
        cached_latency = latency_cache.get(cache_key)
        if cached_latency is not None:
            result.latency_ms = cached_latency
            return result

    if len(states) == 1 and latency_only:
        result.latency_ms = _simulate_single_stream(states[0].kernels, device)
        assert latency_cache is not None
        if len(latency_cache) >= _LATENCY_CACHE_LIMIT:
            latency_cache.clear()
        latency_cache[cache_key] = result.latency_ms
        return result

    now = 0.0
    for state in states:
        state.begin_launch(now)

    pending = len(states)
    guard = 0
    max_iterations = 4 * sum(len(s.kernels) for s in states) + 16
    capacity = device.total_block_slots
    flops_per_slot = device.flops_per_slot_ms
    bandwidth = device.bandwidth_bytes_per_ms
    contention_alpha = device.contention_alpha
    rates_cache = _RATES_CACHE.setdefault(
        (capacity, flops_per_slot, bandwidth, contention_alpha), {}
    )
    launching: list[_StreamState] = []
    running: list[_StreamState] = []
    alloc: Sequence[float] = ()
    rates: list[tuple[float, float]] = []
    # The active sets (and hence the waterfill allocation and per-kernel
    # rates) only change when a kernel starts or finishes.  Intervals in
    # between — the float-remainder tail steps of ``rem - rate*dt`` — reuse
    # the previous interval's values, which are bit-identical by construction.
    dirty = True
    while pending:
        guard += 1
        if guard > max_iterations * 8:
            raise RuntimeError("contention simulation did not converge (internal error)")

        if dirty:
            # A stream's phase is "idle" exactly when it has drained (every
            # stream begins launching immediately), so phase alone suffices.
            launching = [s for s in states if s.phase == "launch"]
            running = [s for s in states if s.phase == "run"]

            # --- compute resource allocation for running kernels ------------
            # The rate computation is :func:`_kernel_rates` inlined over the
            # hoisted device constants — identical float sequence, minus the
            # per-call property lookups — and the whole bundle is memoised on
            # the resident kernels' (num_blocks, efficiency) combination.
            if running:
                combo = tuple(
                    (k.num_blocks, k.efficiency)
                    for k in [s.kernels[s.index] for s in running]
                )
                cached = rates_cache.get(combo)
                if cached is not None:
                    alloc, rates = cached
                else:
                    num_running = len(running)
                    demands = tuple(min(nb, capacity) for nb, _ in combo)
                    alloc = _waterfill_cached(demands, capacity)
                    total_alloc = sum(alloc)
                    contention = 1.0 + contention_alpha * (num_running - 1)
                    rates = []
                    for (num_blocks, efficiency), slots in zip(combo, alloc):
                        if slots <= _EPS:
                            rates.append((0.0, 0.0))
                            continue
                        waves = math.ceil(num_blocks / slots - 1e-9)
                        effective_slots = num_blocks / waves if waves > 0 else slots
                        effective_slots = min(
                            effective_slots, slots if slots < num_blocks else num_blocks
                        )
                        compute_rate = effective_slots * flops_per_slot * efficiency
                        bandwidth_share = slots / total_alloc if total_alloc > 0 else 0.0
                        rates.append(
                            (compute_rate, bandwidth_share * bandwidth / contention)
                        )
                    if len(rates_cache) >= _RATES_CACHE_LIMIT:
                        rates_cache.clear()
                    rates_cache[combo] = (alloc, rates)
            else:
                alloc = ()
                rates = []
            dirty = False

        # --- find the next event --------------------------------------------
        dt = math.inf
        for state in launching:
            if state.launch_remaining < dt:
                dt = state.launch_remaining
        for state, (compute_rate, memory_rate) in zip(running, rates):
            ttf = 0.0
            if state.rem_compute > _EPS:
                ttf = max(ttf, state.rem_compute / compute_rate if compute_rate > 0 else math.inf)
            if state.rem_memory > _EPS:
                ttf = max(ttf, state.rem_memory / memory_rate if memory_rate > 0 else math.inf)
            dt = min(dt, ttf)
        if math.isinf(dt):
            # Only zero-work kernels remain; let them finish instantly.
            dt = 0.0

        # --- advance time -----------------------------------------------------
        if record_trace and running and dt > 0:
            active_warps = int(
                round(
                    sum(
                        min(slots, s.current.num_blocks) * s.current.warps_per_block
                        for s, slots in zip(running, alloc)
                    )
                )
            )
            result.timeline.append(
                TimelineSegment(
                    start_ms=now,
                    end_ms=now + dt,
                    active_kernels=tuple(s.current.name for s in running),
                    active_warps=active_warps,
                )
            )
        now += dt

        for state in launching:
            state.launch_remaining -= dt
            if state.launch_remaining <= _EPS:
                state.begin_run(now)
                dirty = True
        for state, (compute_rate, memory_rate) in zip(running, rates):
            rem_compute = state.rem_compute - compute_rate * dt
            state.rem_compute = rem_compute = rem_compute if rem_compute > 0.0 else 0.0
            rem_memory = state.rem_memory - memory_rate * dt
            state.rem_memory = rem_memory = rem_memory if rem_memory > 0.0 else 0.0
            if rem_compute <= _EPS and rem_memory <= _EPS:
                if record_executions:
                    kernel = state.current
                    result.executions.append(
                        KernelExecution(
                            kernel_name=kernel.name,
                            stream=state.stream_id,
                            launch_start_ms=state.launch_start,
                            start_ms=state.run_start,
                            end_ms=now,
                        )
                    )
                state.index += 1
                if not state.done:
                    state.begin_launch(now)
                else:
                    state.phase = "idle"
                    pending -= 1
                dirty = True

    result.latency_ms = now
    if latency_cache is not None:
        if len(latency_cache) >= _LATENCY_CACHE_LIMIT:
            latency_cache.clear()
        latency_cache[cache_key] = now
    return result
