"""Multi-stream GPU contention simulator.

This module is the heart of the hardware substitution: it replaces "measure the
latency of this stage on the GPU" (what the paper's C++/cuDNN engine does) with
a deterministic fluid simulation of concurrent kernels sharing one GPU.

Model
-----
Each CUDA stream is a FIFO of kernels.  A kernel first pays its launch
overhead (CPU/driver time that does not occupy the GPU), then becomes
*active*.  All concurrently active kernels share two resources:

* **SM block slots** — the device offers ``num_sms * blocks_per_sm`` thread
  block slots.  Slots are distributed among active kernels by max-min fair
  water-filling, capped by each kernel's own block count (a kernel with 48
  blocks can never use more than 48 slots — this is the under-utilisation that
  motivates inter-operator parallelism).  Wave quantisation is preserved: a
  kernel granted ``s`` slots progresses at ``num_blocks / ceil(num_blocks/s)``
  slot-equivalents, matching the tail effect of real launches.
* **DRAM bandwidth** — shared proportionally to allocated slots and inflated by
  a contention factor ``(1 + alpha * (k - 1))`` when ``k`` kernels are resident
  simultaneously, modelling L2 and row-buffer interference.  This is the
  mechanism by which "executing too many operators on the device concurrently
  may lead to resource contention" (Section 1) — the reason the greedy schedule
  is not optimal.

A kernel finishes when both its compute work (FLOPs) and its memory work
(bytes) are exhausted; compute and memory transfer overlap (roofline
behaviour).  The simulation is event driven: events are kernel launch
completions and kernel finishes, so its cost is quadratic in the number of
kernels per stage, which is tiny.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from .device import DeviceSpec
from .kernel import KernelSpec

__all__ = [
    "KernelExecution",
    "TimelineSegment",
    "SimulationResult",
    "simulate_streams",
    "waterfill_allocation",
]

_EPS = 1e-12


@dataclass(frozen=True)
class KernelExecution:
    """Start/end times of one kernel in a simulation."""

    kernel_name: str
    stream: int
    launch_start_ms: float
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class TimelineSegment:
    """A time interval with a constant set of active kernels."""

    start_ms: float
    end_ms: float
    active_kernels: tuple[str, ...]
    active_warps: int

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class SimulationResult:
    """Outcome of simulating a set of streams."""

    latency_ms: float
    executions: list[KernelExecution] = field(default_factory=list)
    timeline: list[TimelineSegment] = field(default_factory=list)

    def execution_of(self, kernel_name: str) -> KernelExecution:
        for execution in self.executions:
            if execution.kernel_name == kernel_name:
                return execution
        raise KeyError(f"kernel {kernel_name!r} not found in simulation result")

    def average_active_warps(self) -> float:
        """Time-weighted average number of active warps."""
        if self.latency_ms <= 0 or not self.timeline:
            return 0.0
        weighted = sum(seg.active_warps * seg.duration_ms for seg in self.timeline)
        return weighted / self.latency_ms


def waterfill_allocation(demands: Sequence[int], capacity: int) -> list[float]:
    """Max-min fair allocation of ``capacity`` slots to kernels.

    ``demands[i]`` is the maximum number of slots kernel ``i`` can use (its
    block count).  Returns fractional allocations summing to at most
    ``capacity`` where no kernel exceeds its demand and spare capacity is
    redistributed to still-unsatisfied kernels.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    n = len(demands)
    allocation = [0.0] * n
    if n == 0:
        return allocation
    if any(d <= 0 for d in demands):
        raise ValueError("all demands must be positive")
    unsatisfied = set(range(n))
    remaining = float(capacity)
    while unsatisfied and remaining > _EPS:
        share = remaining / len(unsatisfied)
        fully_served = [i for i in unsatisfied if demands[i] - allocation[i] <= share + _EPS]
        if fully_served:
            for i in fully_served:
                remaining -= demands[i] - allocation[i]
                allocation[i] = float(demands[i])
                unsatisfied.discard(i)
        else:
            for i in unsatisfied:
                allocation[i] += share
            remaining = 0.0
    return allocation


class _StreamState:
    """Mutable execution state of one stream."""

    __slots__ = ("kernels", "index", "phase", "launch_remaining", "rem_compute", "rem_memory",
                 "launch_start", "run_start")

    def __init__(self, kernels: Sequence[KernelSpec]):
        self.kernels = list(kernels)
        self.index = 0
        self.phase = "idle"
        self.launch_remaining = 0.0
        self.rem_compute = 0.0
        self.rem_memory = 0.0
        self.launch_start = 0.0
        self.run_start = 0.0

    @property
    def done(self) -> bool:
        return self.index >= len(self.kernels)

    @property
    def current(self) -> KernelSpec:
        return self.kernels[self.index]

    def begin_launch(self, now: float) -> None:
        kernel = self.current
        self.phase = "launch"
        self.launch_start = now
        self.launch_remaining = kernel.launch_overhead_ms
        self.rem_compute = kernel.flops
        self.rem_memory = kernel.memory_bytes

    def begin_run(self, now: float) -> None:
        self.phase = "run"
        self.run_start = now


def _kernel_rates(
    kernel: KernelSpec,
    slots: float,
    total_slots: float,
    active_count: int,
    device: DeviceSpec,
) -> tuple[float, float]:
    """Compute (compute_rate FLOPs/ms, memory_rate bytes/ms) for one interval."""
    if slots <= _EPS:
        return 0.0, 0.0
    # Wave quantisation: with s slots a kernel of B blocks runs ceil(B/s) waves,
    # i.e. it progresses as if it had B / ceil(B/s) dedicated slots.
    waves = math.ceil(kernel.num_blocks / slots - 1e-9)
    effective_slots = kernel.num_blocks / waves if waves > 0 else slots
    effective_slots = min(effective_slots, slots if slots < kernel.num_blocks else kernel.num_blocks)
    compute_rate = effective_slots * device.flops_per_slot_ms * kernel.efficiency
    bandwidth_share = slots / total_slots if total_slots > 0 else 0.0
    contention = 1.0 + device.contention_alpha * max(0, active_count - 1)
    memory_rate = bandwidth_share * device.bandwidth_bytes_per_ms / contention
    return compute_rate, memory_rate


def simulate_streams(
    streams: Sequence[Sequence[KernelSpec]],
    device: DeviceSpec,
    record_trace: bool = False,
) -> SimulationResult:
    """Simulate the concurrent execution of kernel streams on one device.

    Parameters
    ----------
    streams:
        One sequence of kernels per CUDA stream; kernels inside a stream run in
        FIFO order, kernels in different streams run concurrently.
    device:
        The simulated GPU.
    record_trace:
        When true, the result's ``timeline`` contains one segment per interval
        with the number of active warps, which the active-warp experiment
        (Figure 8) samples.

    Returns
    -------
    SimulationResult
        Total latency, per-kernel executions and (optionally) the timeline.
    """
    states = [_StreamState(kernels) for kernels in streams if len(kernels) > 0]
    result = SimulationResult(latency_ms=0.0)
    if not states:
        return result

    now = 0.0
    for state in states:
        state.begin_launch(now)

    guard = 0
    max_iterations = 4 * sum(len(s.kernels) for s in states) + 16
    while any(not s.done for s in states):
        guard += 1
        if guard > max_iterations * 8:
            raise RuntimeError("contention simulation did not converge (internal error)")

        launching = [s for s in states if not s.done and s.phase == "launch"]
        running = [s for s in states if not s.done and s.phase == "run"]

        # --- compute resource allocation for running kernels ----------------
        allocations: dict[int, float] = {}
        rates: dict[int, tuple[float, float]] = {}
        if running:
            demands = [s.current.max_parallelism(device) for s in running]
            alloc = waterfill_allocation(demands, device.total_block_slots)
            total_alloc = sum(alloc)
            for state, slots in zip(running, alloc):
                allocations[id(state)] = slots
                rates[id(state)] = _kernel_rates(
                    state.current, slots, total_alloc, len(running), device
                )

        # --- find the next event --------------------------------------------
        dt = math.inf
        for state in launching:
            dt = min(dt, state.launch_remaining)
        for state in running:
            compute_rate, memory_rate = rates[id(state)]
            ttf = 0.0
            if state.rem_compute > _EPS:
                ttf = max(ttf, state.rem_compute / compute_rate if compute_rate > 0 else math.inf)
            if state.rem_memory > _EPS:
                ttf = max(ttf, state.rem_memory / memory_rate if memory_rate > 0 else math.inf)
            dt = min(dt, ttf)
        if math.isinf(dt):
            # Only zero-work kernels remain; let them finish instantly.
            dt = 0.0

        # --- advance time -----------------------------------------------------
        if record_trace and running and dt > 0:
            active_warps = int(
                round(
                    sum(
                        min(allocations[id(s)], s.current.num_blocks) * s.current.warps_per_block
                        for s in running
                    )
                )
            )
            result.timeline.append(
                TimelineSegment(
                    start_ms=now,
                    end_ms=now + dt,
                    active_kernels=tuple(s.current.name for s in running),
                    active_warps=active_warps,
                )
            )
        now += dt

        for state in launching:
            state.launch_remaining -= dt
            if state.launch_remaining <= _EPS:
                state.begin_run(now)
        for state in running:
            compute_rate, memory_rate = rates[id(state)]
            state.rem_compute = max(0.0, state.rem_compute - compute_rate * dt)
            state.rem_memory = max(0.0, state.rem_memory - memory_rate * dt)
            if state.rem_compute <= _EPS and state.rem_memory <= _EPS:
                kernel = state.current
                result.executions.append(
                    KernelExecution(
                        kernel_name=kernel.name,
                        stream=states.index(state),
                        launch_start_ms=state.launch_start,
                        start_ms=state.run_start,
                        end_ms=now,
                    )
                )
                state.index += 1
                if not state.done:
                    state.begin_launch(now)
                else:
                    state.phase = "idle"

    result.latency_ms = now
    return result
