"""GPU device specifications.

The paper evaluates IOS on NVIDIA Tesla V100 and K80 and on an RTX 2080Ti, and
motivates the problem (Figure 1) with GTX 980Ti / GTX 1080 / V100 peak numbers.
Since no GPU is available in this environment, devices are described by a small
set of published architectural parameters that the simulator consumes:

* number of streaming multiprocessors (SMs) and how many thread blocks each SM
  can host concurrently — this bounds the amount of *inter- and intra-operator
  parallelism* the device can absorb;
* peak FP32 throughput and DRAM bandwidth — the two roofline ceilings;
* kernel-launch and stream-synchronisation overheads — the fixed costs that
  make over-parallelisation (the greedy schedule) expensive;
* DRAM capacity — used by the memory planner to reproduce the TASO
  out-of-memory result at batch size 128 (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

__all__ = ["DeviceSpec", "DEVICE_REGISTRY", "get_device", "get_devices", "list_devices"]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a GPU used by the simulator."""

    name: str
    #: Number of streaming multiprocessors.
    num_sms: int
    #: Peak single-precision throughput in TFLOPs/s.
    peak_fp32_tflops: float
    #: Peak DRAM bandwidth in GB/s.
    memory_bandwidth_gb_s: float
    #: DRAM capacity in GiB.
    memory_gb: float
    #: Maximum thread blocks resident per SM (for the block sizes our kernel
    #: model uses; real GPUs allow more for tiny blocks).
    blocks_per_sm: int = 2
    #: Threads per warp.
    warp_size: int = 32
    #: Warps per thread block in the kernel model (256 threads / 32).
    warps_per_block: int = 8
    #: Fixed CPU+driver cost of launching one kernel, in milliseconds.
    kernel_launch_overhead_ms: float = 0.005
    #: Cost of synchronising the streams of a stage (one barrier), in ms.
    stream_sync_overhead_ms: float = 0.004
    #: Additional DRAM-traffic inflation per extra *concurrently resident*
    #: kernel, modelling L2/DRAM row-buffer interference between streams.
    contention_alpha: float = 0.12
    #: Release year, used by the Figure-1 trend experiment.
    year: int = 2018

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.peak_fp32_tflops <= 0:
            raise ValueError(f"peak_fp32_tflops must be positive, got {self.peak_fp32_tflops}")
        if self.memory_bandwidth_gb_s <= 0:
            raise ValueError(
                f"memory_bandwidth_gb_s must be positive, got "
                f"{self.memory_bandwidth_gb_s}"
            )
        if self.blocks_per_sm <= 0:
            raise ValueError(f"blocks_per_sm must be positive, got {self.blocks_per_sm}")
        if self.contention_alpha < 0:
            raise ValueError("contention_alpha must be non-negative")

    # ------------------------------------------------------------ derived units
    @property
    def peak_flops_per_ms(self) -> float:
        """Peak FP32 throughput in FLOPs per millisecond."""
        return self.peak_fp32_tflops * 1e12 / 1e3

    @property
    def bandwidth_bytes_per_ms(self) -> float:
        """DRAM bandwidth in bytes per millisecond."""
        return self.memory_bandwidth_gb_s * 1e9 / 1e3

    @property
    def total_block_slots(self) -> int:
        """How many thread blocks the whole GPU can execute concurrently."""
        return self.num_sms * self.blocks_per_sm

    @property
    def flops_per_slot_ms(self) -> float:
        """Peak FLOPs per millisecond of a single resident thread block slot."""
        return self.peak_flops_per_ms / self.total_block_slots

    @property
    def memory_bytes(self) -> float:
        """DRAM capacity in bytes."""
        return self.memory_gb * (1024**3)

    @property
    def max_active_warps(self) -> int:
        """Upper bound on simultaneously active warps on the whole device."""
        return self.total_block_slots * self.warps_per_block

    def scaled(self, **overrides) -> "DeviceSpec":
        """Return a copy with selected fields overridden (for what-if studies)."""
        return replace(self, **overrides)


# --------------------------------------------------------------------------- #
# Presets                                                                      #
# --------------------------------------------------------------------------- #
# Peak FP32 numbers follow the paper's Figure 1 where given (980Ti 5.767,
# GTX 1080 8.425, V100 15.7 TFLOPs/s) and public datasheets otherwise.
_PRESETS = [
    DeviceSpec(
        name="v100",
        num_sms=80,
        peak_fp32_tflops=15.7,
        memory_bandwidth_gb_s=900.0,
        memory_gb=16.0,
        kernel_launch_overhead_ms=0.005,
        stream_sync_overhead_ms=0.004,
        contention_alpha=0.12,
        year=2018,
    ),
    DeviceSpec(
        name="k80",
        # One GK210 die of the dual-die K80 board (the paper schedules one GPU).
        num_sms=13,
        peak_fp32_tflops=2.8,
        memory_bandwidth_gb_s=240.0,
        memory_gb=12.0,
        blocks_per_sm=2,
        kernel_launch_overhead_ms=0.009,
        stream_sync_overhead_ms=0.007,
        # An older, smaller GPU suffers more from concurrent kernels.
        contention_alpha=0.30,
        year=2014,
    ),
    DeviceSpec(
        name="rtx2080ti",
        num_sms=68,
        peak_fp32_tflops=13.45,
        memory_bandwidth_gb_s=616.0,
        memory_gb=11.0,
        kernel_launch_overhead_ms=0.005,
        stream_sync_overhead_ms=0.004,
        contention_alpha=0.14,
        year=2018,
    ),
    DeviceSpec(
        name="gtx1080",
        num_sms=20,
        peak_fp32_tflops=8.425,
        memory_bandwidth_gb_s=320.0,
        memory_gb=8.0,
        kernel_launch_overhead_ms=0.007,
        stream_sync_overhead_ms=0.005,
        contention_alpha=0.20,
        year=2016,
    ),
    DeviceSpec(
        name="gtx980ti",
        num_sms=22,
        peak_fp32_tflops=5.767,
        memory_bandwidth_gb_s=336.0,
        memory_gb=6.0,
        kernel_launch_overhead_ms=0.008,
        stream_sync_overhead_ms=0.006,
        contention_alpha=0.22,
        year=2015,
    ),
    DeviceSpec(
        name="a100",
        num_sms=108,
        peak_fp32_tflops=19.5,
        memory_bandwidth_gb_s=1555.0,
        memory_gb=40.0,
        kernel_launch_overhead_ms=0.004,
        stream_sync_overhead_ms=0.003,
        contention_alpha=0.10,
        year=2020,
    ),
]

DEVICE_REGISTRY: dict[str, DeviceSpec] = {spec.name: spec for spec in _PRESETS}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by (case-insensitive) name."""
    key = name.lower().replace(" ", "").replace("-", "").replace("_", "")
    aliases = {
        "teslav100": "v100",
        "teslak80": "k80",
        "2080ti": "rtx2080ti",
        "rtx2080": "rtx2080ti",
        "1080": "gtx1080",
        "980ti": "gtx980ti",
    }
    key = aliases.get(key, key)
    if key not in DEVICE_REGISTRY:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICE_REGISTRY)}")
    return DEVICE_REGISTRY[key]


def get_devices(names: "Iterable[str]") -> list[DeviceSpec]:
    """Look up several device presets at once (fleet members, worker pools).

    Order and multiplicity are preserved — pass one name per worker.  Raises
    :class:`KeyError` (listing the catalog) on the first unknown name.
    """
    return [get_device(name) for name in names]


def list_devices() -> list[str]:
    """Names of all registered device presets."""
    return sorted(DEVICE_REGISTRY)
