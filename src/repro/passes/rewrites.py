"""The built-in rewrite passes.

Seven semantics-preserving rewrites, each a :class:`~repro.passes.base.GraphPass`
registered under a stable name:

``fuse-activation``
    Fold standalone ``Relu`` nodes into the compound schedule units of the
    paper's Table 2: ``Conv-Relu`` (``Conv2d.activation``), ``Relu-SepConv``
    (``SeparableConv2d.pre_activation``) and ``Linear`` activations.  Also
    drops ReLUs that are no-ops because their input is already rectified.
``fuse-epilogue``
    Fold standalone ``Gelu`` nodes into the ``activation`` epilogue of the
    preceding projection (``matmul``/``linear``/``conv2d``), completing the
    importer's matmul+bias+activation folding for transformer FFN stacks.
``cse-shared-weights``
    Attention-block CSE: merge duplicate weightless (batched) matmuls, and
    duplicate projections whose shared learned weights are *witnessed* by an
    identical imported ``weight_id``.
``cse``
    Common-subexpression elimination within a block: duplicate *stateless*
    operators (pools, activations, adds, concats, splits, ...) with identical
    attributes and inputs collapse to one node.  Operators carrying learned
    weights (convolutions, linears) are never merged — equal configuration
    does not imply equal weights.
``simplify-split-concat``
    Remove split/concat plumbing: a concat of a complete in-order split of one
    tensor is that tensor; a split that exactly undoes a concat is the
    corresponding concat input; a single-input concat is a pass-through.
``eliminate-dead``
    Remove ``Identity`` pass-throughs and any operator whose output is no
    longer consumed and is not a graph output (e.g. splits orphaned by
    ``simplify-split-concat``).
``canonicalize``
    Normalise commutative (``Add``) input order and rewrite the node order to
    the canonical topological order of :func:`repro.ir.fingerprint.canonical_order`,
    so structurally equal graphs serialise identically and fingerprint caches
    hit reliably.
"""

from __future__ import annotations

import json

from ..ir.fingerprint import canonical_order
from ..ir.graph import Graph
from .base import GraphPass, register_pass
from .rewriter import GraphRewriter

__all__ = [
    "FuseActivationPass",
    "FuseEpiloguePass",
    "CommonSubexpressionPass",
    "SharedWeightCSEPass",
    "SplitConcatSimplifyPass",
    "EliminateDeadPass",
    "CanonicalizePass",
]

#: Operator kinds that carry an ``activation`` attribute a trailing ReLU can
#: fold into.
_ACTIVATION_CARRIERS = ("conv2d", "linear", "matmul")

#: Operator kinds whose output is already rectified, making a following ReLU
#: a no-op (ReLU is idempotent).
_RECTIFIED_KINDS = ("relu",)

#: Stateless operator kinds CSE may merge: pure functions of their inputs.
#: ``layer_norm`` is deliberately absent — its gain/bias are learned, so equal
#: configuration does not imply equal weights.
_STATELESS_KINDS = (
    "relu",
    "identity",
    "pool2d",
    "global_avg_pool",
    "add",
    "concat",
    "split",
    "flatten",
    "softmax",
    "gelu",
    "transpose",
    "reshape",
)


def _is_rectified(rw: GraphRewriter, name: str) -> bool:
    """True when ``name``'s output is provably non-negative (ReLU-ed)."""
    kind = rw.kind(name)
    if kind in _RECTIFIED_KINDS:
        return True
    return kind in _ACTIVATION_CARRIERS and rw.attrs(name).get("activation") == "relu"


@register_pass
class FuseActivationPass(GraphPass):
    """Fold standalone ReLUs into the preceding/following compound operator."""

    name = "fuse-activation"

    def run(self, graph: Graph) -> tuple[Graph, int]:
        rw = GraphRewriter(graph)
        rewrites = 0
        for relu in rw.nodes_of_kind("relu"):
            if relu not in rw.configs:  # already folded this sweep
                continue
            producer = rw.inputs(relu)[0]
            if producer not in rw.configs:
                continue
            kind = rw.kind(producer)
            if kind in _ACTIVATION_CARRIERS:
                activation = rw.attrs(producer).get("activation")
                if activation == "relu":
                    # producer output is already rectified: the ReLU is a no-op.
                    rw.redirect(relu, producer)
                    rw.remove(relu)
                    rewrites += 1
                    continue
                if activation is None and rw.consumers(producer) == [relu]:
                    rw.set_attr(producer, "activation", "relu")
                    rw.redirect(relu, producer)
                    rw.remove(relu)
                    rewrites += 1
                    continue
            elif kind in _RECTIFIED_KINDS:
                rw.redirect(relu, producer)
                rw.remove(relu)
                rewrites += 1
                continue
            # Relu-SepConv: fold into the *following* separable convolution.
            consumers = rw.consumers(relu)
            if len(consumers) == 1 and rw.kind(consumers[0]) == "sep_conv2d":
                sep = consumers[0]
                if not rw.attrs(sep)["pre_activation"]:
                    rw.set_attr(sep, "pre_activation", True)
                    rw.set_inputs(sep, [producer])
                    rw.remove(relu)
                    rewrites += 1
                elif rw.inputs(sep) == [relu]:
                    # pre-activation already applies ReLU: relu(relu(x)) == relu(x).
                    rw.set_inputs(sep, [producer])
                    rw.remove(relu)
                    rewrites += 1
        # A pre-activation over an already-rectified input is a no-op; dropping
        # it makes graphs built fused and graphs fused by this pass converge to
        # the same (slightly cheaper) form.
        for sep in rw.nodes_of_kind("sep_conv2d"):
            if rw.attrs(sep)["pre_activation"] and _is_rectified(rw, rw.inputs(sep)[0]):
                rw.set_attr(sep, "pre_activation", False)
                rewrites += 1
        if not rewrites:
            return graph, 0
        return rw.rebuild(), rewrites


@register_pass
class FuseEpiloguePass(GraphPass):
    """Fold standalone GELU nodes into the preceding projection's epilogue.

    The importer lowers transformer feed-forward stacks to
    ``matmul -> gelu`` chains (the bias Add already folds at import time, so
    the full ONNX ``MatMul + Add + Gelu`` pattern reduces here to one fused
    schedule unit); this pass sets the carrier's ``activation`` attribute the
    same way ``fuse-activation`` does for ReLU.  A GELU whose input is already
    GELU-fused is a *not* a no-op (GELU is not idempotent), so only the
    exclusive-consumer fold applies.
    """

    name = "fuse-epilogue"

    def run(self, graph: Graph) -> tuple[Graph, int]:
        rw = GraphRewriter(graph)
        rewrites = 0
        for gelu in rw.nodes_of_kind("gelu"):
            if gelu not in rw.configs:
                continue
            producer = rw.inputs(gelu)[0]
            if producer not in rw.configs:
                continue
            if rw.kind(producer) not in _ACTIVATION_CARRIERS:
                continue
            if rw.attrs(producer).get("activation") is None and rw.consumers(producer) == [gelu]:
                rw.set_attr(producer, "activation", "gelu")
                rw.redirect(gelu, producer)
                rw.remove(gelu)
                rewrites += 1
        if not rewrites:
            return graph, 0
        return rw.rebuild(), rewrites


@register_pass
class CommonSubexpressionPass(GraphPass):
    """Merge duplicate stateless operators within each block.

    Two operators are a common subexpression when they live in the same block
    and have the same kind, the same attributes and the same inputs (input
    order is ignored for the commutative ``Add``).  Weighted operators are
    excluded unless ``include_weighted=True`` — in this IR operators hold no
    tensor data, but convolutions with equal shapes still denote *different*
    learned filters in the network the graph models.
    """

    name = "cse"

    def __init__(self, include_weighted: bool = False):
        self.include_weighted = include_weighted

    def _mergeable(self, kind: str) -> bool:
        return self.include_weighted or kind in _STATELESS_KINDS

    def run(self, graph: Graph) -> tuple[Graph, int]:
        rw = GraphRewriter(graph)
        rewrites = 0
        seen: dict[tuple, str] = {}
        for name in list(rw.order):  # rw.order is topological for the snapshot
            if name not in rw.configs or name not in rw.block_of:
                continue
            kind = rw.kind(name)
            if kind == "placeholder" or not self._mergeable(kind):
                continue
            inputs = rw.inputs(name)
            if kind == "add":
                inputs = sorted(inputs)
            key = (
                rw.block_of[name],
                kind,
                json.dumps(rw.attrs(name), sort_keys=True, default=str),
                tuple(inputs),
            )
            representative = seen.get(key)
            if representative is None:
                seen[key] = name
                continue
            rw.redirect(name, representative)
            rw.remove(name)
            rewrites += 1
        if not rewrites:
            return graph, 0
        return rw.rebuild(), rewrites


@register_pass
class SharedWeightCSEPass(GraphPass):
    """Attention-block CSE: merge duplicate matmuls whose equality is provable.

    The plain ``cse`` pass refuses weighted operators — equal configuration
    does not imply equal weights.  Imported graphs carry more evidence: a
    projection matmul records the foreign initializer it reads as
    ``weight_id``, so two projections of the same input through the *same*
    initializer (a common pattern in multi-query attention exports, where the
    K/V projections are shared across heads) provably compute the same tensor.
    Batched (weightless) matmuls are pure functions of their inputs and merge
    like any stateless operator.
    """

    name = "cse-shared-weights"

    def run(self, graph: Graph) -> tuple[Graph, int]:
        rw = GraphRewriter(graph)
        rewrites = 0
        seen: dict[tuple, str] = {}
        for name in list(rw.order):
            if name not in rw.configs or name not in rw.block_of:
                continue
            if rw.kind(name) != "matmul":
                continue
            attrs = rw.attrs(name)
            weightless = attrs.get("out_features") is None
            if not weightless and not attrs.get("weight_id"):
                continue  # weighted with unknown weight identity: never merge
            key = (
                rw.block_of[name],
                json.dumps(attrs, sort_keys=True, default=str),
                tuple(rw.inputs(name)),
            )
            representative = seen.get(key)
            if representative is None:
                seen[key] = name
                continue
            rw.redirect(name, representative)
            rw.remove(name)
            rewrites += 1
        if not rewrites:
            return graph, 0
        return rw.rebuild(), rewrites


@register_pass
class SplitConcatSimplifyPass(GraphPass):
    """Cancel split/concat plumbing that reassembles or re-slices a tensor."""

    name = "simplify-split-concat"

    def run(self, graph: Graph) -> tuple[Graph, int]:
        rw = GraphRewriter(graph)
        rewrites = 0
        for concat in rw.nodes_of_kind("concat"):
            if concat not in rw.configs:
                continue
            inputs = rw.inputs(concat)
            if len(inputs) == 1:
                # concat of one tensor is the tensor itself.
                rw.redirect(concat, inputs[0])
                rw.remove(concat)
                rewrites += 1
                continue
            if self._is_complete_split(rw, inputs):
                source = rw.inputs(inputs[0])[0]
                rw.redirect(concat, source)
                rw.remove(concat)
                rewrites += 1
                rewrites += self._drop_orphans(rw, inputs)
        for split in rw.nodes_of_kind("split"):
            if split not in rw.configs:
                continue
            source = rw.inputs(split)[0]
            if source not in rw.configs or rw.kind(source) != "concat":
                continue
            branch = self._matching_concat_input(rw, split, source)
            if branch is not None:
                rw.redirect(split, branch)
                rw.remove(split)
                rewrites += 1
                rewrites += self._drop_orphans(rw, [source])
        if not rewrites:
            return graph, 0
        return rw.rebuild(), rewrites

    @staticmethod
    def _drop_orphans(rw: GraphRewriter, candidates: list[str]) -> int:
        """Remove nodes this rewrite just orphaned, cascading upstream.

        Must happen inside this pass: once the graph is rebuilt, a node with
        no consumers is indistinguishable from a legitimate graph output.
        """
        removed = 0
        worklist = list(candidates)
        while worklist:
            name = worklist.pop()
            if (
                name in rw.configs
                and rw.kind(name) != "placeholder"
                and name not in rw.outputs
                and not rw.consumers(name)
            ):
                producers = rw.inputs(name)
                rw.remove(name)
                removed += 1
                worklist.extend(producers)
        return removed

    @staticmethod
    def _is_complete_split(rw: GraphRewriter, inputs: list[str]) -> bool:
        """True when ``inputs`` are the in-order sections of one full split."""
        if any(i not in rw.configs or rw.kind(i) != "split" for i in inputs):
            return False
        if len(set(inputs)) != len(inputs):
            return False
        sources = {rw.inputs(i)[0] for i in inputs}
        if len(sources) != 1:
            return False
        sections = rw.attrs(inputs[0])["sections"]
        if any(rw.attrs(i)["sections"] != sections for i in inputs[1:]):
            return False
        indices = [rw.attrs(i)["index"] for i in inputs]
        return indices == list(range(len(sections)))

    @staticmethod
    def _matching_concat_input(
        rw: GraphRewriter, split: str, concat: str
    ) -> str | None:
        """The concat input that ``split`` slices back out exactly, if any."""
        sections = rw.attrs(split)["sections"]
        branches = rw.inputs(concat)
        if len(sections) != len(branches):
            return None
        channels = []
        for branch in branches:
            shape = rw.output_shape(branch)
            if shape is None or shape.channels is None:
                return None
            channels.append(shape.channels)
        if channels != list(sections):
            return None
        return branches[rw.attrs(split)["index"]]


@register_pass
class EliminateDeadPass(GraphPass):
    """Remove Identity pass-throughs and unconsumed non-output operators.

    Graph outputs are the nodes with no consumers *at pass entry*, so the
    dead-node sweep only fires for nodes orphaned by this pass's own identity
    removal (or by a subclass's extra rewrites) — passes that orphan nodes
    must clean them up before rebuilding, as ``simplify-split-concat`` does.
    """

    name = "eliminate-dead"

    def run(self, graph: Graph) -> tuple[Graph, int]:
        rw = GraphRewriter(graph)
        rewrites = 0
        for identity in rw.nodes_of_kind("identity"):
            source = rw.inputs(identity)[0]
            rw.redirect(identity, source)
            rw.remove(identity)
            rewrites += 1
        changed = True
        while changed:
            changed = False
            for name in list(rw.configs):
                if rw.kind(name) == "placeholder" or name in rw.outputs:
                    continue
                if not rw.consumers(name):
                    rw.remove(name)
                    rewrites += 1
                    changed = True
        if not rewrites:
            return graph, 0
        return rw.rebuild(), rewrites


@register_pass
class CanonicalizePass(GraphPass):
    """Normalise node order (and commutative input order) for stable fingerprints.

    After this pass, two structurally equal graphs — however they were built
    or rewritten — serialise to byte-identical JSON, and
    :func:`repro.ir.fingerprint.graph_fingerprint` equals the fingerprint of
    any other canonicalized copy.  The pass is idempotent, so it reports zero
    rewrites on the second application and never blocks fixed-point
    convergence.
    """

    name = "canonicalize"

    def run(self, graph: Graph) -> tuple[Graph, int]:
        rw = GraphRewriter(graph)
        rewrites = 0

        def producer_key(name: str):
            # Position-independent, so re-sorting is idempotent across runs.
            return (
                rw.kind(name),
                json.dumps(rw.attrs(name), sort_keys=True, default=str),
                name,
            )

        for add in rw.nodes_of_kind("add"):
            inputs = rw.inputs(add)
            ordered = sorted(inputs, key=producer_key)
            if ordered != inputs:
                rw.set_inputs(add, ordered)
                rewrites += 1
        intermediate = rw.rebuild() if rewrites else graph
        order = canonical_order(intermediate)
        if order != list(intermediate.nodes):
            rw = GraphRewriter(intermediate)
            rw.order = order
            intermediate = rw.rebuild()
            rewrites += 1
        if not rewrites:
            return graph, 0
        return intermediate, rewrites
