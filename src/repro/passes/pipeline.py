"""Default optimization pipeline and fingerprint-keyed result cache.

:func:`optimize_graph` is the one-call entry point the rest of the system
uses: the engine's pass stage (:func:`repro.engine.stages.apply_passes` — and
through it ``Engine(passes=...)``, the model zoo's
``load(..., optimize=True)`` and the serving registry's
``ScheduleRegistry(passes=True)``) funnels through it.  Results are memoised
per input-graph fingerprint, so repeated requests for the same structure
(every batch rung of a model, every warm serving start) pay for the rewrite
once.
"""

from __future__ import annotations

from ..ir.fingerprint import graph_fingerprint
from ..ir.graph import Graph
from ..obs.trace import NULL_TRACER
from .base import GraphPass, PassManager, PassResult
from . import rewrites as _rewrites  # noqa: F401  (registers the built-in passes)

__all__ = [
    "DEFAULT_PASSES",
    "default_pipeline",
    "optimize_graph",
    "clear_pass_cache",
]

#: Names of the default pipeline, in execution order.  Fusion first (it shrinks
#: the graph the most), then CSE (merged duplicates expose split/concat
#: cancellations), then structural simplification, then dead-code cleanup of
#: whatever the earlier passes orphaned, then canonicalization so the final
#: graph has a stable serialised form.
DEFAULT_PASSES = (
    "fuse-activation",
    "fuse-epilogue",
    "cse",
    "cse-shared-weights",
    "simplify-split-concat",
    "eliminate-dead",
    "canonicalize",
)


def default_pipeline(*, validate: bool = True, fixed_point: bool = True) -> PassManager:
    """The default :class:`PassManager` over :data:`DEFAULT_PASSES`."""
    return PassManager(list(DEFAULT_PASSES), validate=validate, fixed_point=fixed_point)


#: Memoised optimisation results keyed by (graph name, node names digest,
#: structural fingerprint, pipeline signature).  The node-name component keeps
#: two same-shaped graphs with different node names from sharing a result (the
#: rewritten graph reuses the input's names); the pipeline signature covers
#: pass *configuration*, not just pass names.
_PASS_CACHE: dict[tuple, PassResult] = {}


def clear_pass_cache() -> None:
    """Drop all memoised pipeline results (tests and benchmarks)."""
    _PASS_CACHE.clear()


def optimize_graph(
    graph: Graph,
    passes: PassManager | list[GraphPass | str] | None = None,
    *,
    cache: bool = True,
    tracer=None,
) -> PassResult:
    """Run a pass pipeline (default: :func:`default_pipeline`) on ``graph``.

    Returns the full :class:`~repro.passes.base.PassResult`; use
    ``optimize_graph(g).graph`` for just the rewritten graph.  With ``cache``
    (the default) results are memoised by graph fingerprint: callers must
    treat the returned graph as immutable, exactly like any built model.
    """
    if passes is None:
        manager = default_pipeline()
    elif isinstance(passes, PassManager):
        manager = passes
    else:
        manager = PassManager(list(passes))
    if tracer is None:
        tracer = NULL_TRACER
    if not cache:
        return manager.run(graph, tracer=tracer)
    key = (
        graph.name,
        hash(tuple(graph.nodes.keys())),
        graph_fingerprint(graph),
        manager.signature(),
    )
    result = _PASS_CACHE.get(key)
    if result is None:
        result = manager.run(graph, tracer=tracer)
        _PASS_CACHE[key] = result
    elif tracer:
        tracer.instant(
            "pass-cache-hit", "compile/passes", category="passes",
            args={"graph": graph.name},
        )
    return result
