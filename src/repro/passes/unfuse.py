"""Expand compound operators into their unfused "frontend" form.

The model zoo hand-fuses activations at construction time (``Conv2d`` carries
``activation``, ``SeparableConv2d`` carries ``pre_activation`` — the compound
schedule units of the paper's Table 2).  Graphs imported from a real frontend
arrive *unfused*: every activation is its own node.  :func:`unfuse_activations`
produces exactly that raw form, which is what the pass-ablation experiment
(``ios-bench ablation-passes``) optimises back down — and what the fusion-pass
tests round-trip through.
"""

from __future__ import annotations

from ..ir.graph import Graph
from .rewriter import GraphRewriter

__all__ = ["unfuse_activations"]


def unfuse_activations(graph: Graph) -> Graph:
    """Split every fused activation out into a standalone activation node.

    ``Conv2d``/``Linear``/``Matmul`` with ``activation="relu"`` (or
    ``"gelu"``) become the bare operator followed by a ``Relu`` (``Gelu``);
    ``SeparableConv2d`` with ``pre_activation=True`` becomes a ``Relu``
    followed by the bare separable convolution.  The result computes the same
    function with more (smaller) schedulable operators; the
    ``fuse-activation`` and ``fuse-epilogue`` passes invert the
    transformation.
    """
    rw = GraphRewriter(graph)
    for name in list(rw.order):
        if name not in rw.configs:
            continue
        kind = rw.kind(name)
        block = rw.block_of.get(name)
        if kind in ("conv2d", "linear", "matmul"):
            activation = rw.attrs(name).get("activation")
            if activation not in ("relu", "gelu"):
                continue
            rw.set_attr(name, "activation", None)
            act = f"{name}__act"
            # Consumers of the operator must now read the standalone activation.
            for consumer in rw.consumers(name):
                rw.set_inputs(
                    consumer,
                    [act if i == name else i for i in rw.inputs(consumer)],
                )
            if name in rw.outputs:
                rw.outputs.discard(name)
                rw.outputs.add(act)
            rw.insert(
                {"kind": activation, "name": act, "inputs": [name], "attrs": {}},
                block=block,
                after=name,
            )
        elif kind == "sep_conv2d" and rw.attrs(name).get("pre_activation"):
            rw.set_attr(name, "pre_activation", False)
            relu = f"{name}__pre"
            source = rw.inputs(name)[0]
            rw.insert(
                {"kind": "relu", "name": relu, "inputs": [source], "attrs": {}},
                block=block,
                after=source,
            )
            rw.set_inputs(name, [relu])
    return rw.rebuild()
