"""repro.passes — graph-rewriting optimization pipeline feeding the scheduler.

The missing compiler stage between the IR (:mod:`repro.ir`) and the IOS DP
search (:mod:`repro.core`): an ordered pipeline of semantics-preserving graph
rewrites run *before* placement.  Smaller post-rewrite graphs mean both lower
simulated latency (fewer kernels) and exponentially smaller DP subset
enumeration (fewer operators per block), so every experiment and every
serve-path compile gets faster.

* :mod:`repro.passes.base` — the :class:`GraphPass` protocol, the pass
  registry (:func:`register_pass`) and the :class:`PassManager` pipeline
  driver (fixed-point iteration, per-pass rewrite/time stats, re-validation
  after every pass);
* :mod:`repro.passes.rewrites` — the built-in suite: activation fusion, CSE,
  split–concat simplification, identity/dead-node elimination and
  canonicalization;
* :mod:`repro.passes.pipeline` — :func:`optimize_graph` /
  :func:`default_pipeline`, with results memoised per graph fingerprint;
* :mod:`repro.passes.rewriter` — the :class:`GraphRewriter` editing buffer
  custom passes build on;
* :mod:`repro.passes.unfuse` — :func:`unfuse_activations`, producing the raw
  "frontend" form of a model for ablations and round-trip tests.

Quick start::

    from repro.frontend import load
    from repro.passes import optimize_graph

    graph = load("nasnet_a")
    result = optimize_graph(graph)          # default pipeline, cached
    print(result.describe())                # per-pass rewrites + timings
    optimized = result.graph                # feed to IOSScheduler

Registering a custom pass::

    from repro.passes import GraphPass, PassManager, register_pass

    @register_pass
    class DropSoftmax(GraphPass):
        name = "drop-softmax"
        def run(self, graph):
            ...  # build a GraphRewriter, edit, rebuild
            return new_graph, num_rewrites

    PassManager(["fuse-activation", "drop-softmax"]).run(graph)
"""

from .base import (
    PASS_REGISTRY,
    GraphPass,
    PassError,
    PassManager,
    PassResult,
    PassStats,
    make_pass,
    register_pass,
)
from .pipeline import DEFAULT_PASSES, clear_pass_cache, default_pipeline, optimize_graph
from .rewriter import GraphRewriter
from .rewrites import (
    CanonicalizePass,
    CommonSubexpressionPass,
    EliminateDeadPass,
    FuseActivationPass,
    FuseEpiloguePass,
    SharedWeightCSEPass,
    SplitConcatSimplifyPass,
)
from .unfuse import unfuse_activations

__all__ = [
    "GraphPass",
    "PassError",
    "PassManager",
    "PassResult",
    "PassStats",
    "PASS_REGISTRY",
    "register_pass",
    "make_pass",
    "GraphRewriter",
    "FuseActivationPass",
    "FuseEpiloguePass",
    "CommonSubexpressionPass",
    "SharedWeightCSEPass",
    "SplitConcatSimplifyPass",
    "EliminateDeadPass",
    "CanonicalizePass",
    "DEFAULT_PASSES",
    "default_pipeline",
    "optimize_graph",
    "clear_pass_cache",
    "unfuse_activations",
]
