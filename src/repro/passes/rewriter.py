"""Mutable graph-editing buffer used by the rewrite passes.

:class:`~repro.ir.graph.Graph` objects are append-only (operators must arrive
in topological order) and shared between subsystems, so passes never edit them
in place.  Instead a :class:`GraphRewriter` snapshots a graph into plain
operator configs, lets a pass rewire/remove/insert/retag nodes freely, and
:meth:`GraphRewriter.rebuild` re-materialises a fresh, shape-bound, validated
graph via :func:`repro.ir.ops.operator_from_config`.

Graph *outputs* (nodes with no consumers at snapshot time) are tracked
explicitly: rewrites must keep every output producing the same value, so
:meth:`redirect` transfers output-ness and :meth:`remove` refuses to drop a
live output.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..ir.graph import Graph
from ..ir.ops import operator_from_config
from ..ir.tensor import TensorShape

__all__ = ["GraphRewriter"]


class GraphRewriter:
    """Editable snapshot of a graph for one pass invocation."""

    def __init__(self, graph: Graph):
        self.source = graph
        self.graph_name = graph.name
        self.configs: dict[str, dict[str, Any]] = {
            name: op.to_config() for name, op in graph.nodes.items()
        }
        #: Preferred node order for the rebuilt graph (rebuild topo-sorts, this
        #: list breaks ties so untouched regions keep their original order).
        self.order: list[str] = list(graph.nodes)
        self.block_names: list[str] = [b.name for b in graph.blocks]
        self.block_of: dict[str, str] = {
            node: block.name for block in graph.blocks for node in block.node_names
        }
        self.outputs: set[str] = set(graph.output_names())
        self.num_rewrites = 0

    # ------------------------------------------------------------------ queries
    def kind(self, name: str) -> str:
        return self.configs[name]["kind"]

    def attrs(self, name: str) -> dict[str, Any]:
        return self.configs[name]["attrs"]

    def inputs(self, name: str) -> list[str]:
        return self.configs[name]["inputs"]

    def output_shape(self, name: str) -> TensorShape | None:
        """Output shape of a node, when it already existed in the source graph."""
        op = self.source.nodes.get(name)
        return op.output_shape if op is not None else None

    def consumers(self, name: str) -> list[str]:
        return [
            other
            for other, config in self.configs.items()
            if name in config["inputs"]
        ]

    def nodes_of_kind(self, *kinds: str) -> list[str]:
        """Current nodes of the given kinds, in :attr:`order`."""
        wanted = set(kinds)
        return [n for n in self.order if n in self.configs and self.kind(n) in wanted]

    # ----------------------------------------------------------------- editing
    def set_attr(self, name: str, key: str, value: Any) -> None:
        self.configs[name]["attrs"][key] = value

    def set_inputs(self, name: str, new_inputs: Iterable[str]) -> None:
        self.configs[name]["inputs"] = list(new_inputs)

    def redirect(self, old: str, new: str) -> None:
        """Rewire every consumer of ``old`` to read from ``new`` instead.

        If ``old`` was a graph output, ``new`` becomes one: the value the graph
        produced through ``old`` is now produced through ``new``.
        """
        if old == new:
            raise ValueError(f"cannot redirect node {old!r} to itself")
        for config in self.configs.values():
            config["inputs"] = [new if i == old else i for i in config["inputs"]]
        if old in self.outputs:
            self.outputs.discard(old)
            self.outputs.add(new)

    def remove(self, name: str) -> None:
        """Remove a node that no longer has consumers and is not a live output."""
        if name in self.outputs:
            raise ValueError(f"cannot remove graph output {name!r}")
        consumers = self.consumers(name)
        if consumers:
            raise ValueError(
                f"cannot remove node {name!r}; still consumed by {consumers}"
            )
        del self.configs[name]
        self.block_of.pop(name, None)

    def insert(
        self,
        config: dict[str, Any],
        *,
        block: str | None,
        after: str | None = None,
    ) -> str:
        """Add a new node config; ``after`` positions it in the order hint."""
        name = config["name"]
        if name in self.configs:
            raise ValueError(f"duplicate node name {name!r}")
        self.configs[name] = config
        if block is not None:
            if block not in self.block_names:
                self.block_names.append(block)
            self.block_of[name] = block
        if after is not None and after in self.order:
            self.order.insert(self.order.index(after) + 1, name)
        else:
            self.order.append(name)
        return name

    # ---------------------------------------------------------------- rebuild
    def rebuild(self) -> Graph:
        """Materialise the edits as a fresh shape-bound graph.

        Nodes are added in a topological order that follows :attr:`order`
        wherever dependencies allow, so rebuilding an unedited snapshot
        reproduces the original node order exactly.
        """
        live = [n for n in self.order if n in self.configs]
        position = {name: idx for idx, name in enumerate(live)}
        indegree = {
            name: sum(1 for p in self.configs[name]["inputs"] if p in self.configs)
            for name in live
        }
        ready = sorted((n for n in live if indegree[n] == 0), key=position.__getitem__)
        graph = Graph(self.graph_name)
        blocks = {name: graph.add_block(name) for name in self.block_names}
        added = 0
        while ready:
            name = ready.pop(0)
            op = operator_from_config(self.configs[name])
            graph.add_node(op, blocks.get(self.block_of.get(name, "")))
            added += 1
            inserted = False
            for other in self.consumers(name):
                # One decrement per edge: a consumer may read ``name`` twice
                # (e.g. add(x, x) after CSE merged its two producers).
                indegree[other] -= self.configs[other]["inputs"].count(name)
                if indegree[other] == 0:
                    ready.append(other)
                    inserted = True
            if inserted:
                ready.sort(key=position.__getitem__)
        if added != len(live):
            raise ValueError(
                f"rewritten graph {self.graph_name!r} contains a cycle or "
                "references a removed node"
            )
        return graph
