"""Pass protocol, pass registry and the :class:`PassManager` pipeline driver.

A *pass* is a graph-to-graph rewrite: it takes a validated
:class:`~repro.ir.graph.Graph` and returns a (possibly new) graph plus the
number of rewrites it applied.  Passes never mutate their input graph — graph
objects are shared (model caches, registries), so every rewrite builds a fresh
graph via :class:`~repro.passes.rewriter.GraphRewriter`.

The :class:`PassManager` runs an ordered pipeline of passes, optionally
iterating the whole pipeline to a fixed point (a rewrite by one pass can
expose opportunities for an earlier one, e.g. split–concat elimination leaves
dead splits behind for dead-node elimination).  After every pass the result is
re-validated with :func:`repro.ir.validate.validate_graph`, so a buggy rewrite
fails loudly at the pass boundary instead of corrupting the scheduler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..ir.graph import Graph
from ..ir.validate import GraphValidationError, validate_graph
from ..obs.trace import NULL_TRACER, Tracer

__all__ = [
    "GraphPass",
    "PassError",
    "PassStats",
    "PassResult",
    "PassManager",
    "PASS_REGISTRY",
    "register_pass",
    "make_pass",
]


class PassError(RuntimeError):
    """Raised when a pass produces an invalid graph or fails to converge."""


class GraphPass:
    """Base class for graph rewrite passes.

    Subclasses set :attr:`name` and implement :meth:`run`, returning the
    rewritten graph and the number of rewrites applied.  A pass that applies
    zero rewrites should return the input graph unchanged (``graph, 0``) so
    the manager can detect the fixed point cheaply.
    """

    #: Stable identifier used by the pass registry, stats and CLI listings.
    name: str = "pass"

    def run(self, graph: Graph) -> tuple[Graph, int]:
        raise NotImplementedError

    def signature(self) -> tuple:
        """Cache identity of this pass *as configured*.

        The pipeline result cache keys on this, so two differently-configured
        instances of the same pass (e.g. ``CommonSubexpressionPass`` with and
        without ``include_weighted``) never share a cached result.  The
        default covers every instance attribute; override only if an
        attribute is expensive to repr or irrelevant to the rewrite.
        """
        return (
            self.name,
            tuple(sorted((k, repr(v)) for k, v in vars(self).items())),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r}>"


#: Registered pass factories, keyed by pass name (see :func:`register_pass`).
PASS_REGISTRY: dict[str, Callable[[], GraphPass]] = {}


def register_pass(cls: type[GraphPass]) -> type[GraphPass]:
    """Register a pass class so pipelines can name it (usable as a decorator).

    Third-party passes register the same way the built-ins do::

        @register_pass
        class MyPass(GraphPass):
            name = "my-pass"
            def run(self, graph): ...
    """
    if not cls.name or cls.name == GraphPass.name:
        raise ValueError(f"pass class {cls.__name__} must define a unique 'name'")
    existing = PASS_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate pass name {cls.name!r}")
    PASS_REGISTRY[cls.name] = cls
    return cls


def make_pass(name: str) -> GraphPass:
    """Instantiate a registered pass by name."""
    if name not in PASS_REGISTRY:
        raise KeyError(f"unknown pass {name!r}; registered passes: {sorted(PASS_REGISTRY)}")
    return PASS_REGISTRY[name]()


@dataclass
class PassStats:
    """Accumulated statistics for one pass across all pipeline iterations."""

    name: str
    runs: int = 0
    rewrites: int = 0
    elapsed_s: float = 0.0


@dataclass
class PassResult:
    """Outcome of running a :class:`PassManager` on one graph."""

    graph: Graph
    stats: list[PassStats] = field(default_factory=list)
    iterations: int = 0
    elapsed_s: float = 0.0

    @property
    def total_rewrites(self) -> int:
        return sum(s.rewrites for s in self.stats)

    def stats_by_name(self) -> dict[str, PassStats]:
        return {s.name: s for s in self.stats}

    def describe(self) -> str:
        """One line per pass: how often it ran, what it rewrote, how long."""
        lines = [
            f"pass pipeline: {self.total_rewrites} rewrites in "
            f"{self.iterations} iteration(s), {self.elapsed_s * 1e3:.1f} ms"
        ]
        for s in self.stats:
            lines.append(
                f"  {s.name:<24} runs={s.runs}  rewrites={s.rewrites}  "
                f"time={s.elapsed_s * 1e3:.1f} ms"
            )
        return "\n".join(lines)


class PassManager:
    """Ordered pipeline of rewrite passes with fixed-point iteration.

    Parameters
    ----------
    passes:
        Pass instances or registered pass names, in execution order.
    fixed_point:
        Re-run the whole pipeline until an iteration applies zero rewrites
        (bounded by ``max_iterations``).  With ``False`` the pipeline runs
        exactly once.
    max_iterations:
        Safety bound on fixed-point iteration; exceeding it raises
        :class:`PassError` (a pass pair is oscillating instead of converging).
    validate:
        Re-validate the graph after every pass that rewrote something.
    """

    def __init__(
        self,
        passes: Sequence[GraphPass | str],
        *,
        fixed_point: bool = True,
        max_iterations: int = 10,
        validate: bool = True,
    ):
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.passes: list[GraphPass] = [
            make_pass(p) if isinstance(p, str) else p for p in passes
        ]
        if not self.passes:
            raise ValueError("a PassManager needs at least one pass")
        self.fixed_point = fixed_point
        self.max_iterations = max_iterations
        self.validate = validate

    @property
    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def signature(self) -> tuple:
        """Cache identity of the whole pipeline: pass configs + driver flags."""
        return (
            tuple(p.signature() for p in self.passes),
            self.fixed_point,
            self.max_iterations,
            self.validate,
        )

    def run(self, graph: Graph, *, tracer: Tracer = NULL_TRACER) -> PassResult:
        """Run the pipeline on ``graph`` and return the rewritten graph + stats.

        With a truthy ``tracer`` every pipeline iteration becomes one span on
        the ``compile/passes`` track, with a nested span per pass run; the
        default :data:`~repro.obs.trace.NULL_TRACER` costs one truth test.
        """
        start = time.perf_counter()
        stats = {p.name: PassStats(name=p.name) for p in self.passes}
        current = graph
        iterations = 0
        while True:
            iterations += 1
            if iterations > self.max_iterations:
                raise PassError(
                    f"pass pipeline did not converge on graph {graph.name!r} "
                    f"within {self.max_iterations} iterations; pass order "
                    f"{list(self.pass_names)} is oscillating"
                )
            iteration_rewrites = 0
            iteration_start_ms = tracer.now_ms() if tracer else 0.0
            for pass_ in self.passes:
                span_start_ms = tracer.now_ms() if tracer else 0.0
                pass_start = time.perf_counter()
                rewritten, rewrites = pass_.run(current)
                stat = stats[pass_.name]
                stat.runs += 1
                stat.rewrites += rewrites
                stat.elapsed_s += time.perf_counter() - pass_start
                if tracer:
                    tracer.add_span(
                        pass_.name, "compile/passes", span_start_ms, tracer.now_ms(),
                        category="passes",
                        args={"graph": graph.name, "iteration": iterations,
                              "rewrites": rewrites},
                    )
                if rewrites:
                    if self.validate:
                        try:
                            validate_graph(rewritten)
                        except GraphValidationError as exc:
                            raise PassError(
                                f"pass {pass_.name!r} produced an invalid graph "
                                f"for {graph.name!r}: {exc}"
                            ) from exc
                    current = rewritten
                    iteration_rewrites += rewrites
            if tracer:
                tracer.add_span(
                    f"iteration {iterations}", "compile/passes",
                    iteration_start_ms, tracer.now_ms(), category="passes",
                    args={"graph": graph.name, "rewrites": iteration_rewrites},
                )
            if iteration_rewrites == 0 or not self.fixed_point:
                break
        return PassResult(
            graph=current,
            stats=[stats[name] for name in self.pass_names],
            iterations=iterations,
            elapsed_s=time.perf_counter() - start,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<PassManager {list(self.pass_names)}>"
