"""The one model-source API: ``load(source)``.

Historically the system had three ways to obtain a graph — ``build_model``
for zoo names, calling a zoo builder module directly, and (since the frontend
landed) the importers.  :func:`load` unifies them: it accepts

* a registered zoo model name (``"inception_v3"``),
* a filesystem path to a JSON model file (ONNX-subset, layer-config, or a
  graph serialised by :func:`repro.ir.save_graph`),
* an already-parsed dictionary in any of those formats, or
* a built :class:`~repro.ir.Graph` (returned as-is, re-batched if asked),

and always returns the same validated :class:`~repro.ir.Graph` the rest of
the stack (passes, engine, serving) consumes.  ``build_model`` is now a
deprecated shim over this function.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..ir.graph import Graph
from ..ir.serialization import graph_from_dict
from .layer_config import import_layer_config
from .onnx_bridge import FrontendError, import_onnx

__all__ = ["detect_format", "load"]


def detect_format(data: dict[str, Any]) -> str:
    """Classify a parsed model dictionary: onnx-subset, layer-config or ir-graph."""
    declared = data.get("ir") or data.get("format")
    if declared in ("onnx-subset", "layer-config", "ir-graph"):
        return str(declared)
    if "layers" in data:
        return "layer-config"
    nodes = data.get("nodes")
    if isinstance(nodes, list) and nodes:
        first = nodes[0]
        if isinstance(first, dict) and "op_type" in first:
            return "onnx-subset"
        if isinstance(first, dict) and "kind" in first:
            return "ir-graph"
    raise FrontendError(
        "cannot detect model format: expected an ONNX-subset dict (nodes with "
        "'op_type'), a layer-config dict ('layers'), or a serialised IR graph "
        "(nodes with 'kind')"
    )


def _import_dict(data: dict[str, Any], name: str | None) -> Graph:
    fmt = detect_format(data)
    if fmt == "onnx-subset":
        return import_onnx(data, name=name)
    if fmt == "layer-config":
        return import_layer_config(data, name=name)
    return graph_from_dict(data)


def _looks_like_path(source: str) -> bool:
    return (
        source.endswith(".json")
        or "/" in source
        or "\\" in source
        or Path(source).is_file()
    )


def load(
    source: str | Path | dict[str, Any] | Graph,
    batch_size: int | None = None,
    optimize: bool | None = None,
    name: str | None = None,
    **kwargs: Any,
) -> Graph:
    """Load a model from any supported source and return a validated graph.

    Parameters
    ----------
    source:
        Zoo model name, path to a JSON model description, parsed model
        dictionary, or an already-built graph.
    batch_size:
        Re-batch the result to this batch size.  For zoo names the builder
        receives it directly (default 1); for imported/serialised models the
        graph is cloned via :meth:`Graph.with_batch_size` when it differs
        from the declared batch.
    optimize:
        ``True`` runs the default pass pipeline on the result (exactly what
        ``Engine(passes=True)`` would do); ``None`` defers to the
        process-wide default of :func:`repro.models.set_default_optimize`.
    name:
        Override the graph name for imported sources.
    kwargs:
        Extra keyword arguments for zoo builders (ignored otherwise).
    """
    from ..models import common as zoo

    graph: Graph
    if isinstance(source, Graph):
        graph = source
    elif isinstance(source, dict):
        graph = _import_dict(source, name)
    elif isinstance(source, Path) or (isinstance(source, str) and _looks_like_path(str(source))):
        path = Path(source)
        if not path.is_file():
            raise FrontendError(f"model file {str(path)!r} does not exist")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise FrontendError(f"model file {str(path)!r} is not valid JSON: {exc}") from exc
        graph = _import_dict(data, name or path.stem)
    elif isinstance(source, str):
        graph = zoo.resolve_zoo_builder(source)(batch_size=batch_size or 1, **kwargs)
    else:
        raise TypeError(f"cannot load a model from {type(source).__name__}")

    if batch_size is not None and graph.input_shape.batch != batch_size:
        graph = graph.with_batch_size(batch_size)
    if optimize is None:
        optimize = zoo.default_optimize()
    if optimize:
        from ..engine.stages import apply_passes

        graph, _ = apply_passes(graph, True)
    return graph
