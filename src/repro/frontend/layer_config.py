"""Torchvision-style layer-config importer.

The format is a JSON dictionary describing a sequential stack of layers, the
way torchvision configuration tables describe VGG/AlexNet-style networks::

    {
      "format": "layer-config",
      "name": "tiny_vgg",
      "input": [1, 3, 32, 32],
      "layers": [
        {"type": "conv2d", "out_channels": 32, "kernel": 3, "activation": "relu"},
        {"type": "pool2d", "pool_type": "max", "kernel": 2},
        {"type": "flatten"},
        {"type": "linear", "out_features": 10}
      ]
    }

Every layer dictionary is translated to an operator config and materialised
through :func:`repro.ir.operator_from_config` — the operator registry is the
single source of truth for which ``type`` tags exist, so operators registered
at runtime with :func:`repro.ir.register_operator` work here unchanged, and a
typo'd type fails with the registry's known-kinds + nearest-name message.
"""

from __future__ import annotations

from typing import Any

from ..ir.graph import Graph
from ..ir.ops import Placeholder, operator_from_config
from ..ir.tensor import TensorShape
from ..ir.validate import validate_graph
from .onnx_bridge import FrontendError

__all__ = ["import_layer_config"]

#: Convenience aliases accepted in the ``type`` field on top of the registry
#: kinds themselves.
_TYPE_ALIASES = {
    "conv": "conv2d",
    "sepconv": "sep_conv2d",
    "pool": "pool2d",
    "maxpool": "pool2d",
    "avgpool": "pool2d",
    "globalpool": "global_avg_pool",
    "fc": "linear",
    "dense": "linear",
    "layernorm": "layer_norm",
}

_POOL_DEFAULTS = {"maxpool": "max", "avgpool": "avg"}


def import_layer_config(data: dict[str, Any], name: str | None = None) -> Graph:
    """Import a sequential layer-config dictionary into a validated IR graph."""
    dims = [int(d) for d in data.get("input", [])]
    if len(dims) not in (2, 4):
        raise FrontendError(
            f"layer-config 'input' must be 2-D or 4-D, got {dims or 'nothing'}"
        )
    layers = data.get("layers", [])
    if not layers:
        raise FrontendError("layer-config contains no layers")

    graph = Graph(str(name or data.get("name", "imported")))
    graph.add_node(Placeholder("input", TensorShape(*dims)))
    block = graph.add_block("layers")

    previous = "input"
    for index, layer in enumerate(layers):
        attrs = dict(layer)
        raw_type = str(attrs.pop("type", ""))
        if not raw_type:
            raise FrontendError(f"layer {index} is missing its 'type' field")
        kind = _TYPE_ALIASES.get(raw_type, raw_type)
        if raw_type in _POOL_DEFAULTS:
            attrs.setdefault("pool_type", _POOL_DEFAULTS[raw_type])
        node_name = str(attrs.pop("name", f"l{index}_{kind}"))
        config = {"kind": kind, "name": node_name, "inputs": [previous], "attrs": attrs}
        try:
            graph.add_node(operator_from_config(config), block)
        except (ValueError, KeyError) as exc:
            raise FrontendError(f"cannot import layer {index} ({raw_type}): {exc}") from exc
        previous = node_name

    validate_graph(graph)
    return graph
