"""ONNX-subset importer: per-op-kind bridges from foreign nodes to IR configs.

The format is a JSON dictionary::

    {
      "ir": "onnx-subset",
      "name": "transformer_block",
      "inputs": [{"name": "tokens", "shape": [64, 256]}],
      "initializers": [{"name": "wq", "shape": [256, 256]}, ...],
      "nodes": [
        {"name": "q", "op_type": "MatMul", "inputs": ["tokens", "wq"]},
        {"name": "scores", "op_type": "MatMul", "inputs": ["q", "kt"]},
        ...
      ],
      "blocks": [{"name": "attention", "nodes": ["q", "scores", ...]}]
    }

``inputs`` must name exactly one graph input (the IR allows one placeholder);
``initializers`` declare weight tensors by shape only — the scheduler never
needs values.  ``blocks`` is optional; without it every operator lands in a
single schedule block.

Each supported ``op_type`` has a *bridge function* in :data:`ONNX_BRIDGES`
that translates one foreign node into an operator config dictionary
(``{"kind", "name", "inputs", "attrs"}``).  The config is materialised
through :func:`repro.ir.operator_from_config` — resolution goes through the
operator registry only, so a third-party operator registered at runtime with
:func:`repro.ir.register_operator` imports exactly like a built-in.  A bridge
may instead return an existing IR node name to *alias* the foreign node away
(how inference no-ops like Dropout and initializer-bias Adds are folded).

Unknown ``op_type`` tags do not fail the import: the node degrades to an
:class:`repro.ir.Opaque` operator whose latency comes from the kernel profile
table and whose attribute digest keeps the schedule memo honest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..ir.graph import Graph
from ..ir.ops import OP_REGISTRY, operator_from_config
from ..ir.tensor import TensorShape
from ..ir.validate import validate_graph

__all__ = [
    "FrontendError",
    "ForeignNode",
    "ImportContext",
    "ONNX_BRIDGES",
    "register_onnx_bridge",
    "import_onnx",
]


class FrontendError(ValueError):
    """Raised when an external model description cannot be imported."""


@dataclass(frozen=True)
class ForeignNode:
    """One node of the foreign graph, as declared in the JSON."""

    name: str
    op_type: str
    inputs: tuple[str, ...]
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class ImportContext:
    """Import-time state a bridge can consult.

    ``initializers`` maps weight names to their declared dimensions;
    ``alias`` maps foreign value names to the IR node that now produces them
    (folded nodes alias to their surviving producer).
    """

    graph: Graph
    initializers: dict[str, tuple[int, ...]]
    alias: dict[str, str]

    def is_initializer(self, value: str) -> bool:
        return value in self.initializers

    def initializer_dims(self, value: str) -> tuple[int, ...]:
        return self.initializers[value]

    def resolve(self, value: str) -> str:
        """IR node name currently producing the foreign value ``value``."""
        if value not in self.alias:
            raise FrontendError(
                f"value {value!r} is not produced by any earlier node, graph "
                "input or initializer (nodes must be listed in topological order)"
            )
        return self.alias[value]

    def shape_of(self, value: str) -> TensorShape:
        shape = self.graph.nodes[self.resolve(value)].output_shape
        assert shape is not None
        return shape

    def activation_inputs(self, node: ForeignNode) -> list[str]:
        """The node's non-initializer inputs, resolved to IR node names."""
        return [self.resolve(v) for v in node.inputs if not self.is_initializer(v)]


#: Bridge registry: ONNX ``op_type`` -> bridge function.  A bridge returns an
#: operator config dict to materialise, or an IR node name (str) to alias the
#: foreign node's output to.
BridgeFn = Callable[[ForeignNode, ImportContext], "dict[str, Any] | str"]
ONNX_BRIDGES: dict[str, BridgeFn] = {}


def register_onnx_bridge(*op_types: str) -> Callable[[BridgeFn], BridgeFn]:
    """Register a bridge for one or more ONNX ``op_type`` tags."""

    def decorate(fn: BridgeFn) -> BridgeFn:
        for op_type in op_types:
            ONNX_BRIDGES[op_type] = fn
        return fn

    return decorate


def _config(node: ForeignNode, kind: str, inputs: Sequence[str], **attrs: Any) -> dict[str, Any]:
    return {"kind": kind, "name": node.name, "inputs": list(inputs), "attrs": attrs}


def _sole_activation(node: ForeignNode, ctx: ImportContext) -> str:
    acts = ctx.activation_inputs(node)
    if len(acts) != 1:
        raise FrontendError(
            f"node {node.name!r} ({node.op_type}) expects exactly one "
            f"non-initializer input, got {len(acts)}"
        )
    return acts[0]


# --------------------------------------------------------------------------- #
# Bridges                                                                      #
# --------------------------------------------------------------------------- #
@register_onnx_bridge("MatMul")
def _bridge_matmul(node: ForeignNode, ctx: ImportContext):
    if len(node.inputs) != 2:
        raise FrontendError(f"MatMul {node.name!r} expects two inputs")
    a, b = node.inputs
    if ctx.is_initializer(b):
        dims = ctx.initializer_dims(b)
        if len(dims) != 2:
            raise FrontendError(
                f"MatMul {node.name!r}: weight {b!r} must be 2-D, got {list(dims)}"
            )
        return _config(
            node, "matmul", [ctx.resolve(a)], out_features=dims[1], weight_id=b
        )
    if ctx.is_initializer(a):
        raise FrontendError(
            f"MatMul {node.name!r}: weight-first matmuls are not supported; "
            "put the activation operand first"
        )
    return _config(node, "matmul", [ctx.resolve(a), ctx.resolve(b)])


@register_onnx_bridge("Gemm")
def _bridge_gemm(node: ForeignNode, ctx: ImportContext):
    if len(node.inputs) < 2:
        raise FrontendError(f"Gemm {node.name!r} expects at least X and W inputs")
    x, w = node.inputs[0], node.inputs[1]
    if not ctx.is_initializer(w):
        raise FrontendError(f"Gemm {node.name!r}: second input {w!r} must be an initializer")
    dims = ctx.initializer_dims(w)
    if len(dims) != 2:
        raise FrontendError(f"Gemm {node.name!r}: weight {w!r} must be 2-D")
    trans_b = bool(node.attrs.get("transB", 0))
    out_features = dims[0] if trans_b else dims[1]
    # Bias (third input) is an initializer whose cost the projection already
    # prices (weight_count includes out_features bias terms).
    return _config(
        node, "matmul", [ctx.resolve(x)], out_features=out_features, weight_id=w
    )


@register_onnx_bridge("Conv")
def _bridge_conv(node: ForeignNode, ctx: ImportContext):
    if len(node.inputs) < 2 or not ctx.is_initializer(node.inputs[1]):
        raise FrontendError(f"Conv {node.name!r} expects a weight initializer as input 2")
    dims = ctx.initializer_dims(node.inputs[1])
    if len(dims) != 4:
        raise FrontendError(f"Conv {node.name!r}: weight must be 4-D (O, I/g, kh, kw)")
    kernel = node.attrs.get("kernel_shape", [dims[2], dims[3]])
    pads = node.attrs.get("pads", [0, 0, 0, 0])
    if len(pads) == 2:
        pads = [pads[0], pads[1], pads[0], pads[1]]
    if len(pads) != 4 or pads[0] != pads[2] or pads[1] != pads[3]:
        raise FrontendError(f"Conv {node.name!r}: only symmetric padding is supported")
    return _config(
        node,
        "conv2d",
        [ctx.resolve(node.inputs[0])],
        out_channels=dims[0],
        kernel=[int(k) for k in kernel],
        stride=[int(s) for s in node.attrs.get("strides", [1, 1])],
        padding=[int(pads[0]), int(pads[1])],
        groups=int(node.attrs.get("group", 1)),
        activation=None,
    )


@register_onnx_bridge("Add", "Sum")
def _bridge_add(node: ForeignNode, ctx: ImportContext):
    biases = [v for v in node.inputs if ctx.is_initializer(v)]
    acts = ctx.activation_inputs(node)
    if not biases:
        return _config(node, "add", acts)
    if len(biases) == 1 and len(acts) == 1:
        dims = ctx.initializer_dims(biases[0])
        producer = ctx.graph.nodes[acts[0]]
        if len(dims) == 1 and producer.kind in ("matmul", "linear", "conv2d"):
            # Bias epilogue: the projection's weight_count already includes
            # the bias vector, so the Add folds into its producer.
            return acts[0]
    raise FrontendError(
        f"Add {node.name!r}: unsupported operand mix (initializer inputs "
        "are only folded as 1-D biases of a preceding projection)"
    )


@register_onnx_bridge("Relu")
def _bridge_relu(node: ForeignNode, ctx: ImportContext):
    return _config(node, "relu", [_sole_activation(node, ctx)])


@register_onnx_bridge("Gelu")
def _bridge_gelu(node: ForeignNode, ctx: ImportContext):
    return _config(node, "gelu", [_sole_activation(node, ctx)])


@register_onnx_bridge("Softmax")
def _bridge_softmax(node: ForeignNode, ctx: ImportContext):
    return _config(node, "softmax", [_sole_activation(node, ctx)])


@register_onnx_bridge("LayerNormalization")
def _bridge_layer_norm(node: ForeignNode, ctx: ImportContext):
    # Scale/bias initializer inputs are dropped: LayerNorm.weight_count
    # prices the gain and bias vectors from the bound feature dimension.
    return _config(
        node,
        "layer_norm",
        [_sole_activation(node, ctx)],
        epsilon=float(node.attrs.get("epsilon", 1e-5)),
    )


@register_onnx_bridge("Transpose")
def _bridge_transpose(node: ForeignNode, ctx: ImportContext):
    x = _sole_activation(node, ctx)
    rank = ctx.shape_of(node.inputs[0]).rank
    perm = node.attrs.get("perm")
    swap_trailing = [1, 0] if rank == 2 else [0, 1, 3, 2]
    if perm is not None and list(perm) != swap_trailing:
        return _opaque_config(node, ctx)
    return _config(node, "transpose", [x])


@register_onnx_bridge("Reshape", "Flatten")
def _bridge_reshape(node: ForeignNode, ctx: ImportContext):
    x = _sole_activation(node, ctx)
    if node.op_type == "Flatten" or node.attrs.get("shape") is None:
        return _config(node, "flatten", [x])
    target = [int(d) for d in node.attrs["shape"]]
    if len(target) not in (2, 4):
        raise FrontendError(
            f"Reshape {node.name!r}: target must be 2-D or 4-D, got {target}"
        )
    # The leading dimension is the batch axis (commonly -1); the IR reshape
    # keeps it implicit so re-batching the graph stays valid.
    return _config(node, "reshape", [x], dims=target[1:])


@register_onnx_bridge("Concat")
def _bridge_concat(node: ForeignNode, ctx: ImportContext):
    if int(node.attrs.get("axis", 1)) != 1:
        return _opaque_config(node, ctx)
    return _config(node, "concat", ctx.activation_inputs(node))


@register_onnx_bridge("MaxPool", "AveragePool")
def _bridge_pool(node: ForeignNode, ctx: ImportContext):
    kernel = node.attrs.get("kernel_shape")
    if kernel is None:
        raise FrontendError(f"{node.op_type} {node.name!r} requires kernel_shape")
    pads = node.attrs.get("pads", [0, 0, 0, 0])
    if len(pads) == 2:
        pads = [pads[0], pads[1], pads[0], pads[1]]
    if len(pads) != 4 or pads[0] != pads[2] or pads[1] != pads[3]:
        raise FrontendError(f"{node.op_type} {node.name!r}: only symmetric padding")
    return _config(
        node,
        "pool2d",
        [_sole_activation(node, ctx)],
        pool_type="max" if node.op_type == "MaxPool" else "avg",
        kernel=[int(k) for k in kernel],
        stride=[int(s) for s in node.attrs.get("strides", kernel)],
        padding=[int(pads[0]), int(pads[1])],
        ceil_mode=bool(node.attrs.get("ceil_mode", 0)),
    )


@register_onnx_bridge("GlobalAveragePool")
def _bridge_global_pool(node: ForeignNode, ctx: ImportContext):
    return _config(node, "global_avg_pool", [_sole_activation(node, ctx)])


@register_onnx_bridge("Identity", "Dropout")
def _bridge_noop(node: ForeignNode, ctx: ImportContext):
    # Inference no-ops: alias the output straight to the producer.
    return _sole_activation(node, ctx)


# --------------------------------------------------------------------------- #
# Opaque degradation and generic registry dispatch                             #
# --------------------------------------------------------------------------- #
def _opaque_config(node: ForeignNode, ctx: ImportContext) -> dict[str, Any]:
    """Degrade a foreign node to an Opaque profiled operator.

    The declared ``shape`` attribute wins; otherwise the output is assumed
    shape-preserving over the first activation input.  The digest hashes the
    foreign attributes and initializer shapes so two opaque nodes that share
    an ``op_type`` but differ in configuration stay distinct to the schedule
    memo and the graph fingerprint.
    """
    acts = ctx.activation_inputs(node)
    if not acts:
        raise FrontendError(
            f"node {node.name!r} ({node.op_type}) has no activation inputs to anchor "
            "an opaque placeholder to"
        )
    declared = node.attrs.get("shape")
    if declared is not None:
        shape = TensorShape(*[int(d) for d in declared])
    else:
        shape = ctx.shape_of(node.inputs[0]) if node.inputs else ctx.shape_of(acts[0])
    weight_dims = [list(ctx.initializer_dims(v)) for v in node.inputs if ctx.is_initializer(v)]
    payload = json.dumps(
        {"op_type": node.op_type, "attrs": node.attrs, "weights": weight_dims},
        sort_keys=True,
        default=str,
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return _config(
        node,
        "opaque",
        acts,
        op_type=node.op_type,
        shape=str(shape),
        digest=digest,
        flops=node.attrs.get("flops"),
    )


def _dispatch(node: ForeignNode, ctx: ImportContext) -> dict[str, Any] | str:
    bridge = ONNX_BRIDGES.get(node.op_type)
    if bridge is not None:
        return bridge(node, ctx)
    if node.op_type in OP_REGISTRY:
        # A kind registered with repro.ir.register_operator (built-in or
        # third-party) can be named directly: attrs pass through verbatim.
        return _config(node, node.op_type, ctx.activation_inputs(node), **node.attrs)
    return _opaque_config(node, ctx)


# --------------------------------------------------------------------------- #
# Importer core                                                                #
# --------------------------------------------------------------------------- #
def _parse_foreign_nodes(data: dict[str, Any]) -> list[ForeignNode]:
    nodes = []
    for raw in data.get("nodes", []):
        try:
            name = raw["name"]
            op_type = raw["op_type"]
        except KeyError as exc:
            raise FrontendError(f"node {raw!r} is missing required key {exc}") from exc
        nodes.append(
            ForeignNode(
                name=str(name),
                op_type=str(op_type),
                inputs=tuple(str(v) for v in raw.get("inputs", [])),
                attrs=dict(raw.get("attrs", {})),
            )
        )
    if not nodes:
        raise FrontendError("model description contains no nodes")
    return nodes


def import_onnx(data: dict[str, Any], name: str | None = None) -> Graph:
    """Import an ONNX-subset JSON dictionary into a validated IR graph."""
    inputs = data.get("inputs", [])
    if len(inputs) != 1:
        raise FrontendError(
            f"the IR supports exactly one graph input, got {len(inputs)}"
        )
    graph = Graph(str(name or data.get("name", "imported")))
    input_name = str(inputs[0]["name"])
    input_dims = [int(d) for d in inputs[0]["shape"]]
    if len(input_dims) not in (2, 4):
        raise FrontendError(
            f"graph input {input_name!r} must be 2-D (rows, features) or 4-D "
            f"(NCHW), got {input_dims}"
        )
    from ..ir.ops import Placeholder

    graph.add_node(Placeholder(input_name, TensorShape(*input_dims)))

    ctx = ImportContext(
        graph=graph,
        initializers={
            str(init["name"]): tuple(int(d) for d in init["shape"])
            for init in data.get("initializers", [])
        },
        alias={input_name: input_name},
    )

    nodes = _parse_foreign_nodes(data)
    block_of = {}
    declared_blocks = data.get("blocks") or [{"name": "main", "nodes": None}]
    for spec in declared_blocks:
        # An explicitly empty member list means "no nodes" (the block is
        # pruned below); only a missing/None list defaults to every node.
        members = spec["nodes"] if spec.get("nodes") is not None else [n.name for n in nodes]
        for node_name in members:
            block_of[node_name] = spec["name"]
    blocks = {spec["name"]: graph.add_block(str(spec["name"])) for spec in declared_blocks}

    for node in nodes:
        result = _dispatch(node, ctx)
        if isinstance(result, str):
            ctx.alias[node.name] = result
            continue
        if node.name not in block_of:
            raise FrontendError(f"node {node.name!r} is not assigned to any block")
        try:
            op = operator_from_config(result)
            graph.add_node(op, blocks[block_of[node.name]])
        except (ValueError, KeyError) as exc:
            raise FrontendError(
                f"cannot import node {node.name!r} ({node.op_type}): {exc}"
            ) from exc
        ctx.alias[node.name] = node.name

    # Blocks declared but fully folded away would fail validation.
    graph.blocks[:] = [b for b in graph.blocks if b.node_names]
    validate_graph(graph)
    return graph
