"""repro.frontend — importers that turn external model descriptions into IR.

Until this package existed every graph the system compiled was hand-built by
the internal model zoo; the frontend closes the loop with the outside world.
Two on-disk formats are understood:

* an **ONNX-subset JSON** format — nodes with ONNX-style ``op_type`` tags,
  named graph inputs and initializer (weight) metadata — imported by
  :func:`import_onnx` through a per-op-kind *bridge* registry
  (:data:`ONNX_BRIDGES`, extensible via :func:`register_onnx_bridge`);
* a **layer-config** format — an ordered list of torchvision-style layer
  dictionaries — imported by :func:`import_layer_config`.

Both importers perform shape inference while building (every operator is
bound as it is added) and validate the result with
:func:`repro.ir.validate_graph` before returning, so an imported graph is
indistinguishable from a zoo-built one.  Foreign nodes with an ``op_type`` no
bridge understands degrade to :class:`repro.ir.Opaque` profiled nodes instead
of failing the import.

:func:`load` is the one model-source API the rest of the system goes
through: it accepts a zoo model name, a path to either JSON format, or an
already-parsed dictionary, and always returns the same validated
:class:`~repro.ir.Graph`.
"""

from .onnx_bridge import (
    ONNX_BRIDGES,
    FrontendError,
    ImportContext,
    ForeignNode,
    import_onnx,
    register_onnx_bridge,
)
from .layer_config import import_layer_config
from .loader import detect_format, load

__all__ = [
    "FrontendError",
    "ForeignNode",
    "ImportContext",
    "ONNX_BRIDGES",
    "register_onnx_bridge",
    "import_onnx",
    "import_layer_config",
    "detect_format",
    "load",
]
