"""repro — a reproduction of *IOS: Inter-Operator Scheduler for CNN Acceleration* (MLSys 2021).

The package is organised as:

* :mod:`repro.ir` — computation-graph IR (shape-annotated operators, blocks,
  canonical graph fingerprints);
* :mod:`repro.passes` — graph-rewriting optimization pipeline (activation
  fusion, CSE, dead-code elimination, canonicalization) run before scheduling;
* :mod:`repro.hardware` — simulated GPUs, kernel model, multi-stream contention;
* :mod:`repro.runtime` — execution engine, profiler, warp tracer, memory planner;
* :mod:`repro.models` — CNN model zoo (Inception V3, RandWire, NasNet-A, SqueezeNet, ...);
* :mod:`repro.core` — the IOS dynamic-programming scheduler and baselines;
* :mod:`repro.engine` — the staged compile pipeline (``Engine`` →
  ``CompiledModel``) every entry point funnels through: passes → DP search →
  lowering, with a fingerprint-keyed cache and serializable artifacts;
* :mod:`repro.frameworks` — simulated baseline frameworks (TF, XLA, TASO, TVM, TensorRT);
* :mod:`repro.experiments` — one harness per table/figure of the paper;
* :mod:`repro.serve` — batch-aware inference serving: persistent compiled-model
  registry, dynamic batcher, heterogeneous device fleets with pluggable
  routing, simulated worker pool, synthetic traffic;
* :mod:`repro.cluster` — multi-host serving: co-simulated hosts behind
  cluster routers, graph partitioning across memory-bound hosts, modeled
  inter-host link transfers;
* :mod:`repro.frontend` — model importers (ONNX-subset JSON, layer-config)
  and :func:`repro.frontend.load`, the one API every model source — zoo
  name, model file, parsed dict — goes through.

Quick start::

    from repro import Engine, load

    compiled = Engine("v100").compile(load("inception_v3", batch_size=1))
    print(compiled.latency_ms())
"""

from .ir import Graph, GraphBuilder, TensorShape
from .hardware import DeviceSpec, get_device, list_devices
from .models import BENCHMARK_MODELS, build_model, list_models
from .core import (
    IOSScheduler,
    ParallelizationStrategy,
    PruningStrategy,
    Schedule,
    SchedulerConfig,
    SimulatedCostModel,
    greedy_schedule,
    measure_schedule,
    normalize_variant,
    schedule_latency_ms,
    sequential_schedule,
)
from .engine import CompiledModel, Engine, get_engine
from .frontend import load

__version__ = "1.10.0"

__all__ = [
    "TensorShape",
    "Graph",
    "GraphBuilder",
    "DeviceSpec",
    "get_device",
    "list_devices",
    "build_model",
    "load",
    "list_models",
    "BENCHMARK_MODELS",
    "Schedule",
    "ParallelizationStrategy",
    "PruningStrategy",
    "SchedulerConfig",
    "SimulatedCostModel",
    "IOSScheduler",
    "sequential_schedule",
    "greedy_schedule",
    "measure_schedule",
    "schedule_latency_ms",
    "normalize_variant",
    "Engine",
    "CompiledModel",
    "get_engine",
    "optimize",
    "__version__",
]


def optimize(
    graph: Graph,
    device: DeviceSpec,
    variant: str = "ios-both",
    pruning: PruningStrategy | None = None,
) -> Schedule:
    """One-call convenience wrapper: compile ``graph`` and return its schedule.

    Delegates to the pooled :class:`repro.engine.Engine` for
    ``(device, variant, pruning)``, so repeated calls on the same structure
    reuse the compile cache.  Prefer ``Engine.compile`` directly when you also
    want the execution plan, the latency or the compile stats.

    Parameters
    ----------
    graph:
        The computation graph to schedule (see :func:`repro.frontend.load`).
    device:
        The simulated device to optimise for (see :func:`repro.hardware.get_device`).
    variant:
        ``"ios-both"`` (default), ``"ios-parallel"`` or ``"ios-merge"``.
    pruning:
        Optional ``(r, s)`` pruning strategy; defaults to the paper's r=3, s=8.
    """
    return get_engine(device, variant=variant, pruning=pruning).compile(graph).schedule
