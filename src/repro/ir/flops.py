"""FLOPs and memory accounting utilities.

These helpers power Figure 1 (the trend of average FLOPs per convolution and
number of convolutions across CNN generations), the per-stage GFLOPs /
utilisation annotations of Figure 2, and the roofline inputs of the hardware
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .graph import Block, Graph
from .ops import Conv2d, Operator, SeparableConv2d

__all__ = [
    "OperatorCost",
    "operator_cost",
    "graph_cost_breakdown",
    "block_flops",
    "ConvStatistics",
    "conv_statistics",
    "arithmetic_intensity",
]


@dataclass(frozen=True)
class OperatorCost:
    """FLOPs and memory traffic of a single operator."""

    name: str
    kind: str
    flops: int
    memory_bytes: int
    weight_bytes: int
    output_bytes: int

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of DRAM traffic (the roofline x-axis)."""
        if self.memory_bytes == 0:
            return 0.0
        return self.flops / self.memory_bytes


def operator_cost(op: Operator) -> OperatorCost:
    """Compute the :class:`OperatorCost` of a bound operator."""
    return OperatorCost(
        name=op.name,
        kind=op.kind,
        flops=op.flops(),
        memory_bytes=op.memory_bytes(),
        weight_bytes=op.weight_bytes(),
        output_bytes=op.output_bytes(),
    )


def graph_cost_breakdown(graph: Graph) -> list[OperatorCost]:
    """Per-operator cost of every schedulable operator in the graph."""
    return [operator_cost(op) for op in graph.operators()]


def block_flops(graph: Graph, block: Block) -> int:
    """Total FLOPs of the operators in one block."""
    return sum(graph.nodes[name].flops() for name in graph.schedulable_names(block))


def arithmetic_intensity(ops: Iterable[Operator]) -> float:
    """Aggregate arithmetic intensity (FLOPs / byte) of a set of operators."""
    flops = 0
    traffic = 0
    for op in ops:
        flops += op.flops()
        traffic += op.memory_bytes()
    if traffic == 0:
        return 0.0
    return flops / traffic


@dataclass(frozen=True)
class ConvStatistics:
    """Convolution statistics of a network (Figure 1 of the paper)."""

    network: str
    num_convolutions: int
    total_conv_flops: int
    average_flops_per_conv: float
    total_flops: int

    @property
    def average_mflops_per_conv(self) -> float:
        return self.average_flops_per_conv / 1e6


def conv_statistics(graph: Graph) -> ConvStatistics:
    """Count convolutions and average FLOPs/convolution for a network.

    The paper reports (Figure 1) that the average MFLOPs per convolution
    dropped from roughly 2330 (VGG) to 82 (NasNet) while the number of
    convolutions grew, which is the motivation for inter-operator parallelism.
    """
    convs: Sequence[Operator] = graph.conv_operators()
    conv_flops = sum(op.flops() for op in convs)
    num = len(convs)
    avg = conv_flops / num if num else 0.0
    return ConvStatistics(
        network=graph.name,
        num_convolutions=num,
        total_conv_flops=conv_flops,
        average_flops_per_conv=avg,
        total_flops=graph.total_flops(),
    )


def _is_conv(op: Operator) -> bool:
    return isinstance(op, (Conv2d, SeparableConv2d))
