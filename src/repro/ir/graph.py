"""Computation graph container and builder.

A :class:`Graph` is a directed acyclic graph of :class:`~repro.ir.ops.Operator`
nodes.  Edges are implied by each operator's ``inputs`` list (an edge ``u -> v``
exists iff ``u`` appears in ``v.inputs``).

Graphs are *block structured*: modern CNNs stack blocks (Inception blocks,
NasNet cells, fire modules, ...), and — as described in Section 4.2 of the
paper — IOS optimises each block independently, which keeps ``n`` (operators
per block) and ``d`` (block width) small.  Every operator belongs to exactly
one :class:`Block`; blocks execute in their definition order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from .ops import (
    Add,
    Concat,
    Conv2d,
    Flatten,
    Gelu,
    GlobalAvgPool,
    Identity,
    LayerNorm,
    Linear,
    Matmul,
    Operator,
    Placeholder,
    Pool2d,
    Relu,
    Reshape,
    SeparableConv2d,
    Softmax,
    Split,
    Transpose,
)
from .tensor import TensorShape

__all__ = ["Block", "Graph", "GraphBuilder"]


@dataclass
class Block:
    """A named, ordered group of operators optimised as one scheduling unit."""

    name: str
    node_names: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.node_names)

    def __iter__(self) -> Iterator[str]:
        return iter(self.node_names)

    def __contains__(self, name: str) -> bool:
        return name in self.node_names


class Graph:
    """A block-structured CNN computation graph.

    Use :class:`GraphBuilder` to construct graphs; the raw constructor is used
    by deserialisation and graph-rewriting code that already has bound
    operators.
    """

    def __init__(self, name: str):
        self.name = name
        self.nodes: dict[str, Operator] = {}
        self.blocks: list[Block] = []
        self._consumers: dict[str, list[str]] = {}
        # Cached input shape: ``input_shape``/``batch_size`` sit on the cost
        # model's per-measurement path, where scanning every node for the
        # placeholder dominated profiles.  Invalidated when a placeholder is
        # added (the only mutation that can change it).
        self._input_shape_cache: TensorShape | None = None
        # Cached full topological order; every subset order is its restriction
        # (see :meth:`topological_order`).  Invalidated on ``add_node``.
        self._topo_cache: list[str] | None = None
        # Cached structural fingerprint (see :meth:`fingerprint`); invalidated
        # on ``add_node``.
        self._fingerprint_cache: str | None = None

    # ---------------------------------------------------------------- mutation
    def add_node(self, op: Operator, block: Block | None = None) -> Operator:
        """Add a bound operator to the graph (and optionally to a block)."""
        if op.name in self.nodes:
            raise ValueError(f"duplicate node name {op.name!r} in graph {self.name!r}")
        for parent in op.inputs:
            if parent not in self.nodes:
                raise ValueError(
                    f"node {op.name!r} references unknown input {parent!r}; "
                    "operators must be added in topological order"
                )
        if op.output_shape is None and not isinstance(op, Placeholder):
            op.bind([self.nodes[p].output_shape for p in op.inputs])  # type: ignore[list-item]
        self.nodes[op.name] = op
        if isinstance(op, Placeholder):
            self._input_shape_cache = None
        self._topo_cache = None
        self._fingerprint_cache = None
        self._consumers.setdefault(op.name, [])
        for parent in op.inputs:
            self._consumers[parent].append(op.name)
        if block is not None:
            block.node_names.append(op.name)
        return op

    def add_block(self, name: str) -> Block:
        block = Block(name)
        self.blocks.append(block)
        return block

    def invalidate_caches(self) -> None:
        """Drop every derived cache (topological order, fingerprint, input shape).

        ``add_node`` invalidates these automatically; call this after any
        *in-place* mutation of existing operators (rewired ``inputs``,
        changed attributes) so stale derived state can never be observed.
        """
        self._input_shape_cache = None
        self._topo_cache = None
        self._fingerprint_cache = None

    # ----------------------------------------------------------------- queries
    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def __getitem__(self, name: str) -> Operator:
        return self.nodes[name]

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def placeholders(self) -> list[Placeholder]:
        return [op for op in self.nodes.values() if isinstance(op, Placeholder)]

    @property
    def input_shape(self) -> TensorShape:
        """Shape of the (single) graph input."""
        cached = self._input_shape_cache
        if cached is not None:
            return cached
        phs = self.placeholders
        if len(phs) != 1:
            raise ValueError(f"graph {self.name!r} has {len(phs)} placeholders, expected 1")
        assert phs[0].output_shape is not None
        self._input_shape_cache = phs[0].output_shape
        return phs[0].output_shape

    @property
    def batch_size(self) -> int:
        return self.input_shape.batch

    def fingerprint(self) -> str:
        """Cached structural fingerprint of this graph.

        The canonical content identity from
        :func:`repro.ir.fingerprint.graph_fingerprint`, computed once per
        graph instance and invalidated on mutation.  Anything that caches
        measurements or compile results *across* graph instances must key on
        this (not on the graph name): two graphs can share a name and even
        operator names while computing different things.
        """
        if self._fingerprint_cache is None:
            from .fingerprint import graph_fingerprint

            self._fingerprint_cache = graph_fingerprint(self)
        return self._fingerprint_cache

    def predecessors(self, name: str) -> tuple[str, ...]:
        return self.nodes[name].inputs

    def successors(self, name: str) -> tuple[str, ...]:
        return tuple(self._consumers.get(name, ()))

    def output_names(self) -> list[str]:
        """Names of nodes whose output is not consumed by any other node."""
        return [n for n in self.nodes if not self._consumers.get(n)]

    def operators(self, include_placeholders: bool = False) -> list[Operator]:
        """All operators, optionally excluding graph inputs."""
        ops = list(self.nodes.values())
        if include_placeholders:
            return ops
        return [op for op in ops if not isinstance(op, Placeholder)]

    def schedulable_names(self, block: Block | None = None) -> list[str]:
        """Names of operators that the scheduler treats as schedule units.

        Placeholders are never scheduled.  If ``block`` is given, only that
        block's operators are returned (in insertion order).
        """
        names: Iterable[str] = block.node_names if block is not None else self.nodes.keys()
        return [n for n in names if not isinstance(self.nodes[n], Placeholder)]

    def block_of(self, name: str) -> Block | None:
        for block in self.blocks:
            if name in block.node_names:
                return block
        return None

    # ------------------------------------------------------------ graph algos
    def topological_order(self, subset: Sequence[str] | None = None) -> list[str]:
        """Topological order of the whole graph or of an induced subgraph.

        The full order is a Kahn sort, computed once and cached.  A subset
        order is the restriction of the full order to the subset — so every
        subset sees the *same* relative ordering of its members, no matter
        which other operators accompany them.  The scheduler relies on this
        consistency: the operator order a stage is priced with during the
        search is exactly the order the lowered stage executes with.
        """
        order = self._topo_cache
        if order is None:
            names = list(self.nodes.keys())
            indegree = {n: len(self.nodes[n].inputs) for n in names}
            ready = [n for n in names if indegree[n] == 0]
            order = []
            while ready:
                node = ready.pop(0)
                order.append(node)
                for succ in self.successors(node):
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        ready.append(succ)
            if len(order) != len(names):
                raise ValueError(f"graph {self.name!r} contains a cycle")
            self._topo_cache = order
        if subset is None:
            return list(order)
        name_set = set(subset)
        return [n for n in order if n in name_set]

    def induced_edges(self, subset: Sequence[str]) -> list[tuple[str, str]]:
        """Edges of the subgraph induced by ``subset`` (direct edges only)."""
        name_set = set(subset)
        edges = []
        for v in subset:
            for u in self.nodes[v].inputs:
                if u in name_set:
                    edges.append((u, v))
        return edges

    def edges(self) -> list[tuple[str, str]]:
        """All edges of the graph as (producer, consumer) pairs."""
        result = []
        for v, op in self.nodes.items():
            for u in op.inputs:
                result.append((u, v))
        return result

    # ---------------------------------------------------------------- metrics
    def total_flops(self) -> int:
        return sum(op.flops() for op in self.operators())

    def total_params(self) -> int:
        return sum(op.weight_count() for op in self.operators())

    def total_weight_bytes(self) -> int:
        return sum(op.weight_bytes() for op in self.operators())

    def conv_operators(self) -> list[Operator]:
        """All convolution-like operators (Conv2d and SeparableConv2d)."""
        return [op for op in self.operators() if isinstance(op, (Conv2d, SeparableConv2d))]

    def count_operators(self, predicate: Callable[[Operator], bool] | None = None) -> int:
        ops = self.operators()
        if predicate is None:
            return len(ops)
        return sum(1 for op in ops if predicate(op))

    # ------------------------------------------------------------- re-batching
    def with_batch_size(self, batch: int) -> "Graph":
        """Clone this graph with a different batch size.

        All operator attributes are preserved; shapes are re-inferred.  Used by
        the batch-size specialisation experiments (Table 3, Figure 11).
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        clone = Graph(self.name)
        block_map = {id(b): clone.add_block(b.name) for b in self.blocks}
        for name, op in self.nodes.items():
            config = op.to_config()
            if isinstance(op, Placeholder):
                assert op.output_shape is not None
                new_op: Operator = Placeholder(name, op.output_shape.with_batch(batch))
            else:
                from .ops import operator_from_config

                new_op = operator_from_config(config)
            src_block = self.block_of(name)
            clone.add_node(new_op, block_map[id(src_block)] if src_block is not None else None)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Graph {self.name!r}: {len(self.operators())} operators, "
            f"{len(self.blocks)} blocks, input {self.input_shape}>"
        )


class GraphBuilder:
    """Fluent builder for :class:`Graph` objects.

    Each ``conv2d`` / ``pool2d`` / ... call adds one operator and returns its
    node name, which is then passed as the input of downstream operators::

        b = GraphBuilder("toy", TensorShape(1, 384, 15, 15))
        x = b.input_name
        a = b.conv2d("a", x, out_channels=384, kernel=3)
        c = b.concat("cat", [a, ...])
        graph = b.build()

    Blocks are opened with :meth:`block`; operators created outside any explicit
    block are collected into automatically named blocks (``stem``, ``head`` ...).
    """

    def __init__(self, name: str, input_shape: TensorShape, input_name: str = "input"):
        self.graph = Graph(name)
        self._current_block: Block | None = None
        self._implicit_block: Block | None = None
        self._implicit_counter = 0
        self.input_name = input_name
        self.graph.add_node(Placeholder(input_name, input_shape))

    # -------------------------------------------------------------- block mgmt
    def block(self, name: str) -> "_BlockContext":
        """Open a named block; usable as a context manager."""
        return _BlockContext(self, name)

    def _begin_block(self, name: str) -> Block:
        if self._current_block is not None:
            raise RuntimeError(f"cannot nest block {name!r} inside {self._current_block.name!r}")
        self._implicit_block = None
        self._current_block = self.graph.add_block(name)
        return self._current_block

    def _end_block(self) -> None:
        self._current_block = None

    def _target_block(self) -> Block:
        if self._current_block is not None:
            return self._current_block
        if self._implicit_block is None:
            self._implicit_counter += 1
            self._implicit_block = self.graph.add_block(f"auto_block_{self._implicit_counter}")
        return self._implicit_block

    # ----------------------------------------------------------- op factories
    def _add(self, op: Operator) -> str:
        self.graph.add_node(op, self._target_block())
        return op.name

    def conv2d(
        self,
        name: str,
        x: str,
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] | str = "same",
        groups: int = 1,
        activation: str | None = "relu",
    ) -> str:
        return self._add(
            Conv2d(name, [x], out_channels, kernel, stride, padding, groups, activation)
        )

    def sep_conv2d(
        self,
        name: str,
        x: str,
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] | str = "same",
        pre_activation: bool = True,
    ) -> str:
        return self._add(
            SeparableConv2d(name, [x], out_channels, kernel, stride, padding, pre_activation)
        )

    def pool2d(
        self,
        name: str,
        x: str,
        pool_type: str,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] | str = 0,
        ceil_mode: bool = False,
    ) -> str:
        return self._add(Pool2d(name, [x], pool_type, kernel, stride, padding, ceil_mode))

    def max_pool(self, name, x, kernel, stride=None, padding=0):
        return self.pool2d(name, x, "max", kernel, stride, padding)

    def avg_pool(self, name, x, kernel, stride=None, padding=0):
        return self.pool2d(name, x, "avg", kernel, stride, padding)

    def global_avg_pool(self, name: str, x: str) -> str:
        return self._add(GlobalAvgPool(name, [x]))

    def relu(self, name: str, x: str) -> str:
        return self._add(Relu(name, [x]))

    def identity(self, name: str, x: str) -> str:
        return self._add(Identity(name, [x]))

    def add(self, name: str, xs: Sequence[str]) -> str:
        return self._add(Add(name, list(xs)))

    def concat(self, name: str, xs: Sequence[str]) -> str:
        return self._add(Concat(name, list(xs)))

    def split(self, name: str, x: str, sections: Sequence[int], index: int) -> str:
        return self._add(Split(name, [x], sections, index))

    def flatten(self, name: str, x: str) -> str:
        return self._add(Flatten(name, [x]))

    def linear(self, name: str, x: str, out_features: int, activation: str | None = None) -> str:
        return self._add(Linear(name, [x], out_features, activation))

    def matmul(
        self,
        name: str,
        x: str | Sequence[str],
        out_features: int | None = None,
        activation: str | None = None,
    ) -> str:
        """Weighted projection (``x, out_features``) or, when ``x`` is a pair
        of node names and ``out_features`` is omitted, a weightless batched
        matmul of two activation matrices."""
        inputs = [x] if isinstance(x, str) else list(x)
        return self._add(Matmul(name, inputs, out_features, activation))

    def layer_norm(self, name: str, x: str, epsilon: float = 1e-5) -> str:
        return self._add(LayerNorm(name, [x], epsilon))

    def gelu(self, name: str, x: str) -> str:
        return self._add(Gelu(name, [x]))

    def transpose(self, name: str, x: str) -> str:
        return self._add(Transpose(name, [x]))

    def reshape(self, name: str, x: str, dims: Sequence[int]) -> str:
        return self._add(Reshape(name, [x], dims))

    def softmax(self, name: str, x: str) -> str:
        return self._add(Softmax(name, [x]))

    # ---------------------------------------------------------------- finalise
    def build(self) -> Graph:
        """Validate the constructed graph and return it."""
        from .validate import validate_graph

        validate_graph(self.graph)
        return self.graph


class _BlockContext:
    """Context manager returned by :meth:`GraphBuilder.block`."""

    def __init__(self, builder: GraphBuilder, name: str):
        self.builder = builder
        self.name = name
        self.block: Block | None = None

    def __enter__(self) -> Block:
        self.block = self.builder._begin_block(self.name)
        return self.block

    def __exit__(self, exc_type, exc, tb) -> None:
        self.builder._end_block()
