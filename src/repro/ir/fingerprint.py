"""Canonical structural fingerprints of computation graphs.

A fingerprint is a short stable hash of a graph's *structure*: operator kinds,
attributes, wiring, block boundaries and shapes — everything scheduling
depends on — but **not** node names or insertion order.  Two graphs that are
isomorphic up to operator renaming and topologically-equivalent node order
fingerprint identically; any structural difference (an extra operator, a
different batch size, a rewired edge, a moved block boundary) changes the
fingerprint.

Fingerprints give the rest of the system a cheap identity for "this exact
computation":

* the pass pipeline (:mod:`repro.passes.pipeline`) memoises optimisation
  results per input fingerprint;
* the schedule registry (:mod:`repro.serve.registry`) embeds the fingerprint
  in persisted keys, so schedules searched for a rewritten graph can never be
  served for the raw one (or vice versa);
* the canonicalization pass reorders nodes into :func:`canonical_order`,
  making serialised graphs byte-stable across construction orders.
"""

from __future__ import annotations

import hashlib
import json

from .graph import Graph

__all__ = ["canonical_order", "graph_fingerprint", "FINGERPRINT_LENGTH"]

#: Hex digits kept from the SHA-256 digest (64 bits — plenty for a registry).
FINGERPRINT_LENGTH = 16


def canonical_order(graph: Graph) -> list[str]:
    """A deterministic topological order independent of insertion order.

    Kahn's algorithm where the ready set is kept sorted by a structural key
    (block position, kind, serialised attributes, canonical indices of the
    already-ordered inputs) with the node name as the final tie-break.  The
    name only decides between nodes that are structurally interchangeable, so
    renaming nodes cannot change which *structure* occupies each position.
    """
    block_position = {
        name: idx for idx, block in enumerate(graph.blocks) for name in block.node_names
    }
    position: dict[str, int] = {}

    def sort_key(name: str):
        op = graph.nodes[name]
        # Inputs outside the graph (tolerated below) sort as -1.
        inputs = tuple(position.get(p, -1) for p in op.inputs)
        attrs = json.dumps(op.attrs(), sort_keys=True, default=str)
        return (block_position.get(name, -1), op.kind, attrs, inputs, name)

    # Successors derived from ``inputs`` (not the graph's consumer cache) so
    # indegrees and decrements always agree, edge for edge.
    successors: dict[str, list[str]] = {name: [] for name in graph.nodes}
    remaining = {}
    for name, op in graph.nodes.items():
        in_graph = [p for p in op.inputs if p in graph.nodes]
        remaining[name] = len(in_graph)
        for p in in_graph:
            successors[p].append(name)
    ready = [name for name, degree in remaining.items() if degree == 0]
    order: list[str] = []
    while ready:
        ready.sort(key=sort_key)
        name = ready.pop(0)
        position[name] = len(order)
        order.append(name)
        for succ in successors[name]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph.nodes):
        raise ValueError(f"graph {graph.name!r} contains a cycle")
    return order


def graph_fingerprint(graph: Graph, length: int = FINGERPRINT_LENGTH) -> str:
    """Hex fingerprint of the graph's canonical structural form.

    The graph name is deliberately excluded (callers key on it separately);
    node names only appear as canonical indices, so a renamed but otherwise
    identical graph keeps its fingerprint.
    """
    order = canonical_order(graph)
    position = {name: idx for idx, name in enumerate(order)}
    block_position = {
        name: idx for idx, block in enumerate(graph.blocks) for name in block.node_names
    }
    entries = []
    for name in order:
        op = graph.nodes[name]
        entries.append(
            [
                block_position.get(name, -1),
                op.kind,
                json.dumps(op.attrs(), sort_keys=True, default=str),
                [position.get(p, -1) for p in op.inputs],
                str(op.output_shape),
            ]
        )
    payload = json.dumps(entries, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return digest[:length]
