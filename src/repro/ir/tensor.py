"""Tensor shape abstractions for the computation-graph IR.

IOS never inspects tensor *values*: the scheduler only needs shapes to compute
FLOPs, memory traffic and kernel launch geometry.  This module therefore only
models shapes (and dtype sizes), not data.

Shapes follow the NCHW convention used throughout the paper:

* 4-D feature maps: ``(batch, channels, height, width)``
* 2-D matrices (for ``Matmul`` / fully-connected layers): ``(batch, features)``
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["TensorShape", "FLOAT32_BYTES", "conv2d_output_hw", "pool2d_output_hw"]

#: Size in bytes of a single-precision float. All experiments in the paper use FP32.
FLOAT32_BYTES = 4


@dataclass(frozen=True, order=True)
class TensorShape:
    """An immutable tensor shape.

    ``height`` and ``width`` are ``None`` for 2-D (matrix) tensors.  Shapes are
    hashable so they can be used as cache keys by the cost model.
    """

    batch: int
    channels: int
    height: int | None = None
    width: int | None = None

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")
        if self.channels <= 0:
            raise ValueError(f"channels must be positive, got {self.channels}")
        if (self.height is None) != (self.width is None):
            raise ValueError(
                "height and width must both be set (4-D) or both be None (2-D); "
                f"got height={self.height}, width={self.width}"
            )
        if self.height is not None and (self.height <= 0 or self.width <= 0):
            raise ValueError(
                f"spatial dims must be positive, got {self.height}x{self.width}"
            )

    # ------------------------------------------------------------------ basics
    @property
    def is_spatial(self) -> bool:
        """Whether this is a 4-D NCHW feature map."""
        return self.height is not None

    @property
    def rank(self) -> int:
        return 4 if self.is_spatial else 2

    def dims(self) -> tuple[int, ...]:
        """Return the shape as a plain tuple (NCHW or NC)."""
        if self.is_spatial:
            return (self.batch, self.channels, self.height, self.width)
        return (self.batch, self.channels)

    def __iter__(self) -> Iterator[int]:
        return iter(self.dims())

    def numel(self) -> int:
        """Total number of elements."""
        return math.prod(self.dims())

    def bytes(self, dtype_bytes: int = FLOAT32_BYTES) -> int:
        """Total size in bytes assuming a dense layout."""
        return self.numel() * dtype_bytes

    # -------------------------------------------------------------- transforms
    def with_batch(self, batch: int) -> "TensorShape":
        """Return the same shape with a different batch size."""
        return TensorShape(batch, self.channels, self.height, self.width)

    def with_channels(self, channels: int) -> "TensorShape":
        """Return the same shape with a different channel count."""
        return TensorShape(self.batch, channels, self.height, self.width)

    def with_spatial(self, height: int, width: int) -> "TensorShape":
        """Return the same shape with different spatial dimensions."""
        return TensorShape(self.batch, self.channels, height, width)

    def flattened(self) -> "TensorShape":
        """Collapse channels/height/width into a single feature dimension."""
        if not self.is_spatial:
            return self
        return TensorShape(self.batch, self.channels * self.height * self.width)

    # ------------------------------------------------------------------ pretty
    def __str__(self) -> str:
        if self.is_spatial:
            return f"{self.batch}x{self.channels}x{self.height}x{self.width}"
        return f"{self.batch}x{self.channels}"

    @classmethod
    def parse(cls, text: str) -> "TensorShape":
        """Parse a shape from its ``str()`` form, e.g. ``"1x64x56x56"``."""
        parts = [int(p) for p in text.lower().split("x")]
        if len(parts) == 4:
            return cls(*parts)
        if len(parts) == 2:
            return cls(parts[0], parts[1])
        raise ValueError(f"cannot parse tensor shape from {text!r}")

    @classmethod
    def concat_channels(cls, shapes: Sequence["TensorShape"]) -> "TensorShape":
        """Shape of concatenating ``shapes`` along the channel axis.

        All shapes must agree on every non-channel dimension.
        """
        if not shapes:
            raise ValueError("cannot concatenate an empty list of shapes")
        first = shapes[0]
        for s in shapes[1:]:
            if s.batch != first.batch:
                raise ValueError(f"batch mismatch in concat: {s} vs {first}")
            if s.is_spatial != first.is_spatial:
                raise ValueError(f"rank mismatch in concat: {s} vs {first}")
            if s.is_spatial and (s.height, s.width) != (first.height, first.width):
                raise ValueError(f"spatial mismatch in concat: {s} vs {first}")
        channels = sum(s.channels for s in shapes)
        return first.with_channels(channels)


def conv2d_output_hw(
    in_h: int,
    in_w: int,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> tuple[int, int]:
    """Output spatial size of a convolution (floor semantics, as in cuDNN)."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (in_h + 2 * ph - kh) // sh + 1
    out_w = (in_w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution produces empty output: input {in_h}x{in_w}, "
            f"kernel {kh}x{kw}, stride {sh}x{sw}, padding {ph}x{pw}"
        )
    return out_h, out_w


def pool2d_output_hw(
    in_h: int,
    in_w: int,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    ceil_mode: bool = False,
) -> tuple[int, int]:
    """Output spatial size of a pooling operator."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ceil_mode:
        out_h = -(-(in_h + 2 * ph - kh) // sh) + 1
        out_w = -(-(in_w + 2 * pw - kw) // sw) + 1
    else:
        out_h = (in_h + 2 * ph - kh) // sh + 1
        out_w = (in_w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"pooling produces empty output: input {in_h}x{in_w}, "
            f"kernel {kh}x{kw}, stride {sh}x{sw}, padding {ph}x{pw}"
        )
    return out_h, out_w
