"""JSON (de)serialisation of computation graphs.

Graphs (and the schedules the core package produces for them) are plain data,
so round-tripping through JSON lets users persist optimised models, ship them
between machines, or diff two schedules.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .graph import Graph
from .ops import operator_from_config
from .validate import validate_graph

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

FORMAT_VERSION = 1


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Serialise a graph (structure + blocks, no tensor data) to a dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [op.to_config() for op in graph.nodes.values()],
        "blocks": [
            {"name": block.name, "nodes": list(block.node_names)} for block in graph.blocks
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    """Reconstruct a graph from :func:`graph_to_dict` output and validate it."""
    version = data.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version}")
    graph = Graph(data["name"])
    block_by_node: dict[str, str] = {}
    blocks_by_name = {}
    for block_data in data.get("blocks", []):
        block = graph.add_block(block_data["name"])
        blocks_by_name[block.name] = block
        for node_name in block_data["nodes"]:
            block_by_node[node_name] = block.name
            block.node_names.append(node_name)
    for node_config in data["nodes"]:
        op = operator_from_config(node_config)
        block_name = block_by_node.get(op.name)
        block = blocks_by_name.get(block_name) if block_name is not None else None
        # add_node appends to block.node_names; the block lists were prefilled
        # with the node names, so clear duplicates by passing block=None and
        # relying on the prefilled membership instead.
        graph.add_node(op, None)
    validate_graph(graph)
    return graph


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Write a graph to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(graph_to_dict(graph), indent=2))
    return path


def load_graph(path: str | Path) -> Graph:
    """Load a graph previously written by :func:`save_graph`."""
    data = json.loads(Path(path).read_text())
    return graph_from_dict(data)
