"""Text and Graphviz rendering of computation graphs.

These renderers have no third-party dependencies: ``graph_to_text`` prints a
topologically ordered listing (one line per operator with shape and FLOPs) and
``graph_to_dot`` emits Graphviz DOT source that can be rendered offline.
"""

from __future__ import annotations

from .graph import Graph
from .ops import Placeholder

__all__ = ["graph_to_text", "graph_to_dot", "block_summary_table"]


def graph_to_text(graph: Graph, max_nodes: int | None = None) -> str:
    """Human-readable, topologically ordered listing of a graph."""
    lines = [f"Graph {graph.name!r} (input {graph.input_shape}, {len(graph.operators())} operators)"]
    order = graph.topological_order()
    shown = order if max_nodes is None else order[:max_nodes]
    block_of = {name: block.name for block in graph.blocks for name in block.node_names}
    for name in shown:
        op = graph.nodes[name]
        if isinstance(op, Placeholder):
            lines.append(f"  [input   ] {name:<28} -> {op.output_shape}")
            continue
        inputs = ", ".join(op.inputs)
        block = block_of.get(name, "-")
        flops = op.flops()
        lines.append(
            f"  [{op.kind:<8}] {name:<28} ({inputs}) -> {op.output_shape}  "
            f"block={block} flops={flops:,}"
        )
    if max_nodes is not None and len(order) > max_nodes:
        lines.append(f"  ... ({len(order) - max_nodes} more operators)")
    return "\n".join(lines)


def graph_to_dot(graph: Graph, cluster_blocks: bool = True) -> str:
    """Render a graph as Graphviz DOT source.

    Blocks become clusters so the block structure used by the scheduler is
    visible in the rendering.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;", '  node [shape=box, fontsize=10];']
    if cluster_blocks:
        for idx, block in enumerate(graph.blocks):
            lines.append(f'  subgraph "cluster_{idx}" {{')
            lines.append(f'    label="{block.name}";')
            for name in block.node_names:
                op = graph.nodes[name]
                lines.append(f'    "{name}" [label="{name}\\n{op.kind}\\n{op.output_shape}"];')
            lines.append("  }")
        for op in graph.placeholders:
            lines.append(f'  "{op.name}" [label="{op.name}\\ninput\\n{op.output_shape}", shape=ellipse];')
    else:
        for name, op in graph.nodes.items():
            shape = "ellipse" if isinstance(op, Placeholder) else "box"
            lines.append(f'  "{name}" [label="{name}\\n{op.kind}", shape={shape}];')
    for producer, consumer in graph.edges():
        lines.append(f'  "{producer}" -> "{consumer}";')
    lines.append("}")
    return "\n".join(lines)


def block_summary_table(graph: Graph) -> str:
    """One-line-per-block summary: operator count, FLOPs, output shapes."""
    lines = [f"{'block':<24} {'#ops':>6} {'GFLOPs':>10}"]
    for block in graph.blocks:
        names = graph.schedulable_names(block)
        flops = sum(graph.nodes[n].flops() for n in names)
        lines.append(f"{block.name:<24} {len(names):>6} {flops / 1e9:>10.3f}")
    return "\n".join(lines)
