"""Operator taxonomy of the computation-graph IR.

Every node in a :class:`repro.ir.graph.Graph` is an :class:`Operator`.  An
operator knows

* which other operators produce its inputs (``inputs`` — a list of node names),
* how to infer its output shape from its input shapes,
* how many floating point operations it performs (``flops``),
* how many bytes it moves (weights, activations read, activations written),

which is everything the hardware model and the IOS scheduler need.  Operators
never hold tensor data.

Following the paper (Table 2), compound units such as "Conv-Relu" and
"Relu-SepConv" are modelled as a *single* schedulable operator: a ``Conv2d``
carries an optional fused activation, a ``SeparableConv2d`` carries an optional
preceding activation.  These compound operators are the basic schedule units.

Graphs do not have to arrive pre-fused: the ``fuse-activation`` pass of
:mod:`repro.passes` (see :class:`repro.passes.FuseActivationPass`) folds
standalone ``Relu`` nodes into these fused-activation fields, so a raw
frontend graph optimises to the same compound units the model zoo builds
directly.
"""

from __future__ import annotations

from typing import Any, ClassVar, Sequence

from .tensor import FLOAT32_BYTES, TensorShape, conv2d_output_hw, pool2d_output_hw

__all__ = [
    "Operator",
    "Placeholder",
    "Conv2d",
    "SeparableConv2d",
    "Pool2d",
    "GlobalAvgPool",
    "Relu",
    "Identity",
    "Add",
    "Concat",
    "Split",
    "Flatten",
    "Linear",
    "Matmul",
    "Softmax",
    "LayerNorm",
    "Gelu",
    "Transpose",
    "Reshape",
    "Opaque",
    "OP_REGISTRY",
    "register_operator",
    "operator_from_config",
]


def _normalize_pair(value: int | tuple[int, int] | list[int]) -> tuple[int, int]:
    """Accept ``k`` or ``(kh, kw)`` and always return a pair."""
    if isinstance(value, int):
        return (value, value)
    pair = tuple(int(v) for v in value)
    if len(pair) != 2:
        raise ValueError(f"expected an int or a pair, got {value!r}")
    return pair  # type: ignore[return-value]


class Operator:
    """Base class for all IR operators.

    Parameters
    ----------
    name:
        Unique node name within the graph.
    inputs:
        Names of the producer nodes whose outputs feed this operator, in order.
    """

    #: Short type tag used for serialisation and merge-compatibility checks.
    kind: ClassVar[str] = "op"
    #: Whether the operator launches a GPU kernel (False for pure metadata ops).
    launches_kernel: ClassVar[bool] = True

    def __init__(self, name: str, inputs: Sequence[str]):
        if not name:
            raise ValueError("operator name must be non-empty")
        self.name = str(name)
        self.inputs: tuple[str, ...] = tuple(str(i) for i in inputs)
        self.input_shapes: tuple[TensorShape, ...] | None = None
        self.output_shape: TensorShape | None = None

    # ------------------------------------------------------------------ shapes
    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        """Compute the output shape from the input shapes."""
        raise NotImplementedError

    def bind(self, input_shapes: Sequence[TensorShape]) -> None:
        """Record input shapes and cache the inferred output shape.

        Called by the graph builder once the producers of this operator are
        known.  ``flops``/memory queries are only valid after ``bind``.
        """
        self.input_shapes = tuple(input_shapes)
        self.output_shape = self.infer_shape(self.input_shapes)

    def _require_bound(self) -> tuple[TensorShape, ...]:
        if self.input_shapes is None or self.output_shape is None:
            raise RuntimeError(
                f"operator {self.name!r} has not been bound to input shapes yet"
            )
        return self.input_shapes

    # ------------------------------------------------------------------- costs
    def flops(self) -> int:
        """Number of floating point operations (multiply-adds count as 2)."""
        self._require_bound()
        return 0

    def weight_count(self) -> int:
        """Number of learned parameters."""
        self._require_bound()
        return 0

    def weight_bytes(self, dtype_bytes: int = FLOAT32_BYTES) -> int:
        return self.weight_count() * dtype_bytes

    def input_bytes(self, dtype_bytes: int = FLOAT32_BYTES) -> int:
        shapes = self._require_bound()
        return sum(s.bytes(dtype_bytes) for s in shapes)

    def output_bytes(self, dtype_bytes: int = FLOAT32_BYTES) -> int:
        self._require_bound()
        assert self.output_shape is not None
        return self.output_shape.bytes(dtype_bytes)

    def memory_bytes(self, dtype_bytes: int = FLOAT32_BYTES) -> int:
        """Total DRAM traffic: activations read + weights read + output written."""
        return (
            self.input_bytes(dtype_bytes)
            + self.weight_bytes(dtype_bytes)
            + self.output_bytes(dtype_bytes)
        )

    # ------------------------------------------------------------ merge support
    def merge_key(self) -> tuple[Any, ...] | None:
        """Key describing merge compatibility.

        Two operators can be merged by the "operator merge" parallelisation
        strategy iff they have the same ``kind``, the same (non-``None``) merge
        key and consume exactly the same inputs.  ``None`` means the operator
        can never participate in a merge.
        """
        return None

    # -------------------------------------------------------------- serialising
    def attrs(self) -> dict[str, Any]:
        """Operator-specific attributes (JSON-serialisable)."""
        return {}

    def to_config(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "inputs": list(self.inputs), "attrs": self.attrs()}

    @classmethod
    def from_attrs(cls, name: str, inputs: Sequence[str], attrs: dict[str, Any]) -> "Operator":
        return cls(name, inputs, **attrs)  # type: ignore[call-arg]

    # ------------------------------------------------------------------ dunder
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        shape = f" -> {self.output_shape}" if self.output_shape is not None else ""
        return f"<{type(self).__name__} {self.name} inputs={list(self.inputs)}{shape}>"


# --------------------------------------------------------------------------- #
# Graph input                                                                  #
# --------------------------------------------------------------------------- #
class Placeholder(Operator):
    """A graph input.  Does not launch a kernel and is never scheduled."""

    kind = "placeholder"
    launches_kernel = False

    def __init__(self, name: str, shape: TensorShape):
        super().__init__(name, inputs=())
        self.shape = shape
        self.bind(())

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        return self.shape

    def attrs(self) -> dict[str, Any]:
        return {"shape": str(self.shape)}

    @classmethod
    def from_attrs(cls, name, inputs, attrs):
        return cls(name, TensorShape.parse(attrs["shape"]))


# --------------------------------------------------------------------------- #
# Convolutions                                                                 #
# --------------------------------------------------------------------------- #
class Conv2d(Operator):
    """2-D convolution with an optional fused activation ("Conv-Relu").

    ``padding`` may be an int, a pair, or the string ``"same"`` which pads so
    that (for stride 1) the spatial size is preserved.
    """

    kind = "conv2d"

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] | str = "same",
        groups: int = 1,
        activation: str | None = "relu",
    ):
        super().__init__(name, inputs)
        if out_channels <= 0:
            raise ValueError(f"out_channels must be positive, got {out_channels}")
        if groups <= 0:
            raise ValueError(f"groups must be positive, got {groups}")
        self.out_channels = int(out_channels)
        self.kernel = _normalize_pair(kernel)
        self.stride = _normalize_pair(stride)
        if isinstance(padding, str):
            if padding != "same":
                raise ValueError(f"unknown padding spec {padding!r}")
            self.padding = (self.kernel[0] // 2, self.kernel[1] // 2)
        else:
            self.padding = _normalize_pair(padding)
        self.groups = int(groups)
        self.activation = activation
        if self.out_channels % self.groups != 0:
            raise ValueError(
                f"out_channels={out_channels} not divisible by groups={groups}"
            )

    # shapes -------------------------------------------------------------
    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Conv2d {self.name} expects exactly one input")
        x = input_shapes[0]
        if not x.is_spatial:
            raise ValueError(f"Conv2d {self.name} requires a 4-D input, got {x}")
        if x.channels % self.groups != 0:
            raise ValueError(
                f"Conv2d {self.name}: in_channels={x.channels} not divisible by groups={self.groups}"
            )
        out_h, out_w = conv2d_output_hw(x.height, x.width, self.kernel, self.stride, self.padding)
        return TensorShape(x.batch, self.out_channels, out_h, out_w)

    # costs --------------------------------------------------------------
    @property
    def in_channels(self) -> int:
        shapes = self._require_bound()
        return shapes[0].channels

    def flops(self) -> int:
        self._require_bound()
        assert self.output_shape is not None
        out = self.output_shape
        kh, kw = self.kernel
        macs = out.numel() * (self.in_channels // self.groups) * kh * kw
        total = 2 * macs
        if self.activation is not None:
            total += out.numel()
        return total

    def weight_count(self) -> int:
        self._require_bound()
        kh, kw = self.kernel
        # weights + bias
        return self.out_channels * (self.in_channels // self.groups) * kh * kw + self.out_channels

    # merge --------------------------------------------------------------
    def merge_key(self) -> tuple[Any, ...] | None:
        # Convolutions can be merged when they share stride, groups and
        # activation; kernel sizes may differ (the smaller kernel is padded
        # with zeros to the larger one, exactly as described in Section 3).
        if self.groups != 1:
            return None
        return ("conv2d", self.stride, self.groups, self.activation)

    def attrs(self) -> dict[str, Any]:
        return {
            "out_channels": self.out_channels,
            "kernel": list(self.kernel),
            "stride": list(self.stride),
            "padding": list(self.padding),
            "groups": self.groups,
            "activation": self.activation,
        }


class SeparableConv2d(Operator):
    """Depthwise-separable convolution with an optional preceding ReLU.

    This is the "Relu-SepConv" schedule unit used by RandWire and NasNet in
    Table 2: a ReLU, a depthwise convolution and a pointwise (1x1) convolution
    executed as one unit.  Separable convolutions cannot be merged (the paper
    notes IOS-Merge degenerates to Sequential on RandWire/NasNet).
    """

    kind = "sep_conv2d"

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] | str = "same",
        pre_activation: bool = True,
    ):
        super().__init__(name, inputs)
        if out_channels <= 0:
            raise ValueError(f"out_channels must be positive, got {out_channels}")
        self.out_channels = int(out_channels)
        self.kernel = _normalize_pair(kernel)
        self.stride = _normalize_pair(stride)
        if isinstance(padding, str):
            if padding != "same":
                raise ValueError(f"unknown padding spec {padding!r}")
            self.padding = (self.kernel[0] // 2, self.kernel[1] // 2)
        else:
            self.padding = _normalize_pair(padding)
        self.pre_activation = bool(pre_activation)

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"SeparableConv2d {self.name} expects exactly one input")
        x = input_shapes[0]
        if not x.is_spatial:
            raise ValueError(f"SeparableConv2d {self.name} requires a 4-D input, got {x}")
        out_h, out_w = conv2d_output_hw(x.height, x.width, self.kernel, self.stride, self.padding)
        return TensorShape(x.batch, self.out_channels, out_h, out_w)

    @property
    def in_channels(self) -> int:
        shapes = self._require_bound()
        return shapes[0].channels

    def flops(self) -> int:
        shapes = self._require_bound()
        assert self.output_shape is not None
        x = shapes[0]
        out = self.output_shape
        kh, kw = self.kernel
        # depthwise: one filter per input channel, at the output resolution
        depthwise_macs = x.channels * out.height * out.width * out.batch * kh * kw
        # pointwise: 1x1 conv from in_channels to out_channels
        pointwise_macs = out.numel() * x.channels
        total = 2 * (depthwise_macs + pointwise_macs)
        if self.pre_activation:
            total += x.numel()
        return total

    def weight_count(self) -> int:
        shapes = self._require_bound()
        x = shapes[0]
        kh, kw = self.kernel
        depthwise = x.channels * kh * kw
        pointwise = x.channels * self.out_channels + self.out_channels
        return depthwise + pointwise

    def merge_key(self) -> tuple[Any, ...] | None:
        return None  # separable convolutions are never merged

    def attrs(self) -> dict[str, Any]:
        return {
            "out_channels": self.out_channels,
            "kernel": list(self.kernel),
            "stride": list(self.stride),
            "padding": list(self.padding),
            "pre_activation": self.pre_activation,
        }


# --------------------------------------------------------------------------- #
# Pooling                                                                      #
# --------------------------------------------------------------------------- #
class Pool2d(Operator):
    """Max or average pooling."""

    kind = "pool2d"

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        pool_type: str,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] | str = 0,
        ceil_mode: bool = False,
    ):
        super().__init__(name, inputs)
        if pool_type not in ("max", "avg"):
            raise ValueError(f"pool_type must be 'max' or 'avg', got {pool_type!r}")
        self.pool_type = pool_type
        self.kernel = _normalize_pair(kernel)
        self.stride = _normalize_pair(stride) if stride is not None else self.kernel
        if isinstance(padding, str):
            if padding != "same":
                raise ValueError(f"unknown padding spec {padding!r}")
            self.padding = (self.kernel[0] // 2, self.kernel[1] // 2)
        else:
            self.padding = _normalize_pair(padding)
        self.ceil_mode = bool(ceil_mode)

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Pool2d {self.name} expects exactly one input")
        x = input_shapes[0]
        if not x.is_spatial:
            raise ValueError(f"Pool2d {self.name} requires a 4-D input, got {x}")
        out_h, out_w = pool2d_output_hw(
            x.height, x.width, self.kernel, self.stride, self.padding, self.ceil_mode
        )
        return TensorShape(x.batch, x.channels, out_h, out_w)

    def flops(self) -> int:
        self._require_bound()
        assert self.output_shape is not None
        kh, kw = self.kernel
        return self.output_shape.numel() * kh * kw

    def attrs(self) -> dict[str, Any]:
        return {
            "pool_type": self.pool_type,
            "kernel": list(self.kernel),
            "stride": list(self.stride),
            "padding": list(self.padding),
            "ceil_mode": self.ceil_mode,
        }


class GlobalAvgPool(Operator):
    """Global average pooling reducing the spatial dimensions to 1x1."""

    kind = "global_avg_pool"

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"GlobalAvgPool {self.name} expects exactly one input")
        x = input_shapes[0]
        if not x.is_spatial:
            raise ValueError(f"GlobalAvgPool {self.name} requires a 4-D input, got {x}")
        return TensorShape(x.batch, x.channels, 1, 1)

    def flops(self) -> int:
        shapes = self._require_bound()
        return shapes[0].numel()


# --------------------------------------------------------------------------- #
# Element-wise / structural operators                                          #
# --------------------------------------------------------------------------- #
class Relu(Operator):
    """Stand-alone ReLU activation."""

    kind = "relu"

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Relu {self.name} expects exactly one input")
        return input_shapes[0]

    def flops(self) -> int:
        shapes = self._require_bound()
        return shapes[0].numel()


class Identity(Operator):
    """Pass-through node (useful for skip connections and graph surgery)."""

    kind = "identity"
    launches_kernel = False

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Identity {self.name} expects exactly one input")
        return input_shapes[0]


class Add(Operator):
    """Element-wise addition of two or more tensors with identical shapes."""

    kind = "add"

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) < 2:
            raise ValueError(f"Add {self.name} expects at least two inputs")
        first = input_shapes[0]
        for s in input_shapes[1:]:
            if s != first:
                raise ValueError(f"Add {self.name}: shape mismatch {s} vs {first}")
        return first

    def flops(self) -> int:
        shapes = self._require_bound()
        return shapes[0].numel() * (len(shapes) - 1)


class Concat(Operator):
    """Concatenation along the channel axis."""

    kind = "concat"

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) < 1:
            raise ValueError(f"Concat {self.name} expects at least one input")
        return TensorShape.concat_channels(list(input_shapes))

    def flops(self) -> int:
        # A concat is a pure memory movement; count one op per element copied.
        self._require_bound()
        assert self.output_shape is not None
        return self.output_shape.numel()


class Split(Operator):
    """Split a tensor along the channel axis into fixed-size sections.

    The output modelled here is the *i-th* section; the split itself is a
    metadata/view operation produced when un-merging a merged convolution.
    """

    kind = "split"
    launches_kernel = False

    def __init__(self, name: str, inputs: Sequence[str], sections: Sequence[int], index: int):
        super().__init__(name, inputs)
        self.sections = tuple(int(s) for s in sections)
        if any(s <= 0 for s in self.sections):
            raise ValueError(f"split sections must be positive, got {self.sections}")
        if not 0 <= index < len(self.sections):
            raise ValueError(f"split index {index} out of range for {self.sections}")
        self.index = int(index)

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Split {self.name} expects exactly one input")
        x = input_shapes[0]
        if x.channels != sum(self.sections):
            raise ValueError(
                f"Split {self.name}: sections {self.sections} do not sum to channels {x.channels}"
            )
        return x.with_channels(self.sections[self.index])

    def attrs(self) -> dict[str, Any]:
        return {"sections": list(self.sections), "index": self.index}


class Flatten(Operator):
    """Collapse a 4-D feature map to a 2-D matrix."""

    kind = "flatten"
    launches_kernel = False

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Flatten {self.name} expects exactly one input")
        return input_shapes[0].flattened()


class Linear(Operator):
    """Fully-connected layer (dense matrix multiplication with weights)."""

    kind = "linear"

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        out_features: int,
        activation: str | None = None,
    ):
        super().__init__(name, inputs)
        if out_features <= 0:
            raise ValueError(f"out_features must be positive, got {out_features}")
        self.out_features = int(out_features)
        self.activation = activation

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Linear {self.name} expects exactly one input")
        x = input_shapes[0].flattened()
        return TensorShape(x.batch, self.out_features)

    @property
    def in_features(self) -> int:
        shapes = self._require_bound()
        return shapes[0].flattened().channels

    def flops(self) -> int:
        shapes = self._require_bound()
        x = shapes[0].flattened()
        total = 2 * x.batch * x.channels * self.out_features
        if self.activation is not None:
            total += x.batch * self.out_features
        return total

    def weight_count(self) -> int:
        return self.in_features * self.out_features + self.out_features

    def merge_key(self) -> tuple[Any, ...] | None:
        return ("linear", self.activation)

    def attrs(self) -> dict[str, Any]:
        return {"out_features": self.out_features, "activation": self.activation}


class Matmul(Operator):
    """Matrix multiplication, in two forms.

    *Projection form* (one input, ``out_features`` set): a weighted dense
    layer, exactly the :class:`Linear` semantics — the historical meaning of
    this operator, used by the paper's Figure 3 example.

    *Batched form* (two inputs, ``out_features`` unset): a weightless product
    of two activation matrices ``(n, k) @ (k, m) -> (n, m)``, as produced by
    attention blocks (``Q @ K^T``, ``scores @ V``).  Until this class became a
    first-class operator it subclassed :class:`Linear`, which priced phantom
    weights (``in*out + out`` parameters that do not exist) into the memory
    model and mis-stated FLOPs for activation-activation products.
    """

    kind = "matmul"

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        out_features: int | None = None,
        activation: str | None = None,
        weight_id: str | None = None,
    ):
        super().__init__(name, inputs)
        if out_features is not None and out_features <= 0:
            raise ValueError(f"out_features must be positive, got {out_features}")
        self.out_features = None if out_features is None else int(out_features)
        self.activation = activation
        # Identity of the learned weight matrix (the importer records the
        # foreign initializer name here).  Two projections with the same
        # weight_id provably share weights, which is what licenses CSE to
        # merge them — equal shapes alone never would.
        self.weight_id = None if weight_id is None else str(weight_id)

    @property
    def is_projection(self) -> bool:
        """Whether this matmul carries learned weights (Linear semantics)."""
        return self.out_features is not None

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if self.is_projection:
            if len(input_shapes) != 1:
                raise ValueError(
                    f"Matmul {self.name} with out_features expects exactly one input"
                )
            x = input_shapes[0].flattened()
            return TensorShape(x.batch, self.out_features)
        if len(input_shapes) != 2:
            raise ValueError(
                f"Matmul {self.name} without out_features expects exactly two "
                f"inputs (got {len(input_shapes)})"
            )
        a, b = input_shapes
        if a.is_spatial or b.is_spatial:
            raise ValueError(
                f"Matmul {self.name} requires 2-D operands, got {a} @ {b}"
            )
        if a.channels != b.batch:
            raise ValueError(
                f"Matmul {self.name}: inner dimensions do not agree ({a} @ {b})"
            )
        return TensorShape(a.batch, b.channels)

    @property
    def in_features(self) -> int:
        shapes = self._require_bound()
        return shapes[0].flattened().channels

    def flops(self) -> int:
        shapes = self._require_bound()
        assert self.output_shape is not None
        out = self.output_shape
        if self.is_projection:
            x = shapes[0].flattened()
            total = 2 * x.batch * x.channels * self.out_features
        else:
            a = shapes[0]
            total = 2 * a.batch * a.channels * out.channels
        if self.activation is not None:
            total += out.numel()
        return total

    def weight_count(self) -> int:
        self._require_bound()
        if not self.is_projection:
            return 0
        return self.in_features * self.out_features + self.out_features

    def merge_key(self) -> tuple[Any, ...] | None:
        # Matmuls never participate in the operator-merge strategy: the
        # batched form has no weight matrix to stack, and stacking projection
        # weights is handled by Linear.
        return None

    def attrs(self) -> dict[str, Any]:
        return {
            "out_features": self.out_features,
            "activation": self.activation,
            "weight_id": self.weight_id,
        }


class Softmax(Operator):
    """Softmax over the feature dimension."""

    kind = "softmax"

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Softmax {self.name} expects exactly one input")
        return input_shapes[0]

    def flops(self) -> int:
        shapes = self._require_bound()
        return 5 * shapes[0].numel()


# --------------------------------------------------------------------------- #
# Transformer operator family                                                  #
# --------------------------------------------------------------------------- #
class LayerNorm(Operator):
    """Layer normalisation over the feature dimension (gain + bias learned)."""

    kind = "layer_norm"

    def __init__(self, name: str, inputs: Sequence[str], epsilon: float = 1e-5):
        super().__init__(name, inputs)
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"LayerNorm {self.name} expects exactly one input")
        return input_shapes[0]

    def flops(self) -> int:
        # mean + variance (two reduction sweeps), normalise, scale and shift.
        shapes = self._require_bound()
        return 8 * shapes[0].numel()

    def weight_count(self) -> int:
        shapes = self._require_bound()
        return 2 * shapes[0].channels

    def attrs(self) -> dict[str, Any]:
        return {"epsilon": self.epsilon}


class Gelu(Operator):
    """Stand-alone GELU activation (tanh approximation cost model)."""

    kind = "gelu"

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Gelu {self.name} expects exactly one input")
        return input_shapes[0]

    def flops(self) -> int:
        shapes = self._require_bound()
        return 8 * shapes[0].numel()


class Transpose(Operator):
    """Swap the two trailing logical axes.

    For a 2-D matrix ``(n, k)`` this is the ordinary transpose ``(k, n)``
    (attention uses it to form ``K^T``); for a 4-D feature map it swaps the
    spatial axes.  Modelled as one element copied per element moved.
    """

    kind = "transpose"

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Transpose {self.name} expects exactly one input")
        x = input_shapes[0]
        if x.is_spatial:
            return TensorShape(x.batch, x.channels, x.width, x.height)
        return TensorShape(x.channels, x.batch)

    def flops(self) -> int:
        shapes = self._require_bound()
        return shapes[0].numel()


class Reshape(Operator):
    """Reinterpret a tensor's trailing dimensions, preserving the batch axis.

    ``dims`` gives the target non-batch dimensions: ``[channels]`` for a 2-D
    result or ``[channels, height, width]`` for a 4-D one.  Keeping the batch
    axis implicit means the element-count check keeps holding when the graph
    is re-batched via :meth:`Graph.with_batch_size`.  A reshape is a metadata
    operation: it launches no kernel.
    """

    kind = "reshape"
    launches_kernel = False

    def __init__(self, name: str, inputs: Sequence[str], dims: Sequence[int]):
        super().__init__(name, inputs)
        self.dims = tuple(int(d) for d in dims)
        if len(self.dims) not in (1, 3):
            raise ValueError(
                f"Reshape {name} dims must be [channels] or [channels, h, w], "
                f"got {list(self.dims)}"
            )
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"Reshape {name} dims must be positive, got {list(self.dims)}")

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if len(input_shapes) != 1:
            raise ValueError(f"Reshape {self.name} expects exactly one input")
        x = input_shapes[0]
        target = TensorShape(x.batch, *self.dims)
        if target.numel() != x.numel():
            raise ValueError(
                f"Reshape {self.name}: cannot view {x} as {target} "
                "(element counts differ)"
            )
        return target

    def attrs(self) -> dict[str, Any]:
        return {"dims": list(self.dims)}


class Opaque(Operator):
    """A foreign operator the importer could not map to a native kind.

    Rather than rejecting a model that contains one unsupported node, the
    frontend degrades it to this opaque placeholder: the declared output
    shape is trusted (re-batched from the first input so
    :meth:`Graph.with_batch_size` still works), the latency comes from the
    kernel profile table's default-efficiency path, and ``digest`` — a hash of
    the foreign node's original attributes — keeps the schedule memo and graph
    fingerprint distinct between opaque nodes that merely share an ``op_type``.
    """

    kind = "opaque"

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        op_type: str,
        shape: str,
        digest: str = "",
        flops: int | None = None,
    ):
        super().__init__(name, inputs)
        if not op_type:
            raise ValueError("opaque operator requires the foreign op_type tag")
        self.op_type = str(op_type)
        self.declared_shape = TensorShape.parse(shape)
        self.digest = str(digest)
        self.declared_flops = None if flops is None else int(flops)

    def infer_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        if not input_shapes:
            raise ValueError(f"Opaque {self.name} expects at least one input")
        return self.declared_shape.with_batch(input_shapes[0].batch)

    def flops(self) -> int:
        shapes = self._require_bound()
        assert self.output_shape is not None
        if self.declared_flops is not None:
            # Declared cost is per-sample; scale with the bound batch size.
            scale = self.output_shape.batch / self.declared_shape.batch
            return int(self.declared_flops * scale)
        # Unknown compute: assume one pass over every element touched.
        return sum(s.numel() for s in shapes) + self.output_shape.numel()

    def attrs(self) -> dict[str, Any]:
        return {
            "op_type": self.op_type,
            "shape": str(self.declared_shape),
            "digest": self.digest,
            "flops": self.declared_flops,
        }


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
OP_REGISTRY: dict[str, type[Operator]] = {}


def register_operator(cls: type[Operator]) -> type[Operator]:
    """Register an operator class so it can be deserialised by kind."""
    if cls.kind in OP_REGISTRY and OP_REGISTRY[cls.kind] is not cls:
        raise ValueError(f"duplicate operator kind {cls.kind!r}")
    OP_REGISTRY[cls.kind] = cls
    return cls


for _cls in (
    Placeholder,
    Conv2d,
    SeparableConv2d,
    Pool2d,
    GlobalAvgPool,
    Relu,
    Identity,
    Add,
    Concat,
    Split,
    Flatten,
    Linear,
    Matmul,
    Softmax,
    LayerNorm,
    Gelu,
    Transpose,
    Reshape,
    Opaque,
):
    register_operator(_cls)


def operator_from_config(config: dict[str, Any]) -> Operator:
    """Reconstruct an operator from its ``to_config()`` dictionary.

    Raises
    ------
    KeyError
        If ``config["kind"]`` names no registered operator type; the message
        lists every known kind so typos in hand-written graph JSON (or a
        missing :func:`register_operator` call for a custom operator) are
        immediately actionable.
    """
    kind = config["kind"]
    if kind not in OP_REGISTRY:
        import difflib

        close = difflib.get_close_matches(str(kind), sorted(OP_REGISTRY), n=1)
        hint = f" Did you mean {close[0]!r}?" if close else ""
        raise KeyError(
            f"unknown operator kind {kind!r}; known kinds: "
            f"{', '.join(sorted(OP_REGISTRY))}.{hint} Custom operators must be "
            "registered with repro.ir.register_operator before "
            "deserialisation."
        )
    cls = OP_REGISTRY[kind]
    return cls.from_attrs(config["name"], config.get("inputs", []), config.get("attrs", {}))
