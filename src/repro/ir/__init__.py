"""Computation-graph intermediate representation (IR).

The IR is the substrate that both the IOS scheduler (``repro.core``) and the
simulated execution engine (``repro.runtime``) operate on.  It models CNNs as
block-structured DAGs of shape-annotated operators; no tensor data is ever
stored because scheduling decisions depend only on shapes.
"""

from .tensor import FLOAT32_BYTES, TensorShape
from .ops import (
    OP_REGISTRY,
    Add,
    Concat,
    Conv2d,
    Flatten,
    Gelu,
    GlobalAvgPool,
    Identity,
    LayerNorm,
    Linear,
    Matmul,
    Opaque,
    Operator,
    Placeholder,
    Pool2d,
    Relu,
    Reshape,
    SeparableConv2d,
    Softmax,
    Split,
    Transpose,
    operator_from_config,
    register_operator,
)
from .graph import Block, Graph, GraphBuilder
from .validate import GraphValidationError, validate_graph
from .flops import (
    ConvStatistics,
    OperatorCost,
    arithmetic_intensity,
    block_flops,
    conv_statistics,
    graph_cost_breakdown,
    operator_cost,
)
from .fingerprint import FINGERPRINT_LENGTH, canonical_order, graph_fingerprint
from .serialization import graph_from_dict, graph_to_dict, load_graph, save_graph
from .visualize import block_summary_table, graph_to_dot, graph_to_text

__all__ = [
    "FLOAT32_BYTES",
    "TensorShape",
    "Operator",
    "Placeholder",
    "Conv2d",
    "SeparableConv2d",
    "Pool2d",
    "GlobalAvgPool",
    "Relu",
    "Identity",
    "Add",
    "Concat",
    "Split",
    "Flatten",
    "Linear",
    "Matmul",
    "Softmax",
    "LayerNorm",
    "Gelu",
    "Transpose",
    "Reshape",
    "Opaque",
    "OP_REGISTRY",
    "operator_from_config",
    "register_operator",
    "Block",
    "Graph",
    "GraphBuilder",
    "GraphValidationError",
    "validate_graph",
    "OperatorCost",
    "ConvStatistics",
    "operator_cost",
    "graph_cost_breakdown",
    "block_flops",
    "conv_statistics",
    "arithmetic_intensity",
    "FINGERPRINT_LENGTH",
    "canonical_order",
    "graph_fingerprint",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "graph_to_text",
    "graph_to_dot",
    "block_summary_table",
]
