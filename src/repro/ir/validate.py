"""Structural validation of computation graphs.

``validate_graph`` is called by :meth:`GraphBuilder.build` and by the graph
deserialiser; scheduling and execution assume a graph that passed validation.
"""

from __future__ import annotations

from .graph import Graph
from .ops import Placeholder

__all__ = ["GraphValidationError", "validate_graph"]


class GraphValidationError(ValueError):
    """Raised when a computation graph violates a structural invariant."""


def validate_graph(graph: Graph) -> None:
    """Check the structural invariants required by the scheduler and runtime.

    Invariants checked:

    1. the graph has exactly one placeholder (network input);
    2. the graph is acyclic (a topological order exists);
    3. every non-placeholder operator has at least one input and all inputs
       refer to existing nodes;
    4. every operator has bound shapes;
    5. every non-placeholder operator belongs to exactly one block;
    6. blocks are *sequentially consistent*: every edge either stays inside a
       block or goes from an earlier block to a later one, so that executing
       blocks in order respects all dependencies.

    Raises
    ------
    GraphValidationError
        If any invariant is violated.
    """
    placeholders = graph.placeholders
    if len(placeholders) != 1:
        raise GraphValidationError(
            f"graph {graph.name!r} must have exactly one input placeholder, "
            f"found {len(placeholders)}"
        )

    # Acyclicity (topological_order raises on cycles).  Validation must not
    # trust derived caches: the caller may have mutated operators in place
    # since they were computed.
    graph.invalidate_caches()
    try:
        graph.topological_order()
    except ValueError as exc:
        raise GraphValidationError(str(exc)) from exc

    # Inputs exist and shapes are bound.
    for name, op in graph.nodes.items():
        if isinstance(op, Placeholder):
            continue
        if not op.inputs:
            raise GraphValidationError(f"operator {name!r} has no inputs")
        for parent in op.inputs:
            if parent not in graph.nodes:
                raise GraphValidationError(f"operator {name!r} references unknown input {parent!r}")
        if op.output_shape is None:
            raise GraphValidationError(f"operator {name!r} has no bound output shape")

    # Block membership.
    membership: dict[str, int] = {}
    for idx, block in enumerate(graph.blocks):
        for node_name in block.node_names:
            if node_name not in graph.nodes:
                raise GraphValidationError(
                    f"block {block.name!r} references unknown node {node_name!r}"
                )
            if node_name in membership:
                other = graph.blocks[membership[node_name]].name
                raise GraphValidationError(
                    f"node {node_name!r} belongs to both block {other!r} and {block.name!r}"
                )
            membership[node_name] = idx
    for name, op in graph.nodes.items():
        if isinstance(op, Placeholder):
            continue
        if name not in membership:
            raise GraphValidationError(f"operator {name!r} does not belong to any block")

    # Block sequential consistency.
    for producer, consumer in graph.edges():
        if isinstance(graph.nodes[producer], Placeholder):
            continue
        p_idx = membership[producer]
        c_idx = membership[consumer]
        if c_idx < p_idx:
            raise GraphValidationError(
                f"edge {producer!r} -> {consumer!r} goes backwards across blocks "
                f"({graph.blocks[p_idx].name!r} -> {graph.blocks[c_idx].name!r})"
            )
