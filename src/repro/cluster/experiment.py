"""Cluster serving experiments: configure, run, and report multi-host replays.

:func:`run_cluster_serving` is the cluster-level counterpart of
:func:`repro.serve.run_serving`: it builds one :class:`~repro.cluster.host.
Host` per :class:`ClusterConfig` entry around a **shared**
:class:`~repro.serve.registry.ScheduleRegistry` (so replicated hosts share
compiled artifacts, and partitioned hosts compile their own stage subgraphs
through the plan's ``graph_builder``), replays a synthetic workload through
the :class:`~repro.cluster.loop.ClusterLoop`, and folds the outcome into a
:class:`ClusterReport` — the familiar cluster-wide
:class:`~repro.serve.metrics.ServingReport` judged on *end-to-end* records,
plus per-host SLO rows, transfer accounting, and the partition plan.

A ``ClusterConfig(num_hosts=1)`` run reproduces the single-host
:func:`~repro.serve.run_serving` report byte-for-byte — the golden
equivalence the cluster test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..frontend import load
from ..obs.alerts import AlertManager, AlertRule, per_host_alert_rules
from ..obs.metrics import MetricsRegistry
from ..obs.trace import PrefixedTracer, Tracer
from ..serve.fleet import FleetSpec
from ..serve.metrics import ServingReport, build_report, percentile
from ..serve.registry import ScheduleRegistry
from ..serve.service import InferenceService, ServingConfig
from ..serve.traffic import TrafficConfig, TrafficGenerator
from .host import Host, HostSpec
from .link import LinkModel
from .loop import ClusterLoop, ClusterOutcome, TransferStats
from .partition import PartitionPlan, partition_graph
from .router import ClusterRouter, get_cluster_router

__all__ = ["ClusterConfig", "ClusterReport", "run_cluster_serving"]


@dataclass(frozen=True)
class ClusterConfig:
    """Declaration of one simulated cluster.

    ``serving`` is the per-host template: every host serves with its fleet,
    batching policy, ladder, router and admission policy, unless
    ``host_fleets`` overrides the fleet per host.  Under ``partition`` the
    model is cut into ``num_hosts`` pipeline stages (stage ``k`` pinned to
    host ``k``); otherwise every memory-eligible host serves the whole model
    and the cluster ``router`` spreads arrivals across them.
    """

    serving: ServingConfig
    num_hosts: int = 1
    #: Per-host fleet overrides (FleetSpec | "dev:count,..." each); ``None``
    #: replicates the template's fleet on every host.
    host_fleets: tuple = None
    #: Weight memory per host in GB: one float for all, a per-host tuple
    #: (``None`` entries unbounded), or ``None`` for no bounds anywhere.
    host_memory_gb: "float | tuple | None" = None
    #: Cut the model into ``num_hosts`` pipeline stages, one per host.
    partition: bool = False
    #: Cluster routing policy placing external arrivals on eligible hosts.
    router: "str | ClusterRouter" = "earliest-finish-host"
    #: Inter-host transfer-cost model (or a ``"bw=...,lat=..."`` spec string).
    link: "LinkModel | str" = field(default_factory=LinkModel)

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise ValueError(f"num_hosts must be >= 1, got {self.num_hosts}")
        if self.host_fleets is not None:
            fleets = tuple(FleetSpec.of(fleet) for fleet in self.host_fleets)
            if len(fleets) != self.num_hosts:
                raise ValueError(
                    f"host_fleets has {len(fleets)} entries for "
                    f"{self.num_hosts} hosts"
                )
            object.__setattr__(self, "host_fleets", fleets)
        memory = self.host_memory_gb
        if memory is not None and not isinstance(memory, tuple):
            memory = (float(memory),) * self.num_hosts
        if memory is not None and len(memory) != self.num_hosts:
            raise ValueError(
                f"host_memory_gb has {len(memory)} entries for "
                f"{self.num_hosts} hosts"
            )
        object.__setattr__(self, "host_memory_gb", memory)
        if not isinstance(self.router, ClusterRouter):
            object.__setattr__(
                self, "router", get_cluster_router(self.router).name
            )
        if isinstance(self.link, str):
            object.__setattr__(self, "link", LinkModel.parse(self.link))

    def template_fleet(self) -> FleetSpec:
        """The per-host fleet the template declares (fleet or devices).

        A plain ``devices`` tuple is summarised into per-device counts (first
        occurrence keeps the order) — this fleet only *describes* the host; the
        host's service still runs the template's exact device tuple.
        """
        if self.serving.fleet is not None:
            return self.serving.fleet
        counts: dict[str, int] = {}
        for name in self.serving.devices:
            counts[name] = counts.get(name, 0) + 1
        return FleetSpec(groups=tuple(counts.items()))

    def host_specs(self) -> list[HostSpec]:
        """One :class:`~repro.cluster.host.HostSpec` per host, in id order."""
        template = self.template_fleet()
        specs = []
        for host_id in range(self.num_hosts):
            fleet = (
                self.host_fleets[host_id]
                if self.host_fleets is not None
                else template
            )
            memory = (
                self.host_memory_gb[host_id]
                if self.host_memory_gb is not None
                else None
            )
            specs.append(HostSpec(fleet=fleet, memory_gb=memory))
        return specs


@dataclass
class ClusterReport:
    """Aggregate result of one cluster run.

    ``report`` is the cluster-wide :class:`~repro.serve.metrics.ServingReport`
    over **end-to-end** records (latency from true arrival to final-stage
    completion); for a single-host cluster it is the host's own report,
    untouched.  ``host_reports`` hold each host's local view (stage-level
    records, worker utilisation, scale events, alerts); a host that served
    nothing reports ``None``.
    """

    report: ServingReport
    num_hosts: int
    router: str
    link: LinkModel
    host_specs: list[HostSpec]
    host_reports: list["ServingReport | None"]
    #: End-to-end records grouped by the host that finished each request.
    records_by_host: dict[int, list]
    rejected_by_host: dict[int, list]
    #: External arrivals routed to each host id.
    routed: dict[int, int]
    transfers: TransferStats
    plan: "PartitionPlan | None" = None
    #: Cluster-level counters (routing, transfers), separate from host metrics.
    cluster_metrics: "MetricsRegistry | None" = None

    # -------------------------------------------------------------- attainment
    @property
    def attainment(self) -> float:
        """Cluster-wide SLO attainment over everything the clients offered."""
        slo = self.report.slo_summary
        if slo is not None:
            return slo.attainment_rate
        offered = len(self.report.records) + len(self.report.rejected)
        if not offered:
            return 0.0
        met = sum(1 for record in self.report.records if record.deadline_met)
        return met / offered

    def host_attainment(self, host_id: int) -> "float | None":
        """SLO attainment of the requests host ``host_id`` finished."""
        records = self.records_by_host.get(host_id, [])
        rejected = self.rejected_by_host.get(host_id, [])
        offered = len(records) + len(rejected)
        if not offered:
            return None
        met = sum(1 for record in records if record.deadline_met)
        return met / offered

    # ------------------------------------------------------------------ pretty
    def _host_row(self, host_id: int) -> str:
        spec = self.host_specs[host_id]
        records = self.records_by_host.get(host_id, [])
        rejected = self.rejected_by_host.get(host_id, [])
        prefix = f"host{host_id}  : {spec.describe()}"
        host_report = self.host_reports[host_id]
        if not records and not rejected:
            if host_report is None:
                return f"{prefix} — idle"
            # An intermediate pipeline stage: it served stage requests but
            # finished no end-to-end journeys of its own.
            busy = ""
            if host_report.worker_summary:
                mean_busy = sum(
                    row["utilization"] for row in host_report.worker_summary
                ) / len(host_report.worker_summary)
                busy = f", {mean_busy:.1%} busy"
            return (
                f"{prefix} — {host_report.num_requests} stage requests, "
                f"p99 {host_report.latency.p99_ms:.3f} ms stage latency{busy}"
            )
        attainment = self.host_attainment(host_id)
        latencies = [record.latency_ms for record in records]
        p99 = percentile(latencies, 99) if latencies else 0.0
        busy = ""
        if host_report is not None and host_report.worker_summary:
            mean_busy = sum(
                row["utilization"] for row in host_report.worker_summary
            ) / len(host_report.worker_summary)
            busy = f", {mean_busy:.1%} busy"
        return (
            f"{prefix} — {len(records)} served"
            + (f", {len(rejected)} rejected" if rejected else "")
            + f", {attainment:.1%} attainment, p99 {p99:.3f} ms{busy}"
        )

    def describe(self) -> str:
        """The cluster-wide report plus, for real clusters, per-host rows.

        A single-host, transfer-free run prints the base report *only* — the
        spelling stays byte-identical to the single-host serving loop's.
        """
        text = self.report.describe()
        if self.num_hosts == 1 and self.transfers.count == 0:
            return text
        lines = [text]
        lines.append(
            f"cluster   : {self.num_hosts} hosts, router {self.router}, "
            f"link {self.link.describe()}"
        )
        if self.transfers.count:
            lines.append(
                f"transfers : {self.transfers.count} modeled, "
                f"{self.transfers.total_bytes / 1e6:.3f} MB, "
                f"{self.transfers.total_ms:.3f} ms total"
            )
        for host_id in range(self.num_hosts):
            lines.append(self._host_row(host_id))
        if self.plan is not None:
            lines.append(self.plan.describe())
        return "\n".join(lines)


def _host_alerts(alerts, host_id: int, num_hosts: int):
    """Resolve the run's ``alerts`` argument into one host's rule set."""
    if alerts is None:
        return None
    if callable(alerts) and not isinstance(alerts, AlertManager):
        return alerts(host_id)
    if num_hosts == 1:
        return alerts
    rules: Sequence[AlertRule] = (
        alerts.rules if isinstance(alerts, AlertManager) else alerts
    )
    return per_host_alert_rules(host_id, rules)


def _host_report(
    host: Host, result, registry: ScheduleRegistry
) -> "ServingReport | None":
    """One host's local report, assembled exactly as the service does."""
    if not result.records and not result.rejected:
        return None
    service = host.service
    return build_report(
        records=result.records,
        num_batches=result.num_executions,
        batch_size_counts=result.batch_size_counts,
        registry_stats=registry.stats,
        worker_summary=service.pool.summary(metrics=result.metrics),
        group_summary=service.pool.group_summary(metrics=result.metrics),
        router=service.router.name,
        admission=service.admission.name,
        rejected=result.rejected,
        scale_events=result.scale_events,
        alerts=result.alerts,
        metrics=result.metrics,
    )


def run_cluster_serving(
    traffic: TrafficConfig,
    cluster: ClusterConfig,
    registry: "ScheduleRegistry | None" = None,
    warmup: bool = True,
    tracer: "Tracer | None" = None,
    alerts: "Callable[[int], Sequence[AlertRule]] | Sequence[AlertRule] | None" = None,
    watch=None,
    window_ms: float = 50.0,
) -> ClusterReport:
    """Generate traffic, serve it across the cluster, and return the report.

    ``registry`` may be shared across non-partitioned calls; partitioned runs
    build their own (the partition plan registers the stage ``graph_builder``
    at construction).  ``tracer`` records one shared timeline: each host's
    serving spans land on ``hostN``-prefixed tracks (single-host runs stay
    unprefixed), cluster transfers on ``hostN link/send|recv``.  ``alerts``
    is a rule list (single host), or a ``host_id -> rules`` factory — a plain
    list on a multi-host run is copied per host via
    :func:`~repro.obs.per_host_alert_rules`.  ``watch`` only applies to
    single-host runs (N interleaved dashboards would be unreadable).
    """
    serving = cluster.serving
    if traffic.model != serving.model:
        raise ValueError(
            f"traffic is for model {traffic.model!r} but the cluster serves "
            f"{serving.model!r}"
        )
    specs = cluster.host_specs()
    base_graph = load(serving.model, batch_size=1)
    weight_bytes = base_graph.total_weight_bytes()
    input_bytes = base_graph.input_shape.with_batch(1).bytes()

    plan: "PartitionPlan | None" = None
    if cluster.partition and cluster.num_hosts > 1:
        bounds = [spec.memory_gb for spec in specs]
        plan = partition_graph(
            base_graph,
            cluster.num_hosts,
            memory_bounds=bounds if any(b is not None for b in bounds) else None,
            model=serving.model,
        )
    if plan is not None and registry is not None:
        raise ValueError(
            "partitioned cluster runs own their registry (the plan registers "
            "a stage graph_builder); pass registry=None"
        )
    if registry is None:
        registry = ScheduleRegistry(
            root=serving.registry_root,
            variant=serving.variant,
            passes=serving.passes,
            graph_builder=plan.graph_builder() if plan is not None else None,
        )

    if plan is not None:
        eligible = [plan.host_of_stage(0)]
    else:
        eligible = [
            host_id
            for host_id, spec in enumerate(specs)
            if spec.fits(weight_bytes)
        ]
        if not eligible:
            raise ValueError(
                f"no host can hold {serving.model!r} "
                f"({weight_bytes / 1e6:.2f} MB of weights); raise "
                "host_memory_gb or partition the model across hosts"
            )

    hosts: list[Host] = []
    for host_id, spec in enumerate(specs):
        model = plan.stages[host_id].model if plan is not None else serving.model
        if cluster.host_fleets is not None:
            config = replace(serving, model=model, fleet=spec.fleet)
        else:
            # Keep the template's exact pool (fleet or raw device tuple) so a
            # 1-host cluster is the single-host service, bit for bit.
            config = replace(serving, model=model)
        host_tracer = tracer
        if tracer is not None and cluster.num_hosts > 1:
            host_tracer = PrefixedTracer(tracer, f"host{host_id} ")
        service = InferenceService(
            config,
            registry=registry,
            tracer=host_tracer,
            alerts=_host_alerts(alerts, host_id, cluster.num_hosts),
            watch=watch if cluster.num_hosts == 1 else None,
            window_ms=window_ms,
        )
        hosts.append(Host(host_id, spec, service))
    # Every traced service re-pointed the shared registry's engines at its
    # own (prefixed) view; compile spans belong on the shared unprefixed
    # timeline, exactly as in a single-host run.
    if tracer is not None:
        registry.tracer = tracer

    if warmup:
        for host in hosts:
            if plan is not None or host.host_id in eligible:
                host.service.warmup()

    requests = TrafficGenerator(traffic).generate()
    max_samples = min(
        hosts[host_id].service.selector.max_batch_size for host_id in eligible
    )
    for request in requests:
        if request.num_samples > max_samples:
            raise ValueError(
                f"request {request.request_id} carries {request.num_samples} "
                f"samples but the largest specialised batch size is "
                f"{max_samples}"
            )

    router = get_cluster_router(cluster.router)
    loop = ClusterLoop(
        hosts,
        router,
        cluster.link,
        plan=plan,
        eligible_ids=eligible,
        input_bytes_per_sample=input_bytes,
        tracer=tracer,
    )
    outcome = loop.run(requests)
    return _build_cluster_report(cluster, hosts, registry, router, plan, outcome)


def _build_cluster_report(
    cluster: ClusterConfig,
    hosts: list[Host],
    registry: ScheduleRegistry,
    router: ClusterRouter,
    plan: "PartitionPlan | None",
    outcome: ClusterOutcome,
) -> ClusterReport:
    host_reports = [
        _host_report(host, result, registry)
        for host, result in zip(hosts, outcome.host_results)
    ]
    if cluster.num_hosts == 1 and outcome.transfers.count == 0:
        # Pass-through: with no modeled transfers the cluster-wide view of a
        # 1-host cluster *is* the host's report — byte-identical to the plain
        # serving loop's.  (Ingress modeling re-times arrivals on the host, so
        # its local report would hide the clients' ingress wait.)
        assert host_reports[0] is not None
        report = host_reports[0]
    else:
        batch_size_counts: dict[int, int] = {}
        for result in outcome.host_results:
            for size, count in result.batch_size_counts.items():
                batch_size_counts[size] = batch_size_counts.get(size, 0) + count
        merged_alerts = [
            event for result in outcome.host_results for event in result.alerts
        ]
        report = build_report(
            records=outcome.records,
            num_batches=sum(r.num_executions for r in outcome.host_results),
            batch_size_counts=batch_size_counts,
            registry_stats=registry.stats,
            worker_summary=[],
            group_summary=None,
            router=router.name,
            admission=hosts[0].service.admission.name,
            rejected=outcome.rejected,
            alerts=merged_alerts,
        )
    return ClusterReport(
        report=report,
        num_hosts=cluster.num_hosts,
        router=router.name,
        link=cluster.link,
        host_specs=[host.spec for host in hosts],
        host_reports=host_reports,
        records_by_host=outcome.records_by_host,
        rejected_by_host=outcome.rejected_by_host,
        routed=outcome.routed,
        transfers=outcome.transfers,
        plan=plan,
        cluster_metrics=outcome.metrics,
    )
