"""One simulated host: a serving stack plus its ingress NIC horizon.

A :class:`Host` owns a full single-host serving stack — an
:class:`~repro.serve.service.InferenceService` whose
:class:`~repro.serve.loop.ServingLoop` the cluster loop drives through the
incremental API (``begin``/``inject``/``step``/``finish``) — and the one
piece of state that lives *between* hosts: the time its ingress NIC is busy
until.  Requests routed to a host pass through
:meth:`Host.ingress_delivery_ms`, which serialises concurrent deliveries when
the cluster's :class:`~repro.cluster.link.LinkModel` models ingress (and is
the identity function when it does not, keeping a 1-host cluster
byte-identical to the plain loop).

:class:`HostSpec` is the declarative half: the fleet a host runs and the
weight memory it can hold.  The memory bound gates *placement* — a host whose
memory cannot hold a model's weights is not eligible to serve it — which is
what makes partitioned placement win on small-memory fleets (see
:func:`~repro.cluster.partition.partition_graph`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..serve.fleet import FleetSpec

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..serve.loop import LoopState, ServingLoop
    from ..serve.request import InferenceRequest
    from ..serve.service import InferenceService
    from .link import LinkModel

__all__ = ["Host", "HostSpec"]


@dataclass(frozen=True)
class HostSpec:
    """Declaration of one host: its worker fleet and weight memory."""

    fleet: FleetSpec
    #: Weight memory in gigabytes; ``None`` means unbounded.  Placement
    #: (whole-model or a partition stage) must fit this bound.
    memory_gb: float | None = None

    def __post_init__(self) -> None:
        if self.memory_gb is not None and self.memory_gb <= 0:
            raise ValueError(
                f"host memory_gb must be positive, got {self.memory_gb}"
            )

    def fits(self, weight_bytes: int) -> bool:
        """Whether ``weight_bytes`` of resident weights fit this host."""
        return self.memory_gb is None or weight_bytes <= self.memory_gb * 1e9

    def describe(self) -> str:
        text = self.fleet.describe()
        if self.memory_gb is not None:
            text += f" mem={self.memory_gb:g}GB"
        return text


class Host:
    """A serving stack pinned to one host id, advancing on the shared clock.

    The cluster loop is the only writer: it injects arrivals into
    ``host.loop``, steps the loop's internal events in global time order, and
    moves stage tensors between hosts.  The host itself only adds the ingress
    horizon — everything else delegates to the wrapped service.
    """

    def __init__(self, host_id: int, spec: HostSpec, service: "InferenceService"):
        self.host_id = host_id
        self.spec = spec
        self.service = service
        #: Model name this host's loop serves (a stage model when partitioned).
        self.model = service.config.model
        #: Time the host's ingress NIC is busy until (serialised deliveries).
        self._ingress_free_ms = 0.0

    # ------------------------------------------------------------- delegation
    @property
    def loop(self) -> "ServingLoop":
        return self.service.loop

    @property
    def state(self) -> "LoopState":
        return self.service.loop.state

    @property
    def name(self) -> str:
        return f"host{self.host_id}"

    # ---------------------------------------------------------------- ingress
    def reset(self) -> None:
        """Clear inter-run host state (the loop resets itself in ``begin``)."""
        self._ingress_free_ms = 0.0

    def ingress_delivery_ms(
        self, sent_ms: float, num_bytes: float, link: "LinkModel"
    ) -> float:
        """When a tensor sent at ``sent_ms`` finishes arriving on this host.

        With ingress modeling off this is ``sent_ms`` — delivery is
        instantaneous, exactly like the single-host loop.  With it on, the
        NIC serialises: the delivery starts when the NIC frees up and
        occupies it for :meth:`~repro.cluster.link.LinkModel.ingress_ms`.
        """
        if not link.models_ingress:
            return sent_ms
        start_ms = max(sent_ms, self._ingress_free_ms)
        delivery_ms = start_ms + link.ingress_ms(num_bytes)
        self._ingress_free_ms = delivery_ms
        return delivery_ms

    # ------------------------------------------------------- router accessors
    def remaining_work_ms(self, now_ms: float) -> float:
        """Total worker-busy milliseconds still ahead of ``now_ms``."""
        return sum(
            max(0.0, worker.busy_until_ms - now_ms)
            for worker in self.service.pool.workers
        )

    @property
    def pending_samples(self) -> int:
        """Samples in the host loop's forming batch."""
        return self.state.pending_samples

    def predicted_completion_ms(self, request: "InferenceRequest") -> float:
        """Earliest predicted completion of ``request`` on this host."""
        return self.state.predicted_completion_ms(request)

    # ------------------------------------------------------------------ pretty
    def describe(self) -> str:
        return f"{self.name}: {self.spec.describe()}, model {self.model!r}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Host {self.host_id} fleet={self.spec.fleet.describe()!r}>"
