"""Graph partitioning: cut a model into per-host stages with send/recv edges.

Modeled on the two hetr passes of ngraph-style heterogeneous execution:

1. **device assignment** — contiguous block ranges of the graph are assigned
   to hosts, balancing FLOPs under each host's memory bound (blocks execute
   in definition order, so contiguous ranges preserve the graph's block
   semantics);
2. **communication insertion** — at every cut the boundary tensor becomes a
   *recv* placeholder in the downstream stage (keeping the producer's node
   name, so operator input lists need no rewriting) and a *send* obligation
   of the upstream stage.  The transfer itself is costed by
   :class:`~repro.cluster.link.LinkModel` and scheduled by the cluster loop
   as send/recv events between the host loops.

Cuts are only legal where **exactly one tensor crosses** the boundary and
that tensor is produced in the immediately preceding stage — this keeps every
stage a valid single-input :class:`~repro.ir.graph.Graph`
(:func:`~repro.ir.validate.validate_graph` requires exactly one placeholder)
and makes the cluster handoff a simple chain.  Block-structured CNNs cut
naturally this way: each block consumes its predecessor's single output.

The partitioner searches all legal cut positions with a small dynamic
program minimising the maximum per-stage FLOPs, subject to per-host memory
bounds; ties break lexicographically so the plan is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..ir.graph import Graph
from ..ir.ops import Placeholder, operator_from_config
from ..ir.validate import validate_graph
from ..frontend import load

__all__ = ["PartitionError", "StageSpec", "PartitionPlan", "partition_graph"]


class PartitionError(ValueError):
    """No legal partition exists for the requested stages/memory bounds."""


@dataclass(frozen=True)
class StageSpec:
    """One contiguous block range of the model, pinned to one host."""

    index: int
    #: Stage model name served by the owning host, e.g. ``"squeezenet.stage1"``.
    model: str
    #: Host id this stage is pinned to (stage ``k`` runs on host ``k``).
    host: int
    #: ``[start, stop)`` range into the source graph's block list.
    block_range: tuple[int, int]
    #: Name of the node producing this stage's input tensor (the original
    #: placeholder for stage 0); it becomes the stage's recv placeholder.
    input_node: str
    #: Per-sample bytes of the tensor this stage receives.
    recv_bytes: int
    #: FLOPs of the stage at batch size 1 (the balancing objective).
    flops: int
    #: Weight bytes resident on the stage's host (batch-invariant).
    weight_bytes: int


@dataclass(frozen=True)
class PartitionPlan:
    """A model cut into per-host stages, ready to build stage subgraphs."""

    model: str
    stages: tuple[StageSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_builder", load)
        object.__setattr__(self, "_cache", {})

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def stage_models(self) -> list[str]:
        """Stage model names in pipeline order."""
        return [stage.model for stage in self.stages]

    def stage_for_model(self, model: str) -> StageSpec | None:
        for stage in self.stages:
            if stage.model == model:
                return stage
        return None

    def host_of_stage(self, index: int) -> int:
        return self.stages[index].host

    # ------------------------------------------------- communication insertion
    def stage_graph(self, index: int, batch: int) -> Graph:
        """Build stage ``index``'s subgraph at ``batch``.

        Stage 0 keeps the source graph's placeholder; every later stage gets
        a recv :class:`~repro.ir.ops.Placeholder` named after the boundary
        producer, so downstream operators' input lists work unchanged.  The
        result is a validated single-input graph the engine compiles like any
        model.
        """
        key = (index, batch)
        cached = self._cache.get(key)  # type: ignore[attr-defined]
        if cached is not None:
            return cached
        stage = self.stages[index]
        base = self._builder(self.model, batch)  # type: ignore[attr-defined]
        if self.num_stages == 1:
            # A single stage is the whole model — serve the zoo's graph
            # as-is so a trivial partition is indistinguishable from none.
            self._cache[key] = base  # type: ignore[attr-defined]
            return base
        start, stop = stage.block_range
        clone = Graph(stage.model)
        if index == 0:
            for ph in base.placeholders:
                assert ph.output_shape is not None
                clone.add_node(Placeholder(ph.name, ph.output_shape))
        else:
            producer = base.nodes[stage.input_node]
            assert producer.output_shape is not None
            clone.add_node(Placeholder(stage.input_node, producer.output_shape))
        for block in base.blocks[start:stop]:
            new_block = clone.add_block(block.name)
            for name in block.node_names:
                op = operator_from_config(base.nodes[name].to_config())
                clone.add_node(op, new_block)
        validate_graph(clone)
        self._cache[key] = clone  # type: ignore[attr-defined]
        return clone

    def graph_builder(self) -> Callable[[str, int], Graph]:
        """A registry ``graph_builder`` resolving stage models and the rest.

        Plug this into a shared :class:`~repro.serve.registry.ScheduleRegistry`
        and every host compiles its *own* subgraph per device — stage models
        hit :meth:`stage_graph`, anything else falls through to the normal
        model zoo.
        """
        stage_by_model = {stage.model: stage.index for stage in self.stages}

        def build(model: str, batch: int) -> Graph:
            stage_index = stage_by_model.get(model)
            if stage_index is not None:
                return self.stage_graph(stage_index, batch)
            return self._builder(model, batch)  # type: ignore[attr-defined]

        return build

    # ------------------------------------------------------------------ pretty
    def describe(self) -> str:
        """One line per stage: blocks, FLOPs, resident weights, recv bytes."""
        lines = [f"partition of {self.model!r}: {self.num_stages} stage(s)"]
        for stage in self.stages:
            start, stop = stage.block_range
            lines.append(
                f"  stage {stage.index} -> host {stage.host}: "
                f"blocks [{start}:{stop}), {stage.flops / 1e6:.1f} MFLOPs, "
                f"{stage.weight_bytes / 1e6:.2f} MB weights, "
                f"recv {stage.recv_bytes} B/sample from {stage.input_node!r}"
            )
        return "\n".join(lines)


def partition_graph(
    graph: Graph,
    num_stages: int,
    memory_bounds: Sequence[float | None] | None = None,
    model: str | None = None,
) -> PartitionPlan:
    """Cut ``graph`` into ``num_stages`` contiguous stages, one per host.

    ``memory_bounds`` gives each host's weight capacity in **gigabytes**
    (``None`` entries are unbounded); stage ``k`` must fit host ``k``.  The
    returned plan minimises the maximum per-stage FLOPs over all legal cut
    positions (single crossing tensor, produced by the preceding stage),
    breaking ties lexicographically — same graph, same bounds, same plan.
    """
    model = model or graph.name
    blocks = graph.blocks
    num_blocks = len(blocks)
    if num_stages < 1:
        raise PartitionError(f"num_stages must be >= 1, got {num_stages}")
    if num_stages > num_blocks:
        raise PartitionError(
            f"cannot cut {model!r} into {num_stages} stages: "
            f"only {num_blocks} blocks"
        )
    bounds: list[float | None] = list(memory_bounds or [])
    if memory_bounds is not None and len(bounds) != num_stages:
        raise PartitionError(
            f"memory_bounds has {len(bounds)} entries for {num_stages} stages"
        )
    if not bounds:
        bounds = [None] * num_stages

    # Block index of every node; placeholders ride with stage 0 (index -1).
    block_index: dict[str, int] = {}
    for position, block in enumerate(blocks):
        for name in block.node_names:
            block_index[name] = position
    for ph in graph.placeholders:
        block_index[ph.name] = -1

    def block_nodes(start: int, stop: int) -> list[str]:
        return [name for block in blocks[start:stop] for name in block.node_names]

    # Crossing producers at each cut position c: nodes before c consumed at
    # or after c.  A cut is legal only when exactly one tensor crosses.
    cut_node: dict[int, str] = {}
    for cut in range(1, num_blocks):
        crossing: list[str] = []
        after = set(block_nodes(cut, num_blocks))
        for name in graph.nodes:
            if block_index[name] >= cut:
                continue
            if any(consumer in after for consumer in graph.successors(name)):
                crossing.append(name)
        if len(crossing) == 1:
            cut_node[cut] = crossing[0]

    flops_of = [
        sum(graph.nodes[name].flops() for name in block.node_names)
        for block in blocks
    ]
    weights_of = [
        sum(graph.nodes[name].weight_bytes() for name in block.node_names)
        for block in blocks
    ]

    def stage_cost(start: int, stop: int) -> int:
        return sum(flops_of[start:stop])

    def stage_weights(start: int, stop: int) -> int:
        return sum(weights_of[start:stop])

    def feasible(start: int, stop: int, host: int) -> bool:
        if start > 0:
            if start not in cut_node:
                return False
            # External inputs of the stage must be exactly the cut tensor.
            inside = set(block_nodes(start, stop))
            for name in inside:
                for parent in graph.nodes[name].inputs:
                    if parent not in inside and parent != cut_node[start]:
                        return False
        if stop < num_blocks:
            if stop not in cut_node:
                return False
            # The next stage's input must be produced *in this stage* so the
            # handoff is a chain (stage k sends, stage k+1 receives).
            producer_block = block_index[cut_node[stop]]
            lower = -1 if start == 0 else start
            if not lower <= producer_block < stop:
                return False
        bound = bounds[host]
        if bound is not None and stage_weights(start, stop) > bound * 1e9:
            return False
        return True

    # Dynamic program over cut positions: minimise the max stage FLOPs,
    # breaking ties by lexicographically smallest cut tuple (deterministic).
    memo: dict[tuple[int, int], tuple[int, tuple[int, ...]] | None] = {}

    def solve(host: int, start: int) -> tuple[int, tuple[int, ...]] | None:
        key = (host, start)
        if key in memo:
            return memo[key]
        if host == num_stages - 1:
            result = (
                (stage_cost(start, num_blocks), ())
                if feasible(start, num_blocks, host)
                else None
            )
            memo[key] = result
            return result
        best: tuple[int, tuple[int, ...]] | None = None
        remaining = num_stages - host - 1
        for stop in range(start + 1, num_blocks - remaining + 1):
            if not feasible(start, stop, host):
                continue
            rest = solve(host + 1, stop)
            if rest is None:
                continue
            candidate = (max(stage_cost(start, stop), rest[0]), (stop,) + rest[1])
            if best is None or candidate < best:
                best = candidate
        memo[key] = best
        return best

    solution = solve(0, 0)
    if solution is None:
        raise PartitionError(
            f"no legal {num_stages}-stage partition of {model!r}: every cut "
            "either crosses more than one tensor or violates a host memory "
            f"bound (bounds: {bounds})"
        )
    cuts = (0,) + solution[1] + (num_blocks,)

    input_bytes = graph.input_shape.with_batch(1).bytes()
    stages: list[StageSpec] = []
    for index in range(num_stages):
        start, stop = cuts[index], cuts[index + 1]
        if index == 0:
            input_node = graph.placeholders[0].name
            recv_bytes = input_bytes
        else:
            input_node = cut_node[start]
            shape = graph.nodes[input_node].output_shape
            assert shape is not None
            recv_bytes = shape.with_batch(1).bytes()
        stages.append(
            StageSpec(
                index=index,
                model=model if num_stages == 1 else f"{model}.stage{index}",
                host=index,
                block_range=(start, stop),
                input_node=input_node,
                recv_bytes=recv_bytes,
                flops=stage_cost(start, stop),
                weight_bytes=stage_weights(start, stop),
            )
        )
    return PartitionPlan(model=model, stages=tuple(stages))
