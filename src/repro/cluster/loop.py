"""The cluster co-simulation: N host loops advancing on one virtual clock.

:class:`ClusterLoop` interleaves the discrete-event loops of its
:class:`~repro.cluster.host.Host`\\ s with a cluster-level event heap of its
own — request routing/delivery and partitioned stage handoffs — so every
event in the whole cluster processes in global time order:

* the earliest **cluster event** (an arrival to route, a delivery landing on
  a host) wins ties against host-internal events, exactly as arrivals beat
  same-time completions inside :meth:`~repro.serve.loop.ServingLoop.run`;
* otherwise the host with the earliest internal event steps once (ties break
  by host id), which may in turn schedule new cluster events — a completed
  stage schedules its tensor's send/recv to the next stage's host, costed by
  the :class:`~repro.cluster.link.LinkModel`.

Driven this way with one host, the default link and no partition, the
injected arrivals reproduce :meth:`ServingLoop.run`'s event sequence
*exactly* — a ``--cluster 1`` run is byte-identical to the single-host loop,
which is the regression anchor the cluster layer is tested against.

Every request is tracked as a :class:`_Journey` from external arrival to its
final stage's completion; the loop rebuilds **end-to-end** records against
the original requests (latency measured from true arrival, not stage
arrival), so cluster-wide SLO attainment is judged on what the client saw.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..serve.loop import LoopResult
from ..serve.request import InferenceRequest, RejectedRequest, RequestRecord

if TYPE_CHECKING:  # pragma: no cover - types only
    from .host import Host
    from .link import LinkModel
    from .partition import PartitionPlan
    from .router import ClusterRouter

__all__ = ["ClusterLoop", "ClusterOutcome", "TransferStats"]

#: Cluster event kinds, in tie-break order at equal virtual time: external
#: arrivals route first, then deliveries (ingress/handoff) land.
_ROUTE, _DELIVER = 0, 1


@dataclass
class TransferStats:
    """Modeled inter-host transfers of one cluster run."""

    count: int = 0
    total_bytes: float = 0.0
    total_ms: float = 0.0


@dataclass
class ClusterOutcome:
    """Everything one cluster run produced, ready for report building."""

    #: End-to-end records against the *original* requests, host-major order.
    records: list[RequestRecord] = field(default_factory=list)
    #: Rejections mapped back to the original requests.
    rejected: list[RejectedRequest] = field(default_factory=list)
    #: End-to-end records attributed to the host that *finished* each request
    #: (its final stage's host), for per-host SLO rows.
    records_by_host: dict[int, list[RequestRecord]] = field(default_factory=dict)
    #: Rejections attributed to the rejecting host.
    rejected_by_host: dict[int, list[RejectedRequest]] = field(default_factory=dict)
    #: Per-host loop results, in host order.
    host_results: list[LoopResult] = field(default_factory=list)
    #: External arrivals routed to each host id.
    routed: dict[int, int] = field(default_factory=dict)
    transfers: TransferStats = field(default_factory=TransferStats)
    #: Cluster-level counters (routing, transfers), separate from the hosts'.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


class _Journey:
    """One request's path through the cluster: stages, records, outcome."""

    __slots__ = ("request", "stage", "first_record", "final_record")

    def __init__(self, request: InferenceRequest):
        self.request = request
        self.stage = 0
        self.first_record: RequestRecord | None = None
        self.final_record: RequestRecord | None = None


class ClusterLoop:
    """Drive requests across hosts: route → deliver → serve → hand off.

    Parameters
    ----------
    hosts:
        The cluster's hosts, in host-id order.
    router:
        The :class:`~repro.cluster.router.ClusterRouter` placing external
        arrivals on eligible hosts.
    link:
        Transfer-cost model for ingress deliveries and stage handoffs.
    plan:
        Optional :class:`~repro.cluster.partition.PartitionPlan`; when set,
        external arrivals enter the stage-0 host and every stage completion
        hands its boundary tensor to the next stage's host over the link.
    eligible_ids:
        Host ids external arrivals may be routed to (placement already
        filtered: stage-0 host under partitioning, memory-fitting hosts
        otherwise).  Defaults to every host.
    input_bytes_per_sample:
        Bytes of one input sample, for ingress-delivery costing.
    tracer:
        The *shared, unprefixed* tracer; the loop writes cluster-level
        send/recv transfer spans on ``hostN link/...`` tracks (hosts write
        their own rows through their prefixed views).
    """

    def __init__(
        self,
        hosts: Sequence["Host"],
        router: "ClusterRouter",
        link: "LinkModel",
        plan: "PartitionPlan | None" = None,
        eligible_ids: Sequence[int] | None = None,
        input_bytes_per_sample: int = 0,
        tracer: Tracer | None = None,
    ):
        self.hosts = list(hosts)
        self.router = router
        self.link = link
        self.plan = plan
        self.eligible = [
            self.hosts[i]
            for i in (
                eligible_ids
                if eligible_ids is not None
                else range(len(self.hosts))
            )
        ]
        if not self.eligible:
            raise ValueError("no host is eligible to serve external arrivals")
        self.input_bytes_per_sample = input_bytes_per_sample
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Mutable run state.
        self._events: list[tuple] = []
        self._seq = itertools.count()
        self._journeys: dict[int, _Journey] = {}
        self._outcome = ClusterOutcome()

    # ----------------------------------------------------------------- driving
    def run(self, requests: Sequence[InferenceRequest]) -> ClusterOutcome:
        """Replay ``requests`` across the cluster and return what happened."""
        ordered = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        ids = {request.request_id for request in ordered}
        if len(ids) != len(ordered):
            raise ValueError(
                "cluster runs track requests by id; request_ids must be unique"
            )
        self._events = []
        self._seq = itertools.count()
        self._journeys = {}
        self._outcome = ClusterOutcome()
        for host in self.hosts:
            host.reset()
            host.loop.completion_listener = self._listener_for(host)
            host.loop.begin()
        if self.plan is not None and hasattr(self.router, "plan"):
            self.router.plan = self.plan
        for request in ordered:
            self._push(request.arrival_ms, _ROUTE, request)

        while True:
            next_host = None
            host_ms = float("inf")
            for host in self.hosts:
                event_ms = host.loop.next_event_ms
                if event_ms < host_ms:
                    host_ms, next_host = event_ms, host
            if self._events and self._events[0][0] <= host_ms:
                time_ms, _, action, payload = heapq.heappop(self._events)
                if action == _ROUTE:
                    self._route(time_ms, payload)
                else:
                    self._deliver(time_ms, *payload)
                continue
            if next_host is None:
                break
            if not self._events:
                # No known future arrival anywhere: let every host see an
                # empty horizon so trailing batch closes read "drain" and
                # autoscale checks stop re-arming (a later stage handoff
                # re-raises the count through inject).
                for host in self.hosts:
                    host.loop._arrivals_left = 0
            next_host.loop.step()

        for host in self.hosts:
            self._outcome.host_results.append(host.loop.finish())
            host.loop.completion_listener = None
        self._assemble()
        return self._outcome

    def _push(self, time_ms: float, action: int, payload) -> None:
        heapq.heappush(self._events, (time_ms, next(self._seq), action, payload))

    # ---------------------------------------------------------------- routing
    def _route(self, now_ms: float, request: InferenceRequest) -> None:
        host = self.router.pick(self.eligible, request, now_ms)
        self._outcome.routed[host.host_id] = (
            self._outcome.routed.get(host.host_id, 0) + 1
        )
        self._outcome.metrics.counter(
            "cluster.requests.routed", "external arrivals routed, by host"
        ).inc(host=host.name)
        self._journeys[request.request_id] = _Journey(request)
        sub = request
        if self.plan is not None and self.plan.num_stages > 1:
            sub = self._stage_request(request, 0, now_ms)
        num_bytes = self.input_bytes_per_sample * request.num_samples
        delivery_ms = host.ingress_delivery_ms(now_ms, num_bytes, self.link)
        if delivery_ms > now_ms:
            self._count_transfer(None, host, now_ms, delivery_ms, num_bytes)
            sub = self._retime(sub, delivery_ms)
            self._push(delivery_ms, _DELIVER, (host.host_id, sub))
        else:
            host.loop.inject(sub, arrivals_left=len(self._events))

    def _deliver(self, now_ms: float, host_id: int, sub: InferenceRequest) -> None:
        self.hosts[host_id].loop.inject(sub, arrivals_left=len(self._events))

    def _stage_request(
        self, request: InferenceRequest, stage: int, arrival_ms: float
    ) -> InferenceRequest:
        """The subrequest stage ``stage`` serves: stage model, residual deadline."""
        assert self.plan is not None
        spec = self.plan.stages[stage]
        deadline_ms = request.deadline_ms
        if deadline_ms is not None:
            deadline_ms = max(0.0, request.absolute_deadline_ms - arrival_ms)
        return replace(
            request, model=spec.model, arrival_ms=arrival_ms, deadline_ms=deadline_ms
        )

    @staticmethod
    def _retime(request: InferenceRequest, arrival_ms: float) -> InferenceRequest:
        """The same request arriving later (ingress delay), deadline absolute."""
        deadline_ms = request.deadline_ms
        if deadline_ms is not None:
            deadline_ms = max(0.0, request.absolute_deadline_ms - arrival_ms)
        return replace(request, arrival_ms=arrival_ms, deadline_ms=deadline_ms)

    # --------------------------------------------------------------- handoffs
    def _listener_for(self, host: "Host"):
        def on_completion(records: Sequence[RequestRecord]) -> None:
            for record in records:
                self._on_stage_complete(host, record)

        return on_completion

    def _on_stage_complete(self, host: "Host", record: RequestRecord) -> None:
        journey = self._journeys.get(record.request.request_id)
        if journey is None:  # pragma: no cover - defensive
            return
        if journey.first_record is None:
            journey.first_record = record
        last_stage = 0 if self.plan is None else self.plan.num_stages - 1
        if journey.stage >= last_stage:
            journey.final_record = record
            return
        assert self.plan is not None
        next_stage = self.plan.stages[journey.stage + 1]
        src, dst = self.hosts[host.host_id], self.hosts[next_stage.host]
        num_bytes = next_stage.recv_bytes * journey.request.num_samples
        sent_ms = record.completion_ms
        delivery_ms = sent_ms + self.link.transfer_ms(
            num_bytes, src.host_id, dst.host_id
        )
        journey.stage += 1
        self._count_transfer(src, dst, sent_ms, delivery_ms, num_bytes)
        sub = self._stage_request(journey.request, journey.stage, delivery_ms)
        self._push(delivery_ms, _DELIVER, (dst.host_id, sub))

    def _count_transfer(
        self,
        src: "Host | None",
        dst: "Host",
        sent_ms: float,
        delivery_ms: float,
        num_bytes: float,
    ) -> None:
        """Account one modeled transfer (stage handoff or ingress delivery)."""
        stats = self._outcome.transfers
        stats.count += 1
        stats.total_bytes += num_bytes
        stats.total_ms += delivery_ms - sent_ms
        pair = f"{src.name if src is not None else 'client'}->{dst.name}"
        metrics = self._outcome.metrics
        metrics.counter(
            "cluster.transfers", "modeled inter-host transfers, by link"
        ).inc(link=pair)
        metrics.histogram(
            "cluster.transfer.ms", "modeled transfer duration"
        ).observe(delivery_ms - sent_ms, link=pair)
        metrics.histogram(
            "cluster.transfer.bytes", "modeled transfer payload"
        ).observe(num_bytes, link=pair)
        if self.tracer:
            args = {
                "bytes": num_bytes,
                "from": src.name if src is not None else "client",
                "to": dst.name,
            }
            if src is not None:
                self.tracer.add_span(
                    f"send {num_bytes:g}B", f"{src.name} link/send",
                    sent_ms, delivery_ms, category="transfer", args=args,
                )
            self.tracer.add_span(
                f"recv {num_bytes:g}B", f"{dst.name} link/recv",
                sent_ms, delivery_ms, category="transfer", args=args,
            )

    # --------------------------------------------------------------- assembly
    def _assemble(self) -> None:
        """Rebuild end-to-end records/rejections against the original requests.

        Host-major, dispatch-order iteration keeps the record list — and
        every floating-point fold downstream — deterministic, and for a
        1-host no-ingress cluster makes it *the host's own record list*, so
        the pass-through report stays byte-identical to the plain loop's.
        """
        outcome = self._outcome
        for host, result in zip(self.hosts, outcome.host_results):
            host_records = outcome.records_by_host.setdefault(host.host_id, [])
            host_rejected = outcome.rejected_by_host.setdefault(host.host_id, [])
            for record in result.records:
                journey = self._journeys.get(record.request.request_id)
                if journey is None or journey.final_record is not record:
                    continue
                if record.request is journey.request:
                    end_to_end = record
                else:
                    first = journey.first_record
                    assert first is not None
                    end_to_end = RequestRecord(
                        request=journey.request,
                        batched_ms=first.batched_ms,
                        dispatch_ms=first.dispatch_ms,
                        completion_ms=record.completion_ms,
                        executed_batch_size=record.executed_batch_size,
                        worker_id=record.worker_id,
                        device=record.device,
                    )
                outcome.records.append(end_to_end)
                host_records.append(end_to_end)
            for rejection in result.rejected:
                journey = self._journeys.get(rejection.request.request_id)
                if journey is None or rejection.request is journey.request:
                    mapped = rejection
                else:
                    mapped = RejectedRequest(
                        request=journey.request,
                        rejected_ms=rejection.rejected_ms,
                        reason=rejection.reason,
                    )
                outcome.rejected.append(mapped)
                host_rejected.append(mapped)
