"""Inter-host link model: bandwidth + latency costs for cluster transfers.

The paper's transfer-cost model stops at one device pool — tensors move
between stages over PCIe under a contention factor.  :class:`LinkModel`
extends it one level up: moving a tensor **between hosts** costs a per-pair
propagation latency plus serialisation time at a per-pair bandwidth, and
moving a request's input tensor **onto** a host can additionally be bounded
by the host's ingress NIC, which serialises concurrent deliveries.

Two distinct costs, two distinct mechanisms:

* :meth:`LinkModel.transfer_ms` — point-to-point host→host cost used for
  partitioned stage handoffs (send/recv boundary tensors).  Modeled as
  uncontended: each ordered host pair is its own link.
* :meth:`LinkModel.ingress_ms` — the serialised per-host NIC.  ``None``
  (the default) disables ingress modeling entirely: requests materialise on
  their host at arrival time, exactly like the single-host loop.  When set,
  the cluster loop serialises deliveries per host (see
  :meth:`~repro.cluster.host.Host.ingress_delivery_ms`) — the physical
  reason a scale-out cluster can beat one big host of equal compute.

All sizes are bytes, all times milliseconds, bandwidths GB/s
(1 GB/s == 1e6 bytes per millisecond).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["LinkModel"]

#: 1 GB/s expressed in bytes per millisecond.
_BYTES_PER_MS_PER_GBS = 1e6


@dataclass(frozen=True)
class LinkModel:
    """Bandwidth + latency per host pair, plus an optional ingress NIC."""

    #: Default host-to-host bandwidth (GB/s) — 100 GbE worth of payload.
    bandwidth_gb_s: float = 12.5
    #: Default host-to-host propagation latency (ms).
    latency_ms: float = 0.05
    #: Ingress NIC bandwidth per host (GB/s); ``None`` disables ingress
    #: modeling (deliveries are instantaneous, as in the single-host loop).
    ingress_gb_s: float | None = None
    #: Fixed per-delivery ingress latency (ms), applied when ingress is on.
    ingress_latency_ms: float = 0.0
    #: Per-ordered-pair overrides: ``{(src, dst): (gb_s, latency_ms)}``.
    pair_overrides: Mapping[tuple[int, int], tuple[float, float]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.bandwidth_gb_s <= 0:
            raise ValueError(
                f"link bandwidth must be positive, got {self.bandwidth_gb_s}"
            )
        if self.latency_ms < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency_ms}")
        if self.ingress_gb_s is not None and self.ingress_gb_s <= 0:
            raise ValueError(
                f"ingress bandwidth must be positive, got {self.ingress_gb_s}"
            )
        if self.ingress_latency_ms < 0:
            raise ValueError(
                f"ingress latency must be >= 0, got {self.ingress_latency_ms}"
            )

    # ------------------------------------------------------------------- costs
    def pair(self, src: int, dst: int) -> tuple[float, float]:
        """The ``(bandwidth_gb_s, latency_ms)`` of the ordered host pair."""
        return self.pair_overrides.get((src, dst), (self.bandwidth_gb_s, self.latency_ms))

    def transfer_ms(self, num_bytes: float, src: int, dst: int) -> float:
        """Host→host transfer cost of ``num_bytes`` (0 on the same host)."""
        if src == dst:
            return 0.0
        bandwidth, latency = self.pair(src, dst)
        return latency + num_bytes / (bandwidth * _BYTES_PER_MS_PER_GBS)

    @property
    def models_ingress(self) -> bool:
        """Whether per-host ingress serialisation is enabled."""
        return self.ingress_gb_s is not None

    def ingress_ms(self, num_bytes: float) -> float:
        """Serialisation time of one delivery on a host's ingress NIC."""
        if self.ingress_gb_s is None:
            return 0.0
        return self.ingress_latency_ms + num_bytes / (
            self.ingress_gb_s * _BYTES_PER_MS_PER_GBS
        )

    # ------------------------------------------------------------------ pretty
    def describe(self) -> str:
        """Compact human-readable form for reports, e.g. ``12.5GB/s+0.05ms``."""
        text = f"{self.bandwidth_gb_s:g}GB/s+{self.latency_ms:g}ms"
        if self.models_ingress:
            text += f", ingress {self.ingress_gb_s:g}GB/s"
            if self.ingress_latency_ms:
                text += f"+{self.ingress_latency_ms:g}ms"
        return text

    # ------------------------------------------------------------------- parse
    @classmethod
    def parse(cls, spec: str) -> "LinkModel":
        """Parse a CLI spec like ``"bw=10,lat=0.05,ingress=2,ingress-lat=0.1"``.

        Unknown keys raise; every key is optional and falls back to the
        dataclass default.  An empty spec returns the default model.
        """
        kwargs: dict[str, float] = {}
        keys = {
            "bw": "bandwidth_gb_s",
            "lat": "latency_ms",
            "ingress": "ingress_gb_s",
            "ingress-lat": "ingress_latency_ms",
        }
        for entry in filter(None, (part.strip() for part in spec.split(","))):
            key, sep, value = entry.partition("=")
            if not sep or key.strip() not in keys:
                raise ValueError(
                    f"malformed link entry {entry!r} in {spec!r}; expected "
                    f"key=value with keys {sorted(keys)}"
                )
            try:
                kwargs[keys[key.strip()]] = float(value)
            except ValueError:
                raise ValueError(
                    f"link value in entry {entry!r} must be a number, "
                    f"in {spec!r}"
                ) from None
        return cls(**kwargs)
