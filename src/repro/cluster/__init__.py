"""Multi-host serving: partition, route, and co-simulate a cluster of hosts.

The single-host :mod:`repro.serve` loop answers "how does one pool of
workers serve this trace?"; this package answers the next question the paper's
serving story raises — how does a *cluster* of such hosts serve it, when
requests must first be placed on a host, large models must be cut across
per-host memory bounds, and every inter-host hop pays a modeled transfer cost?

* :mod:`repro.cluster.host` — a :class:`Host` wraps one
  :class:`~repro.serve.service.InferenceService` (its own worker pool, loop,
  and alert rules) plus the :class:`HostSpec` declaring its fleet and memory.
* :mod:`repro.cluster.link` — the :class:`LinkModel` costing inter-host
  transfers (bandwidth + latency per host pair, optional ingress NIC
  serialization).
* :mod:`repro.cluster.partition` — device-assignment + communication-
  insertion over a :mod:`repro.ir` graph: contiguous stages balanced by
  FLOPs under per-host weight-memory bounds, send/recv boundaries at
  single-tensor cuts.
* :mod:`repro.cluster.router` — cluster-level placement policies
  (earliest-finish, least-loaded, round-robin, partition-affinity).
* :mod:`repro.cluster.loop` — the :class:`ClusterLoop` co-simulation: every
  host's discrete-event loop advances on one shared virtual clock, with
  routing and stage handoffs interleaved at exact event order.
* :mod:`repro.cluster.experiment` — :func:`run_cluster_serving` and the
  :class:`ClusterReport` behind ``ios-bench serve --cluster N``.
"""

from .experiment import ClusterConfig, ClusterReport, run_cluster_serving
from .host import Host, HostSpec
from .link import LinkModel
from .loop import ClusterLoop, ClusterOutcome, TransferStats
from .partition import PartitionError, PartitionPlan, StageSpec, partition_graph
from .router import (
    CLUSTER_ROUTERS,
    ClusterRouter,
    EarliestFinishHostRouter,
    LeastLoadedHostRouter,
    PartitionAffinityRouter,
    RoundRobinHostRouter,
    get_cluster_router,
    list_cluster_routers,
)

__all__ = [
    "CLUSTER_ROUTERS",
    "ClusterConfig",
    "ClusterLoop",
    "ClusterOutcome",
    "ClusterReport",
    "ClusterRouter",
    "EarliestFinishHostRouter",
    "Host",
    "HostSpec",
    "LeastLoadedHostRouter",
    "LinkModel",
    "PartitionAffinityRouter",
    "PartitionError",
    "PartitionPlan",
    "RoundRobinHostRouter",
    "StageSpec",
    "TransferStats",
    "get_cluster_router",
    "list_cluster_routers",
    "partition_graph",
    "run_cluster_serving",
]
