"""Cluster-level routing: pick the host a request is dispatched to.

The single-host :mod:`repro.serve.fleet` routers pick a *worker* for a formed
batch; these policies act one level up, picking a *host* for each arriving
request before it ever reaches a loop.  The two layers compose: the cluster
router spreads requests over hosts, then each host's worker router places the
batches its loop forms.

Policies mirror the fleet registry idiom — a ``name`` attribute, a
``CLUSTER_ROUTERS`` table, :func:`get_cluster_router` /
:func:`list_cluster_routers` — so the CLI spelling is uniform
(``--cluster-router earliest-finish-host``).

``eligible`` is the placement-filtered host list: under partitioning only the
stage-0 host receives external arrivals, and under per-host memory bounds
only hosts whose memory holds the model's weights are candidates.  Routers
never second-guess eligibility.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..serve.request import InferenceRequest
    from .host import Host

__all__ = [
    "ClusterRouter",
    "EarliestFinishHostRouter",
    "LeastLoadedHostRouter",
    "PartitionAffinityRouter",
    "RoundRobinHostRouter",
    "CLUSTER_ROUTERS",
    "get_cluster_router",
    "list_cluster_routers",
]


class ClusterRouter:
    """Dispatch policy choosing the host an arriving request is sent to.

    Subclasses implement :meth:`pick` over the eligible hosts.  Routers may
    keep state (round-robin does); the cluster loop owns one instance per
    run, so state never leaks between runs.
    """

    #: Registry name; subclasses override.
    name = "cluster-router"

    def pick(
        self,
        hosts: Sequence["Host"],
        request: "InferenceRequest",
        now_ms: float,
    ) -> "Host":
        """Return the host that should serve ``request`` arriving now."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class EarliestFinishHostRouter(ClusterRouter):
    """Minimise the host's predicted completion of the request (the default).

    Each host predicts the request's completion with the same arithmetic its
    own earliest-finish worker router uses — batching wait bound, queued work
    ahead, per-worker horizons plus the device execution estimate — so a host
    with fast idle silicon wins over a backlogged one even when queue depths
    look equal.  Ties break by host id.
    """

    name = "earliest-finish-host"

    def pick(self, hosts, request, now_ms):
        """The host with the earliest predicted request completion."""
        return min(
            hosts,
            key=lambda host: (host.predicted_completion_ms(request), host.host_id),
        )


class LeastLoadedHostRouter(ClusterRouter):
    """Pick the host with the least outstanding work right now.

    Ranks by remaining worker-busy milliseconds, then samples waiting in the
    forming batch, then host id.  Blind to device speed — the baseline the
    prediction-driven router is measured against.
    """

    name = "least-loaded-host"

    def pick(self, hosts, request, now_ms):
        """The host with the smallest (busy horizon, queued samples)."""
        return min(
            hosts,
            key=lambda host: (
                host.remaining_work_ms(now_ms),
                host.pending_samples,
                host.host_id,
            ),
        )


class RoundRobinHostRouter(ClusterRouter):
    """Cycle through the eligible hosts in id order, ignoring load."""

    name = "round-robin-host"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, hosts, request, now_ms):
        """The next host in the rotation."""
        host = hosts[self._next % len(hosts)]
        self._next += 1
        return host


class PartitionAffinityRouter(ClusterRouter):
    """Send every request of a partitioned model to its stage-0 host.

    The cluster loop assigns the run's :class:`~repro.cluster.partition.
    PartitionPlan` to :attr:`plan` before the first arrival.  Requests for a
    model the plan covers go to the entry stage's host (the rest of the
    pipeline is fixed by the plan anyway); anything else falls back to
    least-loaded placement.
    """

    name = "partition-affinity"

    def __init__(self) -> None:
        #: Set by the cluster loop when the run is partitioned.
        self.plan = None
        self._fallback = LeastLoadedHostRouter()

    def pick(self, hosts, request, now_ms):
        """The plan's stage-0 host, or least-loaded when the plan is silent."""
        if self.plan is not None and (
            request.model == self.plan.model
            or self.plan.stage_for_model(request.model) is not None
        ):
            entry = self.plan.host_of_stage(0)
            for host in hosts:
                if host.host_id == entry:
                    return host
        return self._fallback.pick(hosts, request, now_ms)


#: Cluster router registry: name → zero-argument constructor.
CLUSTER_ROUTERS: dict[str, Callable[[], ClusterRouter]] = {
    EarliestFinishHostRouter.name: EarliestFinishHostRouter,
    LeastLoadedHostRouter.name: LeastLoadedHostRouter,
    PartitionAffinityRouter.name: PartitionAffinityRouter,
    RoundRobinHostRouter.name: RoundRobinHostRouter,
}


def get_cluster_router(name: "str | ClusterRouter") -> ClusterRouter:
    """A fresh cluster router for ``name`` (case/underscore tolerant).

    Accepts an already-built :class:`ClusterRouter` unchanged; raises
    :class:`ValueError` listing the registered policies on an unknown name.
    """
    if isinstance(name, ClusterRouter):
        return name
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    factory = CLUSTER_ROUTERS.get(key)
    if factory is None:
        raise ValueError(
            f"unknown cluster router {name!r}; registered routers: "
            f"{', '.join(sorted(CLUSTER_ROUTERS))}"
        )
    return factory()


def list_cluster_routers() -> list[str]:
    """Names of all registered cluster routing policies."""
    return sorted(CLUSTER_ROUTERS)
