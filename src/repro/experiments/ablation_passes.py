"""Pass-pipeline ablation: scheduling raw vs. rewrite-optimised graphs.

The rewrite pipeline of :mod:`repro.passes` is the compiler stage between the
IR and the DP search: it folds standalone activations into the compound
schedule units of Table 2, deduplicates common subexpressions and removes
plumbing, *before* placement.  This ablation quantifies what that buys for
each model:

* **fewer schedulable operators** — smaller blocks, exponentially fewer DP
  subsets to enumerate;
* **reduced scheduler search time / transitions** — the direct consequence;
* **no-worse scheduled latency** — the optimised graph launches fewer
  kernels, so the best schedule found can only improve.

The "raw" graph is the unfused frontend form produced by
:func:`repro.passes.unfuse_activations` — what an importer that does not fuse
activations would hand the scheduler.  Per-pass ``PassManager`` statistics
(rewrites applied, time spent) are reported as extra ``pass:`` rows so the
CSV carries the full pipeline breakdown.
"""

from __future__ import annotations

from typing import Sequence

from ..engine import get_engine
from ..hardware.device import get_device
from ..frontend import load
from ..passes import default_pipeline, unfuse_activations
from .tables import ExperimentTable

__all__ = ["run_pass_ablation"]

#: Models the ablation sweeps by default (the acceptance pair of the paper's
#: main case studies: Conv-Relu heavy and Relu-SepConv heavy).
DEFAULT_MODELS = ("inception_v3", "nasnet_a")


def run_pass_ablation(
    device: str = "v100",
    models: Sequence[str] = DEFAULT_MODELS,
    batch_size: int = 1,
    variant: str = "ios-both",
) -> ExperimentTable:
    """Schedule each model's raw and pass-optimised graph and compare."""
    spec = get_device(device)
    table = ExperimentTable(
        experiment_id="ablation_passes",
        title=f"Pass-pipeline ablation on {device} (batch size {batch_size})",
        columns=[
            "model", "graph", "operators", "latency_ms", "search_s",
            "transitions", "rewrites", "pass_time_s",
        ],
        notes="'raw' is the unfused frontend graph; 'optimized' ran the default "
        "repro.passes pipeline first; 'pass:*' rows break the pipeline down "
        "per pass (rewrites applied and time spent, summed over iterations)",
    )
    for model in models:
        raw = unfuse_activations(load(model, batch_size=batch_size, optimize=False))
        pass_result = default_pipeline().run(raw)
        variants = [
            ("raw", raw, 0, 0.0),
            ("optimized", pass_result.graph, pass_result.total_rewrites,
             pass_result.elapsed_s),
        ]
        engine = get_engine(spec, variant=variant)
        for label, graph, rewrites, pass_time_s in variants:
            compiled = engine.compile(graph)
            search = compiled.schedule_result()
            table.add_row(
                model=model,
                graph=label,
                operators=len(graph.schedulable_names()),
                latency_ms=compiled.latency_ms(),
                search_s=search.elapsed_s,
                transitions=search.total_transitions,
                rewrites=rewrites,
                pass_time_s=pass_time_s,
            )
        for stat in pass_result.stats:
            table.add_row(
                model=model,
                graph=f"pass:{stat.name}",
                rewrites=stat.rewrites,
                pass_time_s=stat.elapsed_s,
            )
    return table
