"""Result containers and text rendering for experiments.

Every experiment module produces an :class:`ExperimentTable`: a list of rows
(dicts) plus metadata.  The table renders itself as aligned text (what the
benchmark harness prints) and as CSV (for post-processing / plotting outside
this repository — no plotting library is required to reproduce the numbers).
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = ["ExperimentTable", "geometric_mean", "normalize_to_best"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the GeoMean column of Figures 6, 7, 12, 14, 15)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize_to_best(values: dict[str, float]) -> dict[str, float]:
    """Normalise a {label: throughput} mapping so the best entry equals 1.0.

    This is how the paper presents Figures 6, 7, 14 and 15 ("throughput is
    normalized to the best one for each model").  Entries that failed (zero or
    non-finite throughput, e.g. an out-of-memory run) normalise to 0.
    """
    finite = [v for v in values.values() if v > 0 and math.isfinite(v)]
    best = max(finite, default=0.0)
    if best == 0.0:
        return {k: 0.0 for k in values}
    return {
        k: (v / best if v > 0 and math.isfinite(v) else 0.0) for k, v in values.items()
    }


@dataclass
class ExperimentTable:
    """Rows reproducing one table or figure of the paper."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def row_by(self, key_column: str, key: Any) -> dict[str, Any]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")

    # ---------------------------------------------------------------- rendering
    @staticmethod
    def _format_value(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if not math.isfinite(value):
                return "OOM" if value == float("inf") else str(value)
            magnitude = abs(value)
            if magnitude >= 1e5 or magnitude < 1e-3:
                return f"{value:.2e}"
            return f"{value:.3f}"
        if isinstance(value, int) and abs(value) >= 1_000_000_000:
            return f"{value:.2e}"
        return str(value)

    def to_text(self) -> str:
        """Render as an aligned, monospaced table."""
        header = [self.title, "=" * len(self.title)]
        widths = {col: len(col) for col in self.columns}
        formatted_rows = []
        for row in self.rows:
            formatted = {col: self._format_value(row.get(col, "")) for col in self.columns}
            formatted_rows.append(formatted)
            for col in self.columns:
                widths[col] = max(widths[col], len(formatted[col]))
        header.append("  ".join(col.ljust(widths[col]) for col in self.columns))
        header.append("  ".join("-" * widths[col] for col in self.columns))
        for formatted in formatted_rows:
            header.append("  ".join(formatted[col].ljust(widths[col]) for col in self.columns))
        if self.notes:
            header.append("")
            header.append(f"note: {self.notes}")
        return "\n".join(header)

    def to_csv(self, path: str | Path | None = None) -> str:
        """Render as CSV; optionally also write to ``path``."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns, extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({col: row.get(col, "") for col in self.columns})
        text = buffer.getvalue()
        if path is not None:
            Path(path).parent.mkdir(parents=True, exist_ok=True)
            Path(path).write_text(text)
        return text

    def summary(self, columns: Sequence[str] | None = None) -> dict[str, float]:
        """Geometric mean of the requested numeric columns across rows."""
        columns = list(columns) if columns is not None else self.columns
        result = {}
        for col in columns:
            values = [row[col] for row in self.rows if isinstance(row.get(col), (int, float))]
            if values:
                result[col] = geometric_mean(values)
        return result
