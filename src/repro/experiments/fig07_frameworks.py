"""Figures 7 and 15: cuDNN-based framework comparison.

TensorFlow, TensorFlow-XLA, TASO, TVM-cuDNN and TensorRT (all simulated,
all executing sequentially) are compared against IOS at batch size one;
throughput is normalised to the best system per network.  Figure 7 runs on the
V100 preset, Figure 15 on the RTX 2080Ti.
"""

from __future__ import annotations

from typing import Sequence

from ..frameworks import get_framework
from ..hardware.device import DeviceSpec
from ..models import BENCHMARK_MODELS
from .runner import ExperimentContext, default_context
from .tables import ExperimentTable, geometric_mean, normalize_to_best

__all__ = ["run_figure7", "run_figure15", "FRAMEWORK_LABELS"]

#: Baselines of Figure 7, in the paper's legend order, plus IOS.
FRAMEWORK_LABELS = ["tensorflow", "tensorflow-xla", "taso", "tvm-cudnn", "tensorrt", "ios"]


def run_figure7(
    device: str | DeviceSpec = "v100",
    models: Sequence[str] | None = None,
    batch_size: int = 1,
    context: ExperimentContext | None = None,
    experiment_id: str = "figure7",
) -> ExperimentTable:
    """Normalised throughput of cuDNN-based frameworks and IOS per network."""
    ctx = context or default_context(device)
    models = list(models) if models is not None else list(BENCHMARK_MODELS)
    table = ExperimentTable(
        experiment_id=experiment_id,
        title=f"{experiment_id}: framework comparison on {ctx.device.name} (batch {batch_size})",
        columns=["network"] + FRAMEWORK_LABELS + ["ios_speedup_vs_best_baseline"],
        notes="columns are throughput normalised to the best system of each network",
    )

    normalized_per_label: dict[str, list[float]] = {label: [] for label in FRAMEWORK_LABELS}
    for model_name in models:
        graph = ctx.graph(model_name, batch_size)
        throughputs: dict[str, float] = {}
        for label in FRAMEWORK_LABELS:
            if label == "ios":
                run = ctx.run_schedule(graph, "ios-both")
                throughputs[label] = run.throughput
            else:
                result = get_framework(label).run(graph, ctx.device)
                throughputs[label] = result.throughput
        normalized = normalize_to_best(throughputs)
        for label in FRAMEWORK_LABELS:
            normalized_per_label[label].append(normalized[label])
        baseline_best = max(v for k, v in throughputs.items() if k != "ios")
        table.add_row(
            network=model_name,
            ios_speedup_vs_best_baseline=throughputs["ios"] / baseline_best,
            **normalized,
        )

    geo_row = {label: geometric_mean(values) for label, values in normalized_per_label.items()}
    table.add_row(network="geomean", ios_speedup_vs_best_baseline=float("nan"), **geo_row)
    return table


def run_figure15(
    models: Sequence[str] | None = None,
    batch_size: int = 1,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Appendix B, Figure 15: the framework comparison on an RTX 2080Ti."""
    return run_figure7(
        device="rtx2080ti",
        models=models,
        batch_size=batch_size,
        context=context,
        experiment_id="figure15",
    )
