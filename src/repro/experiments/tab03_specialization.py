"""Table 3: specialised schedules for batch sizes and devices.

IOS re-optimises the schedule for the configuration it will actually run in.
Table 3 (1) optimises Inception V3 for batch sizes 1 / 32 / 128 and executes
every schedule at every batch size; Table 3 (2) does the same across a Tesla
K80 and a Tesla V100 at batch size one.  In both matrices the diagonal (the
schedule specialised for the execution configuration) should be the best entry
of its row.
"""

from __future__ import annotations

from typing import Sequence

from ..core.specialization import specialize_for_batch_sizes, specialize_for_devices
from ..hardware.device import DeviceSpec, get_device
from ..frontend import load
from .tables import ExperimentTable

__all__ = ["run_table3_batch", "run_table3_device"]


def run_table3_batch(
    model: str = "inception_v3",
    batch_sizes: Sequence[int] = (1, 32, 128),
    device: str | DeviceSpec = "v100",
) -> ExperimentTable:
    """Table 3 (1): cross-execution of schedules specialised per batch size."""
    spec = device if isinstance(device, DeviceSpec) else get_device(device)
    graph = load(model, batch_size=batch_sizes[0])
    _, matrix = specialize_for_batch_sizes(graph, batch_sizes, spec)

    table = ExperimentTable(
        experiment_id="table3_batch",
        title=f"Table 3 (1): batch-size specialisation of {model} on {spec.name}",
        columns=["execute_batch"]
        + [f"optimized_for_bs{bs}" for bs in batch_sizes]
        + ["diagonal_is_best"],
        notes="entries are latencies in ms; each row's minimum should be its diagonal entry",
    )
    diagonal_best = matrix.diagonal_is_best()
    for i, bs in enumerate(batch_sizes):
        row = {"execute_batch": bs, "diagonal_is_best": diagonal_best}
        for j, opt_bs in enumerate(batch_sizes):
            row[f"optimized_for_bs{opt_bs}"] = matrix.latency_ms[i][j]
        table.add_row(**row)
    return table


def run_table3_device(
    model: str = "inception_v3",
    devices: Sequence[str] = ("k80", "v100"),
    batch_size: int = 1,
) -> ExperimentTable:
    """Table 3 (2): cross-execution of schedules specialised per device."""
    specs = [get_device(name) for name in devices]
    graph = load(model, batch_size=batch_size)
    _, matrix = specialize_for_devices(graph, specs)

    table = ExperimentTable(
        experiment_id="table3_device",
        title=f"Table 3 (2): device specialisation of {model} (batch {batch_size})",
        columns=["execute_on"]
        + [f"optimized_for_{spec.name}" for spec in specs]
        + ["diagonal_is_best"],
        notes="entries are latencies in ms; each row's minimum should be its diagonal entry",
    )
    diagonal_best = matrix.diagonal_is_best()
    for i, spec in enumerate(specs):
        row = {"execute_on": spec.name, "diagonal_is_best": diagonal_best}
        for j, opt_spec in enumerate(specs):
            row[f"optimized_for_{opt_spec.name}"] = matrix.latency_ms[i][j]
        table.add_row(**row)
    return table
