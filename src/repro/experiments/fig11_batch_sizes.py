"""Figure 11: throughput across batch sizes on Inception V3.

Sequential execution, TVM-cuDNN, TASO, TensorRT and IOS are run at batch sizes
1, 16, 32, 64 and 128.  Throughput grows with batch size for everyone, IOS
stays on top at every batch size, and TASO runs out of memory at batch size
128 on the 16 GiB V100.
"""

from __future__ import annotations

from typing import Sequence

from ..frameworks import get_framework
from ..hardware.device import DeviceSpec
from .runner import ExperimentContext, default_context
from .tables import ExperimentTable

__all__ = ["run_figure11", "BATCH_SWEEP", "FIG11_SYSTEMS"]

BATCH_SWEEP = (1, 16, 32, 64, 128)
FIG11_SYSTEMS = ["sequential", "tvm-cudnn", "taso", "tensorrt", "ios"]


def run_figure11(
    model: str = "inception_v3",
    batch_sizes: Sequence[int] = BATCH_SWEEP,
    device: str | DeviceSpec = "v100",
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Throughput (images/s) of each system at each batch size."""
    ctx = context or default_context(device)
    table = ExperimentTable(
        experiment_id="figure11",
        title=f"Figure 11: throughput vs batch size for {model} on {ctx.device.name}",
        columns=["batch_size"] + FIG11_SYSTEMS,
        notes="entries are images/second; 0 marks an out-of-memory failure (TASO at batch 128)",
    )
    for batch_size in batch_sizes:
        graph = ctx.graph(model, batch_size)
        row: dict[str, float | int] = {"batch_size": batch_size}
        for system in FIG11_SYSTEMS:
            if system == "sequential":
                run = ctx.run_schedule(graph, "sequential")
                row[system] = run.throughput
            elif system == "ios":
                run = ctx.run_schedule(graph, "ios-both")
                row[system] = run.throughput
            else:
                result = get_framework(system).run(graph, ctx.device)
                row[system] = 0.0 if result.out_of_memory else result.throughput
        table.add_row(**row)
    return table
