"""Figure 9: the trade-off between schedule quality and search cost under pruning.

The pruning strategy ``(r, s)`` restricts the endings the DP explores: ``r``
bounds operators per group, ``s`` bounds groups per stage.  Tighter pruning
lowers the optimisation cost at the price of a (slightly) slower schedule.
The paper sweeps ``r in {1, 2, 3}`` and ``s in {3, 8}`` for Inception V3 and
NasNet; we report the optimised latency, the wall-clock search time and the
simulated GPU time spent profiling candidate stages.
"""

from __future__ import annotations

from typing import Sequence

from ..core.endings import PruningStrategy
from ..core.lowering import measure_schedule
from ..hardware.device import DeviceSpec
from .runner import ExperimentContext, default_context
from .tables import ExperimentTable

__all__ = ["run_figure9", "DEFAULT_PRUNING_GRID"]

#: The (r, s) grid of Figure 9.
DEFAULT_PRUNING_GRID = [(r, s) for s in (8, 3) for r in (3, 2, 1)]


def run_figure9(
    models: Sequence[str] = ("inception_v3", "nasnet_a"),
    grid: Sequence[tuple[int, int]] | None = None,
    device: str | DeviceSpec = "v100",
    batch_size: int = 1,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Sweep pruning parameters and report latency vs optimisation cost."""
    ctx = context or default_context(device)
    grid = list(grid) if grid is not None else list(DEFAULT_PRUNING_GRID)
    table = ExperimentTable(
        experiment_id="figure9",
        title="Figure 9: optimised latency vs optimisation cost under (r, s) pruning",
        columns=[
            "network",
            "r",
            "s",
            "latency_ms",
            "speedup_vs_sequential",
            "optimization_wall_s",
            "optimization_gpu_s",
            "stage_measurements",
        ],
    )
    for model_name in models:
        graph = ctx.graph(model_name, batch_size)
        sequential_run = ctx.run_schedule(graph, "sequential")
        for r, s in grid:
            pruning = PruningStrategy(max_group_size=r, max_groups=s)
            result, elapsed, gpu_ms, measurements = ctx.ios_result(
                graph, variant="ios-both", pruning=pruning
            )
            latency = measure_schedule(graph, result.schedule, ctx.device, ctx.profile).latency_ms
            table.add_row(
                network=model_name,
                r=r,
                s=s,
                latency_ms=latency,
                speedup_vs_sequential=sequential_run.latency_ms / latency,
                optimization_wall_s=elapsed,
                optimization_gpu_s=gpu_ms / 1e3,
                stage_measurements=measurements,
            )
    return table
