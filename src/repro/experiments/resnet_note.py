"""Section 5's side note: ResNets barely benefit from inter-operator parallelism.

ResNet-34 / ResNet-50 are almost pure chains; the only concurrency available
is running the downsample (projection) convolution next to the residual
branch, so the paper observes merely 2-5 % speedup and excludes ResNet from
the main benchmark suite.  This experiment measures the sequential and IOS
latencies of ResNet-34/50 and reports the (small) speedup.
"""

from __future__ import annotations

from typing import Sequence

from ..hardware.device import DeviceSpec
from .runner import ExperimentContext, default_context
from .tables import ExperimentTable

__all__ = ["run_resnet_note"]


def run_resnet_note(
    models: Sequence[str] = ("resnet_34", "resnet_50"),
    device: str | DeviceSpec = "v100",
    batch_size: int = 1,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Sequential vs IOS latency on ResNets (expected: only a few percent gain)."""
    ctx = context or default_context(device)
    table = ExperimentTable(
        experiment_id="resnet_note",
        title="Section 5 note: limited inter-operator parallelism in ResNets",
        columns=["network", "sequential_ms", "ios_ms", "speedup", "speedup_percent"],
        notes="the paper reports 2-5% speedup for ResNet-34/50, far below the multi-branch CNNs",
    )
    for model_name in models:
        graph = ctx.graph(model_name, batch_size)
        sequential = ctx.run_schedule(graph, "sequential")
        ios = ctx.run_schedule(graph, "ios-both")
        speedup = sequential.latency_ms / ios.latency_ms
        table.add_row(
            network=model_name,
            sequential_ms=sequential.latency_ms,
            ios_ms=ios.latency_ms,
            speedup=speedup,
            speedup_percent=(speedup - 1.0) * 100.0,
        )
    return table
