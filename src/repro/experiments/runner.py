"""Shared plumbing for the experiment modules.

Most experiments need the same ingredients: build a benchmark network, compute
its five schedules (sequential, greedy, IOS-Merge, IOS-Parallel, IOS-Both),
execute them on a simulated device and aggregate throughputs.  The helpers
here centralise that so the per-figure modules stay small.

IOS searches go through :func:`repro.engine.get_engine` — one pooled
:class:`~repro.engine.Engine` per (device, variant, pruning) whose compile
cache is shared process-wide, so e.g. Figure 6, Figure 16 and an
``ios-bench all`` run never repeat the same optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.baselines import greedy_schedule, sequential_schedule
from ..core.dp_scheduler import ScheduleResult
from ..core.endings import PruningStrategy
from ..core.lowering import measure_schedule
from ..core.schedule import Schedule
from ..engine import Engine, get_engine
from ..hardware.device import DeviceSpec, get_device
from ..hardware.kernel import CUDNN_PROFILE, KernelProfile
from ..ir.graph import Graph
from ..frontend import load

__all__ = ["ScheduleRun", "ExperimentContext", "SCHEDULE_LABELS", "default_context"]

#: Display order of the five schedules compared in Figures 6 and 14.
SCHEDULE_LABELS = ["sequential", "greedy", "ios-merge", "ios-parallel", "ios-both"]


@dataclass
class ScheduleRun:
    """One (schedule, measurement) pair."""

    label: str
    schedule: Schedule
    latency_ms: float
    throughput: float
    optimization_s: float = 0.0
    optimization_gpu_ms: float = 0.0
    num_measurements: int = 0


@dataclass
class ExperimentContext:
    """Shared state for one experiment run (device, kernel profile, caches)."""

    device: DeviceSpec
    profile: KernelProfile = CUDNN_PROFILE
    pruning: PruningStrategy = field(default_factory=lambda: PruningStrategy(3, 8))
    _graphs: dict[tuple[str, int], Graph] = field(default_factory=dict)
    #: Result tuples per compiled model, so repeated ios_result() calls
    #: return the identical object (CompiledModel hashes by identity).
    _ios_results: dict[object, tuple] = field(default_factory=dict)

    # ------------------------------------------------------------------ graphs
    def graph(self, model: str, batch_size: int = 1) -> Graph:
        key = (model, batch_size)
        if key not in self._graphs:
            self._graphs[key] = load(model, batch_size=batch_size)
        return self._graphs[key]

    # ---------------------------------------------------------------- engines
    def engine(
        self,
        variant: str = "ios-both",
        pruning: PruningStrategy | None = None,
        device: DeviceSpec | None = None,
    ) -> Engine:
        """The pooled compile engine for (device, variant, pruning)."""
        return get_engine(
            device or self.device,
            variant=variant,
            pruning=pruning or self.pruning,
            profile=self.profile,
        )

    # --------------------------------------------------------------- schedules
    def ios_result(
        self,
        graph: Graph,
        variant: str = "ios-both",
        pruning: PruningStrategy | None = None,
        device: DeviceSpec | None = None,
    ) -> tuple[ScheduleResult, float, float, int]:
        """IOS search result for a graph, via the pooled engine's cache.

        Returns ``(result, elapsed_s, profiling_gpu_ms, num_measurements)``;
        the cost figures are the *compile-time* ones recorded in
        :class:`~repro.engine.CompileStats`, so a cache hit reports the cost
        of the original search rather than zero.
        """
        compiled = self.engine(variant, pruning, device).compile(graph)
        cached = self._ios_results.get(compiled)
        if cached is None:
            result = compiled.schedule_result()
            cached = (
                result,
                result.elapsed_s,
                compiled.stats.profiling_gpu_ms,
                compiled.stats.num_measurements,
            )
            self._ios_results[compiled] = cached
        return cached

    def schedule(self, graph: Graph, label: str, device: DeviceSpec | None = None,
                 pruning: PruningStrategy | None = None) -> tuple[Schedule, float, float, int]:
        """Build the named schedule; returns (schedule, search_s, gpu_ms, measurements)."""
        if label == "sequential":
            return sequential_schedule(graph), 0.0, 0.0, 0
        if label == "greedy":
            return greedy_schedule(graph), 0.0, 0.0, 0
        if label in ("ios-merge", "ios-parallel", "ios-both"):
            result, elapsed, gpu_ms, measurements = self.ios_result(
                graph, variant=label, pruning=pruning, device=device
            )
            return result.schedule, elapsed, gpu_ms, measurements
        raise KeyError(f"unknown schedule label {label!r}; expected one of {SCHEDULE_LABELS}")

    def run_schedule(
        self,
        graph: Graph,
        label: str,
        device: DeviceSpec | None = None,
        pruning: PruningStrategy | None = None,
    ) -> ScheduleRun:
        """Build and execute one schedule on the context's device."""
        device = device or self.device
        schedule, elapsed, gpu_ms, measurements = self.schedule(graph, label, device, pruning)
        result = measure_schedule(graph, schedule, device, self.profile)
        return ScheduleRun(
            label=label,
            schedule=schedule,
            latency_ms=result.latency_ms,
            throughput=result.throughput(),
            optimization_s=elapsed,
            optimization_gpu_ms=gpu_ms,
            num_measurements=measurements,
        )

    def compare_schedules(
        self,
        model: str,
        labels: Sequence[str] = tuple(SCHEDULE_LABELS),
        batch_size: int = 1,
        device: DeviceSpec | None = None,
    ) -> dict[str, ScheduleRun]:
        """Run every requested schedule of one model and return them by label."""
        graph = self.graph(model, batch_size)
        return {label: self.run_schedule(graph, label, device) for label in labels}


def default_context(device: str | DeviceSpec = "v100",
                    pruning: PruningStrategy | None = None) -> ExperimentContext:
    """Create an :class:`ExperimentContext` for the named device preset."""
    spec = device if isinstance(device, DeviceSpec) else get_device(device)
    return ExperimentContext(device=spec, pruning=pruning or PruningStrategy(3, 8))
