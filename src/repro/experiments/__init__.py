"""Experiment harness: one module per table/figure of the paper.

Every ``run_*`` function returns an :class:`~repro.experiments.tables.ExperimentTable`
whose rows mirror the rows/series of the corresponding table or figure; the
benchmark suite under ``benchmarks/`` simply invokes these functions and prints
the tables, and ``ios-bench`` exposes them on the command line.
"""

from .tables import ExperimentTable, geometric_mean, normalize_to_best
from .runner import SCHEDULE_LABELS, ExperimentContext, ScheduleRun, default_context
from .fig01_trends import TREND_POINTS, run_figure1
from .fig02_motivating import run_figure2
from .tab01_complexity import PAPER_TABLE1, run_table1
from .tab02_networks import run_table2
from .fig06_schedules import run_figure6, run_figure14
from .fig07_frameworks import FRAMEWORK_LABELS, run_figure7, run_figure15
from .fig08_active_warps import run_figure8
from .fig09_pruning import DEFAULT_PRUNING_GRID, run_figure9
from .tab03_specialization import run_table3_batch, run_table3_device
from .fig10_case_study import last_block_subgraph, run_figure10
from .fig11_batch_sizes import BATCH_SWEEP, FIG11_SYSTEMS, run_figure11
from .fig12_intra_vs_inter import run_figure12
from .fig13_worst_case import DEFAULT_CHAIN_CONFIGS, run_figure13
from .fig16_blockwise import run_figure16
from .resnet_note import run_resnet_note
from .ablation_passes import run_pass_ablation
from .ablations import flatten_blocks, run_blockwise_ablation, run_cost_model_ablation
from .cli import EXPERIMENTS, main

__all__ = [
    "ExperimentTable",
    "geometric_mean",
    "normalize_to_best",
    "ExperimentContext",
    "ScheduleRun",
    "SCHEDULE_LABELS",
    "default_context",
    "run_figure1",
    "TREND_POINTS",
    "run_figure2",
    "run_table1",
    "PAPER_TABLE1",
    "run_table2",
    "run_figure6",
    "run_figure14",
    "run_figure7",
    "run_figure15",
    "FRAMEWORK_LABELS",
    "run_figure8",
    "run_figure9",
    "DEFAULT_PRUNING_GRID",
    "run_table3_batch",
    "run_table3_device",
    "run_figure10",
    "last_block_subgraph",
    "run_figure11",
    "BATCH_SWEEP",
    "FIG11_SYSTEMS",
    "run_figure12",
    "run_figure13",
    "DEFAULT_CHAIN_CONFIGS",
    "run_figure16",
    "run_resnet_note",
    "run_cost_model_ablation",
    "run_blockwise_ablation",
    "run_pass_ablation",
    "flatten_blocks",
    "EXPERIMENTS",
    "main",
]
