"""Table 2: the CNN benchmark suite.

Reports, for each benchmark network, the number of blocks, the number of
operators and the dominant operator type, next to the values from the paper's
Table 2 (our reconstructions differ slightly in operator count; see DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence

from ..frontend import load
from ..models import BENCHMARK_MODELS, MODEL_REGISTRY
from .tables import ExperimentTable

__all__ = ["run_table2"]


def run_table2(models: Sequence[str] | None = None) -> ExperimentTable:
    """Reproduce Table 2 (benchmark networks and their sizes)."""
    models = list(models) if models is not None else list(BENCHMARK_MODELS)
    table = ExperimentTable(
        experiment_id="table2",
        title="Table 2: CNN benchmarks",
        columns=[
            "network",
            "num_blocks",
            "num_operators",
            "operator_type",
            "gflops",
            "params_m",
            "paper_blocks",
            "paper_operators",
        ],
    )
    for model_name in models:
        graph = load(model_name, batch_size=1)
        spec = MODEL_REGISTRY[model_name]
        multi_op_blocks = [b for b in graph.blocks if len(graph.schedulable_names(b)) > 0]
        table.add_row(
            network=model_name,
            num_blocks=len(multi_op_blocks),
            num_operators=len(graph.operators()),
            operator_type=spec.operator_type,
            gflops=graph.total_flops() / 1e9,
            params_m=graph.total_params() / 1e6,
            paper_blocks=spec.paper_blocks if spec.paper_blocks is not None else "",
            paper_operators=spec.paper_operators if spec.paper_operators is not None else "",
        )
    return table
