"""Figure 16 / Appendix C: block-wise speedup of IOS over the sequential schedule.

For each of the 11 Inception V3 modules the paper compares the block's latency
under the sequential schedule and under IOS: every block gets faster (up to
2.3x), later blocks more so because they are wider.
"""

from __future__ import annotations

from ..core.cost_model import SimulatedCostModel
from ..core.dp_scheduler import IOSScheduler, SchedulerConfig
from ..core.schedule import ParallelizationStrategy, Stage
from ..hardware.device import DeviceSpec
from ..models import INCEPTION_BLOCK_NAMES
from ..runtime.executor import ExecutionPlan, Executor
from ..core.cost_model import stage_to_execution
from .runner import ExperimentContext, default_context
from .tables import ExperimentTable

__all__ = ["run_figure16"]


def _block_latency(ctx: ExperimentContext, graph, block, stages) -> float:
    """Latency of one block executed with the given stages."""
    plan = ExecutionPlan(name=f"{graph.name}:{block.name}", batch_size=graph.batch_size)
    for stage_index, stage in enumerate(stages):
        plan.stages.append(
            stage_to_execution(graph, stage.operators, stage.strategy, label=f"{block.name}:{stage_index}")
        )
    return Executor(ctx.device, ctx.profile).run(plan).latency_ms


def run_figure16(
    model: str = "inception_v3",
    device: str | DeviceSpec = "v100",
    batch_size: int = 1,
    block_names: list[str] | None = None,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Per-block sequential vs IOS latency for Inception V3."""
    ctx = context or default_context(device)
    graph = ctx.graph(model, batch_size)
    block_names = block_names or list(INCEPTION_BLOCK_NAMES)

    cost_model = SimulatedCostModel(ctx.device, ctx.profile)
    scheduler = IOSScheduler(cost_model, SchedulerConfig(pruning=ctx.pruning))

    table = ExperimentTable(
        experiment_id="figure16",
        title=f"Figure 16: block-wise sequential vs IOS latency for {model} on {ctx.device.name}",
        columns=[
            "block_index",
            "block",
            "num_operators",
            "sequential_ms",
            "ios_ms",
            "speedup",
            "ios_stages",
        ],
    )

    total_seq = 0.0
    total_ios = 0.0
    for index, block_name in enumerate(block_names, start=1):
        block = next(b for b in graph.blocks if b.name == block_name)
        op_names = graph.schedulable_names(block)
        sequential_stages = [
            Stage((name,), ParallelizationStrategy.CONCURRENT)
            for name in graph.topological_order(op_names)
        ]
        ios_stages, _stats = scheduler.optimize_block(graph, block)
        sequential_ms = _block_latency(ctx, graph, block, sequential_stages)
        ios_ms = _block_latency(ctx, graph, block, ios_stages)
        total_seq += sequential_ms
        total_ios += ios_ms
        table.add_row(
            block_index=index,
            block=block_name,
            num_operators=len(op_names),
            sequential_ms=sequential_ms,
            ios_ms=ios_ms,
            speedup=sequential_ms / ios_ms if ios_ms > 0 else float("inf"),
            ios_stages=len(ios_stages),
        )
    table.add_row(
        block_index=0,
        block="all_blocks_total",
        num_operators=sum(row["num_operators"] for row in table.rows),
        sequential_ms=total_seq,
        ios_ms=total_ios,
        speedup=total_seq / total_ios if total_ios > 0 else float("inf"),
        ios_stages=sum(row["ios_stages"] for row in table.rows),
    )
    return table
