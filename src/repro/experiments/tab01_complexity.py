"""Table 1: schedule-space size and DP complexity of the largest block.

For the largest block of each benchmark network the paper lists the number of
operators ``n``, the width ``d``, the theoretical transition bound
``C(n/d+2, 2)^d``, the real number of DP transitions ``#(S, S')`` and the total
number of feasible schedules.  All five quantities are computed exactly by the
``repro.core.complexity`` module on our (slightly smaller) reconstructions of
the networks.
"""

from __future__ import annotations

from typing import Sequence

from ..core.complexity import block_complexity
from ..frontend import load
from ..models import BENCHMARK_MODELS
from .tables import ExperimentTable

__all__ = ["run_table1", "PAPER_TABLE1"]

#: The values reported in the paper's Table 1, for side-by-side comparison.
PAPER_TABLE1 = {
    "inception_v3": {"n": 11, "d": 6, "bound": 2.6e4, "transitions": 4.9e3, "schedules": 3.8e6},
    "randwire": {"n": 33, "d": 8, "bound": 3.7e9, "transitions": 1.2e6, "schedules": 9.2e22},
    "nasnet_a": {"n": 18, "d": 8, "bound": 5.2e6, "transitions": 3.1e5, "schedules": 7.2e12},
    "squeezenet": {"n": 6, "d": 3, "bound": 2.2e2, "transitions": 51, "schedules": 1.3e2},
}


def run_table1(models: Sequence[str] | None = None, count_schedule_space: bool = True) -> ExperimentTable:
    """Reproduce Table 1 for the benchmark networks."""
    models = list(models) if models is not None else list(BENCHMARK_MODELS)
    table = ExperimentTable(
        experiment_id="table1",
        title="Table 1: largest-block schedule-space statistics",
        columns=[
            "network",
            "block",
            "n",
            "d",
            "transition_bound",
            "transitions",
            "num_schedules",
            "paper_n",
            "paper_d",
            "paper_transitions",
            "paper_schedules",
        ],
        notes=(
            "Our reconstructions of RandWire/NasNet use fewer operators per block than the "
            "paper's exact models (see DESIGN.md), so n/d and the derived counts are smaller; "
            "the qualitative conclusion (schedule count is astronomically larger than the DP "
            "transition count) is unchanged."
        ),
    )
    for model_name in models:
        graph = load(model_name, batch_size=1)
        complexity = block_complexity(graph, count_schedule_space=count_schedule_space)
        paper = PAPER_TABLE1.get(model_name, {})
        table.add_row(
            network=model_name,
            block=complexity.block_name,
            n=complexity.num_operators,
            d=complexity.width,
            transition_bound=complexity.upper_bound,
            transitions=complexity.num_transitions,
            num_schedules=float(complexity.num_schedules),
            paper_n=paper.get("n", ""),
            paper_d=paper.get("d", ""),
            paper_transitions=paper.get("transitions", ""),
            paper_schedules=paper.get("schedules", ""),
        )
    return table
