"""Figure 12: intra-operator (TVM-AutoTune) vs inter-operator (IOS) parallelism.

TVM auto-tunes each kernel (intra-operator parallelism, enormous search cost);
IOS keeps cuDNN kernels and parallelises across operators (tiny search cost).
The paper reports that IOS wins on Inception V3 / SqueezeNet while TVM wins on
RandWire / NasNet (its separable-convolution kernels are much better than
cuDNN's), and that tuning the four networks costs TVM 208 GPU hours versus
3 GPU hours for IOS.
"""

from __future__ import annotations

from typing import Sequence

from ..frameworks import TVMAutoTuneModel
from ..hardware.device import DeviceSpec
from ..models import BENCHMARK_MODELS
from .runner import ExperimentContext, default_context
from .tables import ExperimentTable, geometric_mean, normalize_to_best

__all__ = ["run_figure12"]


def run_figure12(
    models: Sequence[str] | None = None,
    device: str | DeviceSpec = "v100",
    batch_size: int = 1,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Normalised throughput of TVM-AutoTune vs IOS plus total optimisation cost."""
    ctx = context or default_context(device)
    models = list(models) if models is not None else list(BENCHMARK_MODELS)
    tvm = TVMAutoTuneModel()

    table = ExperimentTable(
        experiment_id="figure12",
        title=f"Figure 12: TVM-AutoTune vs IOS on {ctx.device.name} (batch {batch_size})",
        columns=[
            "network",
            "tvm-autotune",
            "ios",
            "tvm_optimization_gpu_hours",
            "ios_optimization_gpu_hours",
        ],
        notes="throughput columns are normalised to the better of the two systems per network",
    )

    normalized_tvm, normalized_ios = [], []
    total_tvm_hours = 0.0
    total_ios_hours = 0.0
    for model_name in models:
        graph = ctx.graph(model_name, batch_size)
        tvm_result = tvm.run(graph, ctx.device)
        ios_run = ctx.run_schedule(graph, "ios-both")
        normalized = normalize_to_best(
            {"tvm-autotune": tvm_result.throughput, "ios": ios_run.throughput}
        )
        normalized_tvm.append(normalized["tvm-autotune"])
        normalized_ios.append(normalized["ios"])
        tvm_hours = tvm.optimization_cost_gpu_hours(graph)
        ios_hours = ios_run.optimization_gpu_ms / 3.6e6
        total_tvm_hours += tvm_hours
        total_ios_hours += ios_hours
        table.add_row(
            network=model_name,
            **{
                "tvm-autotune": normalized["tvm-autotune"],
                "ios": normalized["ios"],
                "tvm_optimization_gpu_hours": tvm_hours,
                "ios_optimization_gpu_hours": ios_hours,
            },
        )
    table.add_row(
        network="geomean/total",
        **{
            "tvm-autotune": geometric_mean(normalized_tvm),
            "ios": geometric_mean(normalized_ios),
            "tvm_optimization_gpu_hours": total_tvm_hours,
            "ios_optimization_gpu_hours": total_ios_hours,
        },
    )
    return table
