"""Figure 1: hardware peak performance vs per-convolution work across CNN generations.

The paper pairs a representative network with a contemporary GPU for 2013,
2015 and 2018 (VGG + GTX 980Ti, Inception V3 + GTX 1080, NasNet + Tesla V100)
and shows that while device peak throughput tripled, the average FLOPs per
convolution dropped by more than an order of magnitude and the number of
convolutions grew — so a single operator can no longer saturate the device.
"""

from __future__ import annotations

from ..hardware.device import get_device
from ..ir.flops import conv_statistics
from ..frontend import load
from .tables import ExperimentTable

__all__ = ["run_figure1", "TREND_POINTS"]

#: (year, network, device) triples used by the paper's Figure 1.
TREND_POINTS = [
    (2013, "vgg_16", "gtx980ti"),
    (2015, "inception_v3", "gtx1080"),
    (2018, "nasnet_a", "v100"),
]


def run_figure1(points=None) -> ExperimentTable:
    """Reproduce the three trend lines of Figure 1."""
    points = points or TREND_POINTS
    table = ExperimentTable(
        experiment_id="figure1",
        title="Figure 1: average FLOPs per convolution, #convolutions and device peak",
        columns=[
            "year",
            "network",
            "device",
            "num_convolutions",
            "avg_mflops_per_conv",
            "device_peak_gflops",
            "utilization_gap",
        ],
        notes=(
            "utilization_gap = peak GFLOPs/s divided by the GFLOPs of an average "
            "convolution; the larger it is, the less a single operator can fill the GPU."
        ),
    )
    for year, model_name, device_name in points:
        graph = load(model_name, batch_size=1)
        stats = conv_statistics(graph)
        device = get_device(device_name)
        peak_gflops = device.peak_fp32_tflops * 1e3
        avg_gflops = stats.average_flops_per_conv / 1e9
        table.add_row(
            year=year,
            network=model_name,
            device=device.name,
            num_convolutions=stats.num_convolutions,
            avg_mflops_per_conv=stats.average_mflops_per_conv,
            device_peak_gflops=peak_gflops,
            utilization_gap=peak_gflops / avg_gflops if avg_gflops > 0 else float("inf"),
        )
    return table
