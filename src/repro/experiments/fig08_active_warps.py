"""Figure 8: active warps under the sequential and IOS schedules.

The paper samples the GPU's active-warp count with CUPTI while repeatedly
executing the Figure-2 block and reports that IOS keeps ~1.58x more warps
active than the sequential schedule (2.7e8 vs 1.7e8 warps/ms on the real
V100), which is the micro-architectural explanation of the speedup.  Our
simulator exposes warp residency directly on its execution timeline.
"""

from __future__ import annotations

from ..core.lowering import measure_schedule
from ..hardware.device import DeviceSpec
from ..models import figure2_block
from ..runtime.warp_trace import compare_traces, trace_from_timeline
from .runner import ExperimentContext, default_context
from .tables import ExperimentTable

__all__ = ["run_figure8"]


def run_figure8(
    device: str | DeviceSpec = "v100",
    batch_size: int = 1,
    sample_period_ms: float = 0.01,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Compare active-warp residency of the sequential and IOS schedules."""
    ctx = context or default_context(device)
    graph = figure2_block(batch_size=batch_size)
    ctx._graphs[(graph.name, batch_size)] = graph

    table = ExperimentTable(
        experiment_id="figure8",
        title="Figure 8: active warps, sequential vs IOS (Figure 2 block)",
        columns=[
            "schedule",
            "latency_ms",
            "avg_active_warps",
            "peak_active_warps",
            "warp_ms_per_ms",
            "active_warp_ratio_vs_sequential",
        ],
    )

    traces = {}
    for label in ("sequential", "ios-both"):
        schedule, _, _, _ = ctx.schedule(graph, label)
        result = measure_schedule(graph, schedule, ctx.device, ctx.profile, record_trace=True)
        trace = trace_from_timeline(result.timeline(), sample_period_ms=sample_period_ms)
        traces[label] = (trace, result.latency_ms)

    baseline_trace = traces["sequential"][0]
    for label, (trace, latency) in traces.items():
        table.add_row(
            schedule=label,
            latency_ms=latency,
            avg_active_warps=trace.average_active_warps(),
            peak_active_warps=max(trace.samples) if trace.samples else 0.0,
            warp_ms_per_ms=trace.warps_per_ms(),
            active_warp_ratio_vs_sequential=compare_traces(baseline_trace, trace),
        )
    return table
