"""Figure 10: the schedules IOS finds for the last Inception V3 block.

The paper contrasts the schedule found for batch size 1 (two stages, no merge)
with the one found for batch size 32 (more stages; the parallel 3x1 / 1x3
convolutions that share an input are merged), showing that the best structure
depends on the workload.  This experiment optimises only that block at both
batch sizes, reports stage counts / strategies / cross-latencies, and returns
the textual schedule descriptions for inspection.
"""

from __future__ import annotations

from ..core.lowering import measure_schedule
from ..core.schedule import ParallelizationStrategy, Schedule
from ..engine import get_engine
from ..hardware.device import DeviceSpec, get_device
from ..ir.graph import Graph
from ..frontend import load
from .tables import ExperimentTable

__all__ = ["run_figure10", "last_block_subgraph"]


def last_block_subgraph(batch_size: int, block_name: str = "mixed_7c") -> Graph:
    """Extract the last Inception V3 block as a standalone graph.

    The block's external input (the previous block's concat output) becomes the
    graph input, so the block can be optimised and executed in isolation.
    """
    full = load("inception_v3", batch_size=batch_size)
    block = next(b for b in full.blocks if b.name == block_name)
    op_names = full.schedulable_names(block)
    name_set = set(op_names)
    external = sorted(
        {p for name in op_names for p in full.nodes[name].inputs if p not in name_set}
    )
    if len(external) != 1:
        raise ValueError(f"expected exactly one external input for {block_name}, got {external}")

    from ..ir.graph import GraphBuilder
    from ..ir.ops import operator_from_config

    external_shape = full.nodes[external[0]].output_shape
    builder = GraphBuilder(f"inception_{block_name}", external_shape, input_name=external[0])
    with builder.block(block_name):
        for name in full.topological_order(op_names):
            config = full.nodes[name].to_config()
            builder._add(operator_from_config(config))
    return builder.build()


def run_figure10(
    batch_sizes: tuple[int, int] = (1, 32),
    device: str | DeviceSpec = "v100",
    block_name: str = "mixed_7c",
) -> ExperimentTable:
    """Optimise the last Inception block for two batch sizes and cross-evaluate."""
    spec = device if isinstance(device, DeviceSpec) else get_device(device)
    engine = get_engine(spec)
    graphs = {bs: last_block_subgraph(bs, block_name) for bs in batch_sizes}
    schedules: dict[int, Schedule] = {
        bs: engine.compile(graph).schedule for bs, graph in graphs.items()
    }

    table = ExperimentTable(
        experiment_id="figure10",
        title=f"Figure 10: IOS schedules of Inception V3 {block_name} for batch {batch_sizes}",
        columns=[
            "optimized_for_batch",
            "num_stages",
            "merge_stages",
            "latency_on_bs%d_ms" % batch_sizes[0],
            "latency_on_bs%d_ms" % batch_sizes[1],
            "schedule",
        ],
        notes=(
            "the schedule optimised for each batch size should win on that batch size; the "
            "larger batch typically uses more stages (contention) and more merging (memory)"
        ),
    )
    for opt_bs in batch_sizes:
        schedule = schedules[opt_bs]
        merge_stages = sum(
            1 for stage in schedule.stages if stage.strategy is ParallelizationStrategy.MERGE
        )
        latencies = {}
        for exe_bs in batch_sizes:
            latencies[exe_bs] = measure_schedule(graphs[exe_bs], schedule, spec).latency_ms
        table.add_row(
            **{
                "optimized_for_batch": opt_bs,
                "num_stages": schedule.num_stages(),
                "merge_stages": merge_stages,
                "latency_on_bs%d_ms" % batch_sizes[0]: latencies[batch_sizes[0]],
                "latency_on_bs%d_ms" % batch_sizes[1]: latencies[batch_sizes[1]],
                "schedule": schedule.describe(graphs[opt_bs]).replace("\n", " / "),
            }
        )
    return table
