"""Figure 2: sequential vs greedy vs IOS schedules of the motivating block.

For the 4-convolution block the paper profiles each schedule's stages on a
V100: per-stage GFLOPs, achieved TFLOPs/s and hardware utilisation, plus the
end-to-end latency.  Sequential achieves ~48 % average utilisation, greedy
~62 %, IOS ~70 %, and IOS has the lowest latency.
"""

from __future__ import annotations

from ..core.lowering import measure_schedule
from ..hardware.device import DeviceSpec
from ..models import figure2_block
from .runner import ExperimentContext, default_context
from .tables import ExperimentTable

__all__ = ["run_figure2"]


def run_figure2(
    device: str | DeviceSpec = "v100",
    batch_size: int = 1,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Reproduce Figure 2's per-stage profile of the three schedules."""
    ctx = context or default_context(device)
    graph = figure2_block(batch_size=batch_size)
    ctx._graphs[(graph.name, batch_size)] = graph

    table = ExperimentTable(
        experiment_id="figure2",
        title="Figure 2: per-stage profile of sequential / greedy / IOS schedules",
        columns=[
            "schedule",
            "stage",
            "operators",
            "gflops",
            "achieved_tflops",
            "utilization",
            "stage_latency_ms",
            "total_latency_ms",
            "avg_utilization",
        ],
    )

    for label in ("sequential", "greedy", "ios-both"):
        schedule, _, _, _ = ctx.schedule(graph, label)
        result = measure_schedule(graph, schedule, ctx.device, ctx.profile)
        total_flops = sum(event.flops for event in result.stage_events())
        total_latency = result.latency_ms
        avg_utilization = (
            (total_flops / (total_latency / 1e3)) / (ctx.device.peak_fp32_tflops * 1e12)
            if total_latency > 0
            else 0.0
        )
        for event in result.stage_events():
            # Skip zero-work bookkeeping stages (empty stages never occur here,
            # but the concat stage carries almost no FLOPs).
            utilization = event.achieved_tflops() / ctx.device.peak_fp32_tflops
            table.add_row(
                schedule=label,
                stage=event.stage_index,
                operators=",".join(schedule.stages[event.stage_index].operators),
                gflops=event.gflops,
                achieved_tflops=event.achieved_tflops(),
                utilization=utilization,
                stage_latency_ms=event.duration_ms,
                total_latency_ms=total_latency,
                avg_utilization=avg_utilization,
            )
    return table


def summarize_figure2(table: ExperimentTable) -> dict[str, dict[str, float]]:
    """Per-schedule summary: total latency and average utilisation."""
    summary: dict[str, dict[str, float]] = {}
    for row in table.rows:
        entry = summary.setdefault(
            row["schedule"], {"total_latency_ms": row["total_latency_ms"], "avg_utilization": row["avg_utilization"]}
        )
        entry["total_latency_ms"] = row["total_latency_ms"]
        entry["avg_utilization"] = row["avg_utilization"]
    return summary
