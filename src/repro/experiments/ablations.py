"""Ablations of this reproduction's own design choices (DESIGN.md Section 5).

Two ablations beyond the paper's figures:

* **Cost-model ablation** — the DP can be driven either by the full contention
  simulator (:class:`~repro.core.cost_model.SimulatedCostModel`) or by the
  naive FLOPs-proportional model (:class:`~repro.core.cost_model.FlopsCostModel`)
  that ignores occupancy, contention and launch overheads.  Schedules found
  with the naive model are then *evaluated* on the full simulator; the quality
  gap quantifies how much a contention-aware cost model matters.
* **Block-wise vs whole-graph ablation** — IOS optimises block by block
  (Section 4.2).  For networks small enough to search globally we flatten all
  blocks into one and compare the resulting latency and search cost against
  the block-wise search.
"""

from __future__ import annotations

from typing import Sequence

from ..core.cost_model import FlopsCostModel
from ..core.dp_scheduler import IOSScheduler, SchedulerConfig
from ..core.endings import PruningStrategy
from ..engine import Engine
from ..hardware.device import DeviceSpec
from ..ir.graph import Graph
from .runner import ExperimentContext, default_context
from .tables import ExperimentTable

__all__ = ["run_cost_model_ablation", "run_blockwise_ablation", "flatten_blocks"]


def flatten_blocks(graph: Graph) -> Graph:
    """Clone a graph with every operator in one single block.

    Used by the whole-graph ablation: the flattened graph forces the DP to
    consider the entire network as one scheduling problem.
    """
    clone = Graph(f"{graph.name}_flat")
    single_block = clone.add_block("whole_graph")
    from ..ir.ops import Placeholder, operator_from_config

    for name, op in graph.nodes.items():
        if isinstance(op, Placeholder):
            clone.add_node(Placeholder(name, op.output_shape))
        else:
            clone.add_node(operator_from_config(op.to_config()), single_block)
    return clone


def run_cost_model_ablation(
    models: Sequence[str] = ("inception_v3", "squeezenet"),
    device: str | DeviceSpec = "v100",
    batch_size: int = 1,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Schedules searched with a naive FLOPs cost model vs the contention simulator."""
    ctx = context or default_context(device)
    table = ExperimentTable(
        experiment_id="ablation_cost_model",
        title="Ablation: contention-aware vs FLOPs-proportional cost model",
        columns=[
            "network",
            "simulated_cost_model_ms",
            "flops_cost_model_ms",
            "quality_gap_percent",
        ],
        notes=(
            "both schedules are evaluated on the full contention simulator; the gap is the "
            "latency penalty of searching with a model that ignores occupancy and contention"
        ),
    )
    for model_name in models:
        graph = ctx.graph(model_name, batch_size)
        contention_run = ctx.run_schedule(graph, "ios-both")

        # The naive search injects its cost model into the engine; the
        # compiled model still *evaluates* on the full contention simulator.
        naive_engine = Engine(
            ctx.device,
            profile=ctx.profile,
            scheduler=IOSScheduler(
                FlopsCostModel(flops_per_ms=ctx.device.peak_flops_per_ms),
                SchedulerConfig(pruning=ctx.pruning),
            ),
        )
        naive_latency = naive_engine.compile(graph).latency_ms()

        gap = (naive_latency / contention_run.latency_ms - 1.0) * 100.0
        table.add_row(
            network=model_name,
            simulated_cost_model_ms=contention_run.latency_ms,
            flops_cost_model_ms=naive_latency,
            quality_gap_percent=gap,
        )
    return table


def run_blockwise_ablation(
    models: Sequence[str] = ("squeezenet", "figure2_block"),
    device: str | DeviceSpec = "v100",
    batch_size: int = 1,
    pruning: PruningStrategy | None = None,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Block-wise DP vs whole-graph DP on small networks."""
    ctx = context or default_context(device)
    pruning = pruning or PruningStrategy(max_group_size=3, max_groups=8)
    table = ExperimentTable(
        experiment_id="ablation_blockwise",
        title="Ablation: block-wise vs whole-graph dynamic programming",
        columns=[
            "network",
            "blockwise_ms",
            "whole_graph_ms",
            "blockwise_transitions",
            "whole_graph_transitions",
            "latency_ratio",
        ],
        notes=(
            "whole-graph search explores far more states for (at most) marginal latency gains, "
            "which is why the paper optimises block by block"
        ),
    )
    engine = ctx.engine(pruning=pruning)
    for model_name in models:
        graph = ctx.graph(model_name, batch_size)

        blockwise = engine.compile(graph)
        blockwise_latency = blockwise.latency_ms()

        whole = engine.compile(flatten_blocks(graph))
        whole_latency = whole.latency_ms()

        table.add_row(
            network=model_name,
            blockwise_ms=blockwise_latency,
            whole_graph_ms=whole_latency,
            blockwise_transitions=blockwise.schedule_result().total_transitions,
            whole_graph_transitions=whole.schedule_result().total_transitions,
            latency_ratio=whole_latency / blockwise_latency if blockwise_latency else float("nan"),
        )
    return table
