"""Command-line entry point: ``ios-bench <experiment> [options]``.

Runs any of the paper-reproduction experiments and prints its table; optionally
writes CSV.  Example::

    ios-bench figure6 --device v100
    ios-bench table3-batch --model inception_v3
    ios-bench all --quick --csv-dir results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from .ablations import run_blockwise_ablation, run_cost_model_ablation
from .fig01_trends import run_figure1
from .fig02_motivating import run_figure2
from .fig06_schedules import run_figure6, run_figure14
from .fig07_frameworks import run_figure7, run_figure15
from .fig08_active_warps import run_figure8
from .fig09_pruning import run_figure9
from .fig10_case_study import run_figure10
from .fig11_batch_sizes import run_figure11
from .fig12_intra_vs_inter import run_figure12
from .fig13_worst_case import run_figure13
from .fig16_blockwise import run_figure16
from .resnet_note import run_resnet_note
from .tab01_complexity import run_table1
from .tab02_networks import run_table2
from .tab03_specialization import run_table3_batch, run_table3_device
from .tables import ExperimentTable

__all__ = ["main", "EXPERIMENTS", "QUICK_MODELS"]

#: Model subset used with ``--quick`` (fast enough for CI smoke runs).
QUICK_MODELS = ["inception_v3", "squeezenet"]


def _experiments(quick: bool, device: str) -> dict[str, Callable[[], ExperimentTable]]:
    models = QUICK_MODELS if quick else None
    return {
        "figure1": lambda: run_figure1(),
        "figure2": lambda: run_figure2(device=device),
        "table1": lambda: run_table1(models=models),
        "table2": lambda: run_table2(models=models),
        "figure6": lambda: run_figure6(device=device, models=models),
        "figure7": lambda: run_figure7(device=device, models=models),
        "figure8": lambda: run_figure8(device=device),
        "figure9": lambda: run_figure9(models=("inception_v3",) if quick else ("inception_v3", "nasnet_a"), device=device),
        "table3-batch": lambda: run_table3_batch(device=device, batch_sizes=(1, 32) if quick else (1, 32, 128)),
        "table3-device": lambda: run_table3_device(),
        "figure10": lambda: run_figure10(device=device),
        "figure11": lambda: run_figure11(device=device, batch_sizes=(1, 16, 32) if quick else (1, 16, 32, 64, 128)),
        "figure12": lambda: run_figure12(device=device, models=models),
        "figure13": lambda: run_figure13(),
        "figure14": lambda: run_figure14(models=models),
        "figure15": lambda: run_figure15(models=models),
        "figure16": lambda: run_figure16(device=device),
        "resnet-note": lambda: run_resnet_note(device=device),
        "ablation-cost-model": lambda: run_cost_model_ablation(device=device),
        "ablation-blockwise": lambda: run_blockwise_ablation(device=device),
    }


#: Stable list of experiment names shown in ``--help`` and accepted by ``run``.
EXPERIMENTS = sorted(_experiments(quick=True, device="v100"))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (installed as ``ios-bench``)."""
    parser = argparse.ArgumentParser(
        prog="ios-bench",
        description="Reproduce tables and figures of 'IOS: Inter-Operator Scheduler for CNN "
        "Acceleration' on the simulated GPU.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument("--device", default="v100", help="device preset (default: v100)")
    parser.add_argument(
        "--quick", action="store_true",
        help="restrict heavy experiments to a small model subset / fewer batch sizes",
    )
    parser.add_argument("--csv-dir", default=None, help="directory to write CSV outputs to")
    args = parser.parse_args(argv)

    registry = _experiments(quick=args.quick, device=args.device)
    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    for name in names:
        table = registry[name]()
        print(table.to_text())
        print()
        if args.csv_dir is not None:
            path = Path(args.csv_dir) / f"{table.experiment_id}.csv"
            table.to_csv(path)
            print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
